"""Setuptools shim.

The build environment in which this reproduction is developed has an older
setuptools without wheel support, so ``pip install -e .`` falls back to the
legacy ``setup.py develop`` path provided here.  All project metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
