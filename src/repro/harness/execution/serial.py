"""The serial executor: in-process, one cell at a time.

This reproduces the legacy ``ExperimentRunner`` behaviour exactly — same
process, same execution order — and is the reference implementation the
process executor is tested for equivalence against.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.harness.execution.base import (
    Executor,
    TaskProgressCallback,
    call_with_retries,
)
from repro.harness.execution.registry import register_executor

__all__ = ["SerialExecutor"]


@register_executor
class SerialExecutor(Executor):
    """Execute tasks one after another in the calling process."""

    name = "serial"
    description = "in-process execution, one cell at a time (the default)"

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        progress: Optional[TaskProgressCallback] = None,
    ) -> List[Any]:
        results: List[Any] = []
        for index, task in enumerate(tasks):
            result = call_with_retries(fn, task, self.retries, self.retry_backoff)
            results.append(result)
            if progress is not None:
                progress(index, task, result)
        return results
