"""The serial executor: in-process, one cell at a time.

This reproduces the legacy ``ExperimentRunner`` behaviour exactly — same
process, same execution order — and is the reference implementation the
process executor is tested for equivalence against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.harness.execution.base import Executor, ProgressCallback
from repro.harness.execution.cells import RunCell, execute_cell
from repro.harness.execution.registry import register_executor
from repro.harness.results import RunResult

__all__ = ["SerialExecutor"]


@register_executor
class SerialExecutor(Executor):
    """Execute cells one after another in the calling process."""

    name = "serial"
    description = "in-process execution, one cell at a time (the default)"

    def run_cells(
        self,
        cells: Sequence[RunCell],
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        results: List[RunResult] = []
        for index, cell in enumerate(cells):
            result = execute_cell(cell)
            results.append(result)
            if progress is not None:
                progress(index, cell, result)
        return results
