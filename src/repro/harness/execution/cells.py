"""The picklable unit of experiment work: run cells.

``ExperimentRunner.run`` used to be one nested loop that built backends,
ran workloads and aggregated repetitions in place.  Sharding a sweep over
worker processes requires the opposite decomposition — three pure stages:

1. :func:`enumerate_cells` expands a :class:`~repro.harness.runner.RunConfig`
   into a flat, deterministic tuple of :class:`RunCell` values (one per
   repetition of one ``(mechanism, x value)`` pair);
2. an :class:`~repro.harness.execution.base.Executor` maps every cell
   through :func:`execute_cell` (a top-level, picklable function, so a
   ``multiprocessing`` pool can ship cells to workers);
3. :func:`merge_cell_results` folds the per-cell :class:`RunResult` values
   back into an :class:`~repro.harness.results.ExperimentSeries`, grouping
   and aggregating in config order so the merged series is independent of
   the order in which cells actually finished.

Every cell carries its own seed, derived by :func:`cell_seed` from the
cell's *coordinates* rather than from its position in the sweep, so a
cell's RNG stream does not depend on sweep order or executor scheduling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.harness.results import ExperimentSeries, RunResult, aggregate_runs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.harness.runner import RunConfig

__all__ = [
    "FrozenMapping",
    "RunCell",
    "cell_seed",
    "enumerate_cells",
    "execute_cell",
    "merge_cell_results",
]


class FrozenMapping(Mapping):
    """An immutable, hashable, picklable string-keyed mapping.

    ``RunConfig.problem_params`` used to be a plain ``dict`` inside a frozen
    dataclass: ``dataclasses.replace()`` (and therefore ``scaled()``) aliased
    the same dict across copies, so mutating one config's params silently
    mutated them all.  Normalizing to this type makes configs genuinely
    immutable and usable as shard/cache keys.
    """

    __slots__ = ("_data", "_items")

    def __init__(self, mapping: Mapping = ()) -> None:
        data = dict(mapping)
        self._data: Dict[str, object] = data
        self._items: Tuple[Tuple[str, object], ...] = tuple(sorted(data.items()))

    def __getitem__(self, key: str) -> object:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FrozenMapping({self._data!r})"

    def __reduce__(self):
        return (FrozenMapping, (self._data,))


def cell_seed(base_seed: int, problem: str, mechanism: str, x_value: int,
              repetition: int) -> int:
    """Stable per-cell seed derived from the cell's coordinates.

    The previous scheme (``config.seed + repetition``) made every
    ``(mechanism, x value)`` pair share the same repetition seeds, and any
    future scheme based on sweep position would couple a cell's RNG stream
    to enumeration order.  Hashing the coordinates instead gives every cell
    an independent, order- and scheduler-invariant stream (the hash is
    ``sha256``, not Python's salted ``hash()``, so it is stable across
    processes and interpreter runs).
    """
    payload = f"{base_seed}|{problem}|{mechanism}|{x_value}|{repetition}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class RunCell:
    """One repetition of one ``(mechanism, x value)`` sweep configuration.

    Cells are self-contained and picklable: a worker process needs nothing
    beyond the cell (problems are resolved by name, backends are built
    fresh from the cell's seed), so any executor can run any cell.
    """

    problem: str
    mechanism: str
    #: The figure's x-axis value (number of threads/consumers/philosophers...).
    x_value: int
    repetition: int
    seed: int
    backend: str
    total_ops: int
    profile: bool
    validate: bool
    eval_engine: str
    problem_params: FrozenMapping
    #: JSON spec of a runtime-registered scenario problem (see
    #: ``RunConfig.scenario_json``); lets worker processes resolve the
    #: problem name without inheriting the parent's registry.
    scenario_json: Optional[str] = None
    #: Wall-clock safety net for this cell's run, in seconds (simulation
    #: backend only; ``None`` keeps the kernel default).  When it fires the
    #: kernel raises a hang verdict with a parked-thread autopsy instead of
    #: blocking the sweep forever.
    run_timeout: Optional[float] = None

    def describe(self) -> str:
        """One-line label used by progress reporting."""
        return (
            f"{self.problem}: mechanism={self.mechanism} "
            f"threads={self.x_value} rep={self.repetition + 1}"
        )


def enumerate_cells(config: "RunConfig") -> Tuple[RunCell, ...]:
    """Expand *config* into its flat cell list, in deterministic sweep order.

    The order is mechanism-major (the order mechanisms appear in the
    config), then x value, then repetition — the same order the legacy
    serial runner executed, so progress output stays familiar.
    """
    params = FrozenMapping(config.problem_params)
    cells: List[RunCell] = []
    for mechanism in config.mechanisms:
        for x_value in config.thread_counts:
            for repetition in range(config.repetitions):
                cells.append(
                    RunCell(
                        problem=config.problem,
                        mechanism=mechanism,
                        x_value=x_value,
                        repetition=repetition,
                        seed=cell_seed(
                            config.seed, config.problem, mechanism, x_value, repetition
                        ),
                        backend=config.backend,
                        total_ops=config.total_ops,
                        profile=config.profile,
                        validate=config.validate,
                        eval_engine=config.eval_engine,
                        problem_params=params,
                        scenario_json=config.scenario_json,
                        run_timeout=config.run_timeout,
                    )
                )
    return tuple(cells)


def execute_cell(cell: RunCell) -> RunResult:
    """Run one cell and return its measurements.

    This is the function worker processes execute; it is deliberately a
    top-level function of a plain module so it pickles by reference.
    """
    from repro.harness.saturation import make_backend, run_workload
    from repro.problems import get_problem

    if cell.scenario_json is not None:
        # Runtime-registered scenario problem: make sure this process's
        # registry can resolve it (a spawn-started worker never saw the
        # parent's registration).  The common already-registered path is a
        # serialized-form comparison, not a re-parse.
        from repro.scenarios import ScenarioSpec, register_scenario, scenario_for

        current = scenario_for(cell.problem)
        if current is None or current.to_json() != cell.scenario_json:
            register_scenario(
                ScenarioSpec.from_json(cell.scenario_json), replace=True
            )
    problem = get_problem(cell.problem)
    backend = make_backend(cell.backend, seed=cell.seed, run_timeout=cell.run_timeout)
    return run_workload(
        problem,
        cell.mechanism,
        backend,
        threads=cell.x_value,
        total_ops=cell.total_ops,
        seed=cell.seed,
        profile=cell.profile,
        validate=cell.validate,
        eval_engine=cell.eval_engine,
        **dict(cell.problem_params),
    )


def merge_cell_results(
    config: "RunConfig",
    cells: Sequence[RunCell],
    results: Sequence[RunResult],
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> ExperimentSeries:
    """Fold per-cell results back into an :class:`ExperimentSeries`.

    *results* must align index-for-index with *cells* (every executor
    returns results in cell order).  Grouping, repetition ordering and the
    drop-best/drop-worst protocol all happen here, in config order, so the
    merged series is identical no matter which executor produced the
    results or how its workers were scheduled.
    """
    if len(cells) != len(results):
        raise ValueError(
            f"got {len(results)} results for {len(cells)} cells; every cell "
            "must produce exactly one result"
        )
    grouped: Dict[Tuple[str, int], List[Tuple[int, RunResult]]] = {}
    for cell, result in zip(cells, results):
        grouped.setdefault((cell.mechanism, cell.x_value), []).append(
            (cell.repetition, result)
        )
    series = ExperimentSeries(
        name=config.problem, x_label=config.x_label, backend=config.backend
    )
    for mechanism in config.mechanisms:
        for x_value in config.thread_counts:
            pairs = grouped.get((mechanism, x_value))
            if pairs is None:
                raise ValueError(
                    f"no cells for mechanism={mechanism!r} x={x_value}; "
                    "cells do not cover the config's sweep"
                )
            runs = [result for _, result in sorted(pairs, key=lambda pair: pair[0])]
            series.add(
                aggregate_runs(
                    runs,
                    drop_extremes=config.drop_extremes,
                    cost_model=cost_model,
                    rank_metric=config.effective_rank_metric,
                )
            )
    return series
