"""The :class:`Executor` abstraction: how a sweep's cells get executed.

An executor maps run cells (see :mod:`repro.harness.execution.cells`) to
their results.  The contract is deliberately narrow so that executors are
interchangeable:

* ``run_cells`` returns one :class:`~repro.harness.results.RunResult` per
  cell, **aligned index-for-index with the input** — regardless of the
  order in which the work actually ran;
* the optional *progress* callback is invoked exactly once per cell, in
  cell-index order, **from the calling thread of the parent process** —
  worker completions are never reported directly, so progress lines cannot
  interleave or be dropped under parallel execution;
* a failure in any cell propagates as an exception from ``run_cells``
  (executors fail fast rather than return partial sweeps).

Executors are registered by name (mirroring the signalling-policy
registry), which is what the ``RunConfig.executor`` knob and the
``--executor`` CLI flag resolve through.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.harness.execution.cells import RunCell, execute_cell
from repro.harness.results import RunResult

__all__ = [
    "DEFAULT_RETRY_BACKOFF",
    "ProgressCallback",
    "TaskProgressCallback",
    "Executor",
    "call_with_retries",
]

#: Base delay (seconds) between retry attempts; doubles per attempt.
DEFAULT_RETRY_BACKOFF = 0.1


def call_with_retries(
    fn: Callable[[Any], Any],
    task: Any,
    retries: int = 0,
    backoff: float = DEFAULT_RETRY_BACKOFF,
) -> Any:
    """Call ``fn(task)``, retrying failures with exponential backoff.

    A top-level, picklable function so process pools can ship the retry
    loop *into* the worker (a transient failure then never crosses the
    process boundary).  ``retries`` counts re-attempts after the first
    call; each waits ``backoff * 2**attempt`` seconds.  The final failure
    propagates unchanged.
    """
    for attempt in range(retries + 1):
        try:
            return fn(task)
        except Exception:
            if attempt >= retries:
                raise
            time.sleep(backoff * (2 ** attempt))
    raise AssertionError("unreachable")  # pragma: no cover

#: ``progress(index, cell, result)`` — called once per completed cell, in
#: cell-index order, from the parent process.
ProgressCallback = Callable[[int, RunCell, RunResult], None]

#: ``progress(index, task, result)`` — the :meth:`Executor.run_tasks`
#: generalization of :data:`ProgressCallback` to arbitrary task objects.
TaskProgressCallback = Callable[[int, Any, Any], None]


class Executor(abc.ABC):
    """Maps a sweep's cells to results; see the module docstring for the
    contract every implementation must honour."""

    #: Registry name (``"serial"``, ``"process"``, ...).
    name: str = ""
    #: Human-readable one-liner shown by ``--list-executors``.
    description: str = ""

    def __init__(
        self,
        jobs: Optional[int] = None,
        retries: int = 0,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    ) -> None:
        if jobs is None:
            jobs = self.default_jobs()
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0, got {retry_backoff}")
        self.jobs = int(jobs)
        #: Per-task re-attempts after a failure (0 = fail fast, the default).
        self.retries = int(retries)
        #: Base delay between attempts; doubles per attempt.
        self.retry_backoff = float(retry_backoff)

    @classmethod
    def default_jobs(cls) -> int:
        """Worker count when none was requested (parallel executors override
        this with the machine's core count)."""
        return 1

    @abc.abstractmethod
    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        progress: Optional[TaskProgressCallback] = None,
    ) -> List[Any]:
        """Map *fn* over *tasks* under the executor contract.

        This is the general form of :meth:`run_cells`: results align
        index-for-index with the input, the progress callback fires once per
        task in task order from the calling process, and any task failure
        propagates.  Parallel executors additionally require *fn* and every
        task/result to be picklable — which is what lets other subsystems
        (e.g. the swarm scheduler explorer in :mod:`repro.explore`) shard
        their own work units through the same registry.
        """

    def run_cells(
        self,
        cells: Sequence[RunCell],
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunResult]:
        """Execute every cell and return the results in cell order."""
        return self.run_tasks(execute_cell, list(cells), progress)

    def describe(self) -> str:
        """One-line label (may interpolate configuration such as ``jobs``)."""
        return self.description or self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} jobs={self.jobs}>"
