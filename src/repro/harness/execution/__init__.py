"""Pluggable execution of experiment sweeps.

This package owns *how* a sweep's run cells get executed, decoupled from
*what* they measure (the harness) and *which* sweep they belong to (the
experiments).  See :mod:`repro.harness.execution.base` for the executor
contract and :mod:`repro.harness.execution.cells` for the three pure
stages — enumerate, execute, merge — that ``ExperimentRunner.run`` is
built from.

Built-in executors:

* ``serial`` — in-process, one cell at a time (the legacy behaviour);
* ``process`` — shards cells over a ``multiprocessing`` pool
  (``RunConfig.jobs`` / ``--jobs`` workers).

Both produce bit-identical merged series for the same config; the
equivalence is enforced by ``tests/integration/test_parallel_equivalence``.
"""

from repro.harness.execution.base import (
    DEFAULT_RETRY_BACKOFF,
    Executor,
    ProgressCallback,
    TaskProgressCallback,
    call_with_retries,
)
from repro.harness.execution.cells import (
    FrozenMapping,
    RunCell,
    cell_seed,
    enumerate_cells,
    execute_cell,
    merge_cell_results,
)
from repro.harness.execution.registry import (
    available_executors,
    create_executor,
    describe_executor,
    get_executor,
    register_executor,
)
from repro.harness.execution.serial import SerialExecutor
from repro.harness.execution.process import (
    MAX_POOL_REBUILDS,
    ProcessExecutor,
    default_job_count,
)

__all__ = [
    "DEFAULT_RETRY_BACKOFF",
    "MAX_POOL_REBUILDS",
    "call_with_retries",
    "Executor",
    "ProgressCallback",
    "TaskProgressCallback",
    "FrozenMapping",
    "RunCell",
    "cell_seed",
    "enumerate_cells",
    "execute_cell",
    "merge_cell_results",
    "available_executors",
    "create_executor",
    "describe_executor",
    "get_executor",
    "register_executor",
    "SerialExecutor",
    "ProcessExecutor",
    "default_job_count",
]
