"""Name-based registry of executors.

The registry is what makes the execution layer pluggable, exactly like the
signalling-policy registry in :mod:`repro.core.signalling`: the harness
runner, the experiment CLI and the benchmarks all resolve executor names
through it.  Registering a new executor immediately makes it selectable
via ``RunConfig(executor="<name>")`` and ``--executor`` on
``python -m repro.experiments``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type, Union

from repro.harness.execution.base import Executor

__all__ = [
    "register_executor",
    "get_executor",
    "available_executors",
    "describe_executor",
    "create_executor",
]

#: name -> executor class, in registration order.
_REGISTRY: Dict[str, Type[Executor]] = {}

ExecutorSpec = Union[str, Executor, Type[Executor]]


def register_executor(executor_cls: Type[Executor], replace: bool = False) -> Type[Executor]:
    """Register *executor_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True``.
    """
    if not (isinstance(executor_cls, type) and issubclass(executor_cls, Executor)):
        raise TypeError(f"expected an Executor subclass, got {executor_cls!r}")
    name = executor_cls.name
    if not name or name == Executor.name:
        raise ValueError(
            f"executor class {executor_cls.__name__} must define a unique 'name' attribute"
        )
    if name in _REGISTRY and _REGISTRY[name] is not executor_cls and not replace:
        raise ValueError(
            f"an executor named {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); pass replace=True to override"
        )
    _REGISTRY[name] = executor_cls
    return executor_cls


def get_executor(name: str) -> Type[Executor]:
    """Look up an executor class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; registered executors: {available_executors()}"
        ) from None


def available_executors() -> Tuple[str, ...]:
    """Names of every registered executor, in registration order."""
    return tuple(_REGISTRY)


def describe_executor(name: str) -> str:
    """The one-line human-readable label of a registered executor."""
    executor_cls = get_executor(name)
    try:
        executor = executor_cls()
    except TypeError:
        return executor_cls.description or name
    return executor.describe()


def create_executor(spec: ExecutorSpec, jobs: Optional[int] = None) -> Executor:
    """Resolve *spec* to a ready-to-use executor instance.

    Accepts a registry name (``"serial"``, ``"process"``), an
    :class:`Executor` subclass, or an already-constructed instance (whose
    own ``jobs`` setting then wins — the hook for passing configured
    executors straight to the runner).  ``jobs=None`` leaves the worker
    count to the executor's own default (1 for ``serial``, one per core
    for ``process``).
    """
    if isinstance(spec, str):
        return get_executor(spec)(jobs=jobs)
    if isinstance(spec, type) and issubclass(spec, Executor):
        return spec(jobs=jobs)
    if isinstance(spec, Executor):
        return spec
    raise TypeError(
        "executor must be a registered executor name, an Executor subclass "
        f"or an instance; got {spec!r}"
    )
