"""Name-based registry of executors.

The registry is what makes the execution layer pluggable, exactly like the
signalling-policy registry in :mod:`repro.core.signalling`: the harness
runner, the experiment CLI and the benchmarks all resolve executor names
through it.  Registering a new executor immediately makes it selectable
via ``RunConfig(executor="<name>")`` and ``--executor`` on
``python -m repro.experiments``.

Like every other pluggable layer, the registration/lookup behaviour is one
instantiation of :class:`~repro.core.plugin_registry.PluginRegistry`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type, Union

from repro.core.plugin_registry import PluginRegistry
from repro.harness.execution.base import Executor

__all__ = [
    "register_executor",
    "unregister_executor",
    "get_executor",
    "available_executors",
    "describe_executor",
    "create_executor",
]

#: The shared plugin registry: name -> executor class, in registration order.
_REGISTRY = PluginRegistry(kind="executor", base=Executor)

ExecutorSpec = Union[str, Executor, Type[Executor]]


def register_executor(executor_cls: Type[Executor], replace: bool = False) -> Type[Executor]:
    """Register *executor_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True``.
    """
    return _REGISTRY.register(executor_cls, replace=replace)


def unregister_executor(name: str) -> None:
    """Remove a registered executor by name (for tests that register
    throwaway executors); unknown names raise the same error as
    :func:`get_executor`."""
    _REGISTRY.unregister(name)


def get_executor(name: str) -> Type[Executor]:
    """Look up an executor class by registry name."""
    return _REGISTRY.get(name)


def available_executors() -> Tuple[str, ...]:
    """Names of every registered executor, in registration order."""
    return _REGISTRY.names()


def describe_executor(name: str) -> str:
    """The one-line human-readable label of a registered executor."""
    return _REGISTRY.describe(name)


def create_executor(
    spec: ExecutorSpec,
    jobs: Optional[int] = None,
    retries: Optional[int] = None,
    retry_backoff: Optional[float] = None,
) -> Executor:
    """Resolve *spec* to a ready-to-use executor instance.

    Accepts a registry name (``"serial"``, ``"process"``), an
    :class:`Executor` subclass, or an already-constructed instance (whose
    own ``jobs`` setting then wins — the hook for passing configured
    executors straight to the runner).  ``jobs=None`` leaves the worker
    count to the executor's own default (1 for ``serial``, one per core
    for ``process``).  *retries*/*retry_backoff* configure per-task retry
    with exponential backoff; ``None`` keeps the executor defaults (fail
    fast), and is only forwarded when set so executors with a legacy
    ``__init__(jobs)`` signature keep working.
    """
    kwargs: dict = {"jobs": jobs}
    if retries is not None:
        kwargs["retries"] = retries
    if retry_backoff is not None:
        kwargs["retry_backoff"] = retry_backoff
    return _REGISTRY.create(spec, **kwargs)
