"""The process executor: shard cells over a ``multiprocessing`` pool.

Cells are independent by construction (each carries its own seed and
builds its own backend), so a sweep parallelizes embarrassingly: the pool
maps :func:`~repro.harness.execution.cells.execute_cell` over the cell
list and the parent reassembles results in cell order.

``imap`` (ordered) rather than ``imap_unordered`` is used deliberately:
workers still *execute* out of order, but the parent consumes completions
in submission order, which is what lets progress reporting honour the
executor contract (one ordered callback per cell, parent process only)
without any extra sequencing machinery.

The ``fork`` start method is preferred where available (workers inherit
the imported problem/policy registries instead of re-importing them);
elsewhere the platform default is used, which requires ``repro`` to be
importable in fresh interpreters — true whenever the parent could import
it, since ``PYTHONPATH`` is inherited.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence

from repro.harness.execution.base import Executor, TaskProgressCallback
from repro.harness.execution.registry import register_executor
from repro.harness.execution.serial import SerialExecutor

__all__ = ["ProcessExecutor", "default_job_count", "serial_fallback_reason"]


def default_job_count() -> int:
    """A sensible default worker count: every available core."""
    return max(1, os.cpu_count() or 1)


def serial_fallback_reason(jobs: int, task_count: int) -> Optional[str]:
    """Why a process pool would only add overhead, or None if it may help.

    On a single-CPU host the pool's workers time-slice one core, so the
    sweep pays fork + pickling + IPC for zero parallelism — measured at
    0.72-0.83x of the serial wall-clock.  Same story for an effective
    worker count of one.  ``run_tasks`` consults this to fall back to the
    in-process path, and the parallel-harness benchmark records the reason
    in its JSON instead of reporting a bogus "speedup".
    """
    effective = min(jobs, task_count)
    if effective <= 1:
        return f"effective jobs == {max(effective, 0)}"
    if (os.cpu_count() or 1) <= 1:
        return "single-CPU host (cpu_count() == 1)"
    return None


@register_executor
class ProcessExecutor(Executor):
    """Execute cells in parallel across ``jobs`` worker processes."""

    name = "process"
    description = "shard cells across worker processes (multiprocessing pool)"

    @classmethod
    def default_jobs(cls) -> int:
        # Selecting the process executor without an explicit job count means
        # "use the machine": one worker per core, not a silent serial run.
        return default_job_count()

    def describe(self) -> str:
        # self.jobs is the core count unless explicitly configured, so the
        # registry listing (built from a default instance) shows the real
        # default for this machine.
        return f"{self.description}; jobs={self.jobs}"

    @staticmethod
    def _pool_context():
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        progress: Optional[TaskProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if serial_fallback_reason(self.jobs, len(tasks)) is not None:
            # A pool cannot pay for itself here (one effective worker, or a
            # single-CPU host where workers would just time-slice); run
            # in-process so the result is still produced the same way.
            return SerialExecutor().run_tasks(fn, tasks, progress)
        jobs = min(self.jobs, len(tasks))
        results: List[Any] = []
        with self._pool_context().Pool(processes=jobs) as pool:
            # chunksize=1: tasks are coarse units of work (a whole saturation
            # or exploration run each), so per-task dispatch overhead is
            # negligible and fine-grained dispatch keeps workers load-balanced.
            for index, result in enumerate(pool.imap(fn, tasks, chunksize=1)):
                results.append(result)
                if progress is not None:
                    progress(index, tasks[index], result)
        return results
