"""The process executor: shard cells over a worker-process pool.

Cells are independent by construction (each carries its own seed and
builds its own backend), so a sweep parallelizes embarrassingly: the pool
maps :func:`~repro.harness.execution.cells.execute_cell` over the cell
list and the parent reassembles results in cell order.

Built on :class:`concurrent.futures.ProcessPoolExecutor` rather than the
raw ``multiprocessing.Pool`` for one robustness property: a worker that
*dies* (killed by the OS, ``os._exit`` in task code, a segfaulting C
extension) surfaces as :class:`~concurrent.futures.process.BrokenProcessPool`
instead of hanging the parent forever.  ``run_tasks`` treats that as a
recoverable infrastructure fault — the pool is rebuilt and the unfinished
tasks resubmitted, a bounded number of times — while ordinary task
exceptions still fail fast.  Per-task transient failures are additionally
retried *inside* the worker (``retries``/``retry_backoff``, see
:func:`~repro.harness.execution.base.call_with_retries`), so a retryable
failure never pays pool-rebuild costs.

Completions are consumed in submission order (workers still execute out of
order), which is what lets progress reporting honour the executor contract
(one ordered callback per task, parent process only) without extra
sequencing machinery.

The ``fork`` start method is preferred where available (workers inherit
the imported problem/policy registries instead of re-importing them);
elsewhere the platform default is used, which requires ``repro`` to be
importable in fresh interpreters — true whenever the parent could import
it, since ``PYTHONPATH`` is inherited.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.harness.execution.base import (
    Executor,
    TaskProgressCallback,
    call_with_retries,
)
from repro.harness.execution.registry import register_executor
from repro.harness.execution.serial import SerialExecutor

__all__ = [
    "MAX_POOL_REBUILDS",
    "ProcessExecutor",
    "default_job_count",
    "serial_fallback_reason",
]

#: How many times a broken pool (worker death) is rebuilt and the
#: unfinished tasks resubmitted before the sweep fails.  Bounded: a task
#: that *deterministically* kills its worker must not respawn pools forever.
MAX_POOL_REBUILDS = 2


def default_job_count() -> int:
    """A sensible default worker count: every available core."""
    return max(1, os.cpu_count() or 1)


def serial_fallback_reason(jobs: int, task_count: int) -> Optional[str]:
    """Why a process pool would only add overhead, or None if it may help.

    On a single-CPU host the pool's workers time-slice one core, so the
    sweep pays fork + pickling + IPC for zero parallelism — measured at
    0.72-0.83x of the serial wall-clock.  Same story for an effective
    worker count of one.  ``run_tasks`` consults this to fall back to the
    in-process path, and the parallel-harness benchmark records the reason
    in its JSON instead of reporting a bogus "speedup".
    """
    effective = min(jobs, task_count)
    if effective <= 1:
        return f"effective jobs == {max(effective, 0)}"
    if (os.cpu_count() or 1) <= 1:
        return "single-CPU host (cpu_count() == 1)"
    return None


@register_executor
class ProcessExecutor(Executor):
    """Execute cells in parallel across ``jobs`` worker processes."""

    name = "process"
    description = "shard cells across worker processes (process pool)"

    @classmethod
    def default_jobs(cls) -> int:
        # Selecting the process executor without an explicit job count means
        # "use the machine": one worker per core, not a silent serial run.
        return default_job_count()

    def describe(self) -> str:
        # self.jobs is the core count unless explicitly configured, so the
        # registry listing (built from a default instance) shows the real
        # default for this machine.
        return f"{self.description}; jobs={self.jobs}"

    @staticmethod
    def _pool_context():
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        progress: Optional[TaskProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if serial_fallback_reason(self.jobs, len(tasks)) is not None:
            # A pool cannot pay for itself here (one effective worker, or a
            # single-CPU host where workers would just time-slice); run
            # in-process so the result is still produced the same way.
            return SerialExecutor(
                retries=self.retries, retry_backoff=self.retry_backoff
            ).run_tasks(fn, tasks, progress)
        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        rebuilds = 0
        context = self._pool_context()
        while pending:
            jobs = min(self.jobs, len(pending))
            broken = False
            still_pending: List[int] = []
            with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
                futures = [
                    (
                        index,
                        pool.submit(
                            call_with_retries,
                            fn,
                            tasks[index],
                            self.retries,
                            self.retry_backoff,
                        ),
                    )
                    for index in pending
                ]
                for index, future in futures:
                    if broken:
                        # The pool already died; everything not yet consumed
                        # goes to the next incarnation.
                        future.cancel()
                        still_pending.append(index)
                        continue
                    try:
                        results[index] = future.result()
                    except BrokenProcessPool:
                        # A worker died mid-task (not a task exception, which
                        # pickles back and propagates below): infrastructure
                        # fault, resubmit the unfinished work.
                        broken = True
                        still_pending.append(index)
                        continue
                    if progress is not None:
                        progress(index, tasks[index], results[index])
            if not broken:
                return results
            rebuilds += 1
            if rebuilds > MAX_POOL_REBUILDS:
                raise BrokenProcessPool(
                    f"worker pool died {rebuilds} times running "
                    f"{len(still_pending)} unfinished task(s); giving up after "
                    f"{MAX_POOL_REBUILDS} rebuild(s) — a task is likely "
                    "killing its worker deterministically"
                )
            pending = still_pending
        return results
