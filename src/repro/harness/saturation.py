"""Run a single saturation test and collect its measurements (§6.1).

A saturation test performs only monitor-accessing operations — no work
inside or outside the monitor — so the measurement isolates synchronization
overhead, which is exactly what the paper compares.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.harness.results import RunResult
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Problem
from repro.runtime.api import Backend
from repro.runtime.registry import available_backends, create_backend

__all__ = ["BACKENDS", "make_backend", "run_workload"]

#: Backend names accepted by :func:`make_backend` (the registry's view;
#: kept as a module attribute for backwards compatibility).
BACKENDS = available_backends()


def make_backend(
    kind: str, seed: int = 0, run_timeout: Optional[float] = None
) -> Backend:
    """Create a backend by registry name (one of :data:`BACKENDS`).

    Both this function and :func:`run_workload` are top-level entry points
    that depend only on their arguments: the execution subsystem's worker
    processes rebuild a fresh backend per run cell through here, so a
    backend instance never has to cross a process boundary.  Resolution
    goes through :mod:`repro.runtime.registry`, so third-party backends
    registered with :func:`~repro.runtime.registry.register_backend` are
    constructible here too; unknown names raise ``ValueError`` listing the
    registered backends.

    *run_timeout* is the simulation kernel's wall-clock safety net in
    seconds (``None`` keeps its default); backends without such a knob
    (threading, asyncio) ignore it, as they do *seed*.
    """
    return create_backend(kind, seed=seed, run_timeout=run_timeout)


def run_workload(
    problem: Problem,
    mechanism: str,
    backend: Backend,
    threads: int,
    total_ops: int,
    seed: int = 0,
    profile: bool = False,
    verify: bool = True,
    validate: bool = False,
    eval_engine: str = DEFAULT_ENGINE,
    **problem_params: object,
) -> RunResult:
    """Build and execute one saturation run, returning its measurements.

    ``validate`` enables the automatic monitor's relay-invariance checking
    (a :class:`~repro.core.errors.MonitorError` aborts the run if a relay
    step ever loses a signal); ``verify`` re-checks the problem's own
    invariants after the run; ``eval_engine`` selects the automatic
    monitors' predicate-evaluation engine (``"compiled"``/``"interpreted"``).
    """
    spec = problem.build(
        mechanism,
        backend,
        threads=threads,
        total_ops=total_ops,
        seed=seed,
        profile=profile,
        validate=validate,
        eval_engine=eval_engine,
        **problem_params,
    )
    backend.reset_metrics()
    started = time.perf_counter()
    backend.run(spec.targets, spec.names)
    wall_time = time.perf_counter() - started
    if verify:
        spec.verify()
    return RunResult(
        problem=problem.name,
        mechanism=mechanism,
        backend=backend.name,
        threads=threads,
        wall_time=wall_time,
        operations=spec.operations,
        backend_metrics=backend.metrics.snapshot(),
        monitor_stats=spec.monitor.stats.snapshot(),
    )
