"""Experiment harness: saturation tests, repetition protocol and reporting.

The harness reproduces the measurement protocol of §6.1: saturation tests
(threads do nothing but call monitor operations), repeated several times with
the best and worst repetitions discarded and the rest averaged.

Because a Python wall-clock comparison is muddied by the GIL, every run also
records the backend and monitor counters (context switches, predicate
evaluations, signals, ...), and a simple cost model turns the simulation
backend's exact counts into a *modelled runtime* whose shape can be compared
with the paper's runtime figures.  See DESIGN.md for the substitution
rationale.
"""

from repro.harness.results import (
    ExperimentSeries,
    MeasurementPoint,
    RunResult,
    aggregate_runs,
    series_equal,
)
from repro.harness.runner import ExperimentRunner, RunConfig, run_point
from repro.harness.saturation import run_workload
from repro.harness.report import format_series_table, format_table, series_to_rows
from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.harness.export import (
    series_fingerprint,
    series_to_csv,
    series_to_dict,
    write_series_csv,
    write_series_json,
)
from repro.harness.execution import (
    Executor,
    FrozenMapping,
    RunCell,
    available_executors,
    create_executor,
    describe_executor,
    enumerate_cells,
    execute_cell,
    merge_cell_results,
    register_executor,
)

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Executor",
    "ExperimentRunner",
    "ExperimentSeries",
    "FrozenMapping",
    "MeasurementPoint",
    "RunCell",
    "RunConfig",
    "RunResult",
    "aggregate_runs",
    "available_executors",
    "create_executor",
    "describe_executor",
    "enumerate_cells",
    "execute_cell",
    "format_series_table",
    "format_table",
    "merge_cell_results",
    "register_executor",
    "run_point",
    "run_workload",
    "series_equal",
    "series_fingerprint",
    "series_to_csv",
    "series_to_dict",
    "series_to_rows",
    "write_series_csv",
    "write_series_json",
]
