"""Result records for saturation runs and their aggregation.

The aggregation follows §6.1 of the paper: every configuration is run
several times, the best and the worst repetition are discarded, and the
remaining repetitions are averaged.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "RunResult",
    "MeasurementPoint",
    "ExperimentSeries",
    "aggregate_runs",
    "mechanism_label",
    "series_equal",
]


def series_equal(
    first: "ExperimentSeries",
    second: "ExperimentSeries",
    include_timing: bool = False,
) -> bool:
    """Whether two series carry identical content.

    By default measured wall-clock quantities are excluded (see
    :meth:`MeasurementPoint.canonical_items`), so this is the equality the
    executor subsystem guarantees: the same config produces an equal series
    no matter which executor ran it or with how many jobs.
    """
    if (first.name, first.x_label, first.backend) != (
        second.name,
        second.x_label,
        second.backend,
    ):
        return False
    if tuple(first.mechanisms()) != tuple(second.mechanisms()):
        return False
    for mechanism in first.mechanisms():
        a_points = first.points[mechanism]
        b_points = second.points[mechanism]
        if len(a_points) != len(b_points):
            return False
        for a, b in zip(a_points, b_points):
            if a.canonical_items(include_timing) != b.canonical_items(include_timing):
                return False
    return True


def mechanism_label(mechanism: str) -> str:
    """Human-readable label for a mechanism name.

    Registered signalling policies answer through ``policy.describe()``;
    ``"explicit"`` (not a policy) and unknown names get sensible fallbacks,
    so reports keep working for arbitrary mechanism strings.
    """
    if mechanism == "explicit":
        return "hand-written explicit-signal monitor"
    from repro.core.signalling import describe_policy

    try:
        return describe_policy(mechanism)
    except ValueError:
        return mechanism


@dataclass(frozen=True)
class RunResult:
    """Raw measurements from one saturation run."""

    problem: str
    mechanism: str
    backend: str
    threads: int
    wall_time: float
    operations: int
    backend_metrics: Mapping[str, float]
    monitor_stats: Mapping[str, float]

    @property
    def context_switches(self) -> float:
        return self.backend_metrics.get("context_switches", 0)

    @property
    def predicate_evaluations(self) -> float:
        return self.monitor_stats.get("predicate_evaluations", 0)

    @property
    def signals(self) -> float:
        return self.monitor_stats.get("signals_sent", 0) + self.monitor_stats.get(
            "signal_alls_sent", 0
        )

    def modelled_runtime(self, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Runtime predicted by the cost model from the exact event counts."""
        return cost_model.modelled_runtime_seconds(self.backend_metrics, self.monitor_stats)

    def metric(self, name: str, cost_model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Fetch a metric by name (used by the generic reporting code)."""
        if name == "wall_time":
            return self.wall_time
        if name == "modelled_runtime":
            return self.modelled_runtime(cost_model)
        if name == "context_switches":
            return self.context_switches
        if name == "predicate_evaluations":
            return self.predicate_evaluations
        if name == "signals":
            return self.signals
        if name in self.backend_metrics:
            return float(self.backend_metrics[name])
        if name in self.monitor_stats:
            return float(self.monitor_stats[name])
        raise KeyError(f"unknown metric {name!r}")


@dataclass(frozen=True)
class MeasurementPoint:
    """Aggregated measurements for one (mechanism, threads) configuration."""

    problem: str
    mechanism: str
    backend: str
    threads: int
    repetitions: int
    wall_time: float
    modelled_runtime: float
    context_switches: float
    predicate_evaluations: float
    signals: float
    extra: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        if hasattr(self, name) and name != "extra":
            value = getattr(self, name)
            if isinstance(value, (int, float)):
                return float(value)
        if name in self.extra:
            return self.extra[name]
        raise KeyError(f"unknown metric {name!r}")

    def canonical_items(self, include_timing: bool = True) -> Dict[str, object]:
        """The point's content as a plain, deterministically-ordered dict.

        With ``include_timing=False`` every measured wall-clock quantity —
        ``wall_time`` and any ``*_time`` extra (profiling buckets, per-engine
        evaluation timings) — is omitted, leaving only fields that are exact
        functions of the run's event counts.  Two runs of the same config
        agree on that subset bit-for-bit regardless of executor, job count
        or machine load, which is what the serial-vs-process equivalence
        tests and :func:`~repro.harness.export.series_fingerprint` compare.
        """
        items: Dict[str, object] = {
            "problem": self.problem,
            "mechanism": self.mechanism,
            "backend": self.backend,
            "threads": self.threads,
            "repetitions": self.repetitions,
            "modelled_runtime": self.modelled_runtime,
            "context_switches": self.context_switches,
            "predicate_evaluations": self.predicate_evaluations,
            "signals": self.signals,
        }
        if include_timing:
            items["wall_time"] = self.wall_time
        extra = {
            key: value
            for key, value in sorted(self.extra.items())
            if include_timing or not key.endswith("_time")
        }
        items["extra"] = extra
        return items


@dataclass
class ExperimentSeries:
    """One figure's worth of data: points per mechanism over the x-axis."""

    name: str
    x_label: str
    backend: str
    points: Dict[str, List[MeasurementPoint]] = field(default_factory=dict)

    def add(self, point: MeasurementPoint) -> None:
        self.points.setdefault(point.mechanism, []).append(point)

    def mechanisms(self) -> Sequence[str]:
        return tuple(self.points)

    def label_for(self, mechanism: str) -> str:
        """Human-readable label of one of the series' mechanisms."""
        return mechanism_label(mechanism)

    def x_values(self) -> List[int]:
        values: List[int] = []
        for series in self.points.values():
            for point in series:
                if point.threads not in values:
                    values.append(point.threads)
        return sorted(values)

    def point_for(self, mechanism: str, threads: int) -> Optional[MeasurementPoint]:
        for point in self.points.get(mechanism, ()):
            if point.threads == threads:
                return point
        return None


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values) if values else 0.0


def aggregate_runs(
    runs: Sequence[RunResult],
    drop_extremes: bool = True,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    rank_metric: str = "wall_time",
) -> MeasurementPoint:
    """Aggregate repetitions of the same configuration into one point.

    With ``drop_extremes`` (the paper's protocol) the best and worst
    repetition according to *rank_metric* are removed before averaging,
    provided at least three repetitions are available.
    """
    if not runs:
        raise ValueError("cannot aggregate an empty list of runs")
    first = runs[0]
    for run in runs:
        if (run.problem, run.mechanism, run.backend, run.threads) != (
            first.problem,
            first.mechanism,
            first.backend,
            first.threads,
        ):
            raise ValueError("all runs in an aggregate must share the same configuration")

    kept = list(runs)
    if drop_extremes and len(kept) >= 3:
        kept.sort(key=lambda run: run.metric(rank_metric, cost_model))
        kept = kept[1:-1]

    # Keep the mean of every raw counter so downstream reports (e.g. the
    # Table 1 CPU-usage breakdown) can be built from aggregated points.
    monitor_keys = sorted({key for run in kept for key in run.monitor_stats})
    backend_keys = sorted({key for run in kept for key in run.backend_metrics})
    extra = {
        key: _mean([run.monitor_stats.get(key, 0.0) for run in kept]) for key in monitor_keys
    }
    extra.update(
        {
            f"backend_{key}": _mean([run.backend_metrics.get(key, 0.0) for run in kept])
            for key in backend_keys
        }
    )
    extra["notified_threads"] = _mean(
        [run.backend_metrics.get("notified_threads", 0.0) for run in kept]
    )

    return MeasurementPoint(
        problem=first.problem,
        mechanism=first.mechanism,
        backend=first.backend,
        threads=first.threads,
        repetitions=len(kept),
        wall_time=_mean([run.wall_time for run in kept]),
        modelled_runtime=_mean([run.modelled_runtime(cost_model) for run in kept]),
        context_switches=_mean([run.context_switches for run in kept]),
        predicate_evaluations=_mean([run.predicate_evaluations for run in kept]),
        signals=_mean([run.signals for run in kept]),
        extra=extra,
    )
