"""A simple cost model turning event counts into a modelled runtime.

The simulation backend counts exactly how many context switches, monitor
entries, predicate evaluations and signals a signalling mechanism causes.
The paper's runtime figures are driven by those quantities (plus constant
per-operation work), so weighting the counts with representative costs gives
a *modelled runtime* whose shape — which mechanism wins, by roughly what
factor, where the curves cross — can be compared with the paper's plots
without being distorted by the GIL.

The default weights are order-of-magnitude figures for a 2010s x86 server
(a few microseconds per context switch, well under a microsecond per
predicate evaluation); the ablation benchmark
``benchmarks/test_ablation_cost_model.py`` shows the qualitative conclusions
are insensitive to the exact values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Per-event costs, in microseconds."""

    context_switch_us: float = 5.0
    monitor_entry_us: float = 0.5
    predicate_evaluation_us: float = 0.4
    signal_us: float = 0.8
    wait_us: float = 1.0

    def modelled_runtime_seconds(
        self,
        backend_metrics: Mapping[str, float],
        monitor_stats: Mapping[str, float],
    ) -> float:
        """Combine counters into a modelled runtime in seconds."""
        context_switches = backend_metrics.get("context_switches", 0)
        entries = monitor_stats.get("entries", 0)
        evaluations = monitor_stats.get("predicate_evaluations", 0)
        signals = (
            monitor_stats.get("signals_sent", 0)
            + monitor_stats.get("signal_alls_sent", 0)
            + backend_metrics.get("notified_threads", 0)
        )
        waits = monitor_stats.get("waits", 0)
        total_us = (
            context_switches * self.context_switch_us
            + entries * self.monitor_entry_us
            + evaluations * self.predicate_evaluation_us
            + signals * self.signal_us
            + waits * self.wait_us
        )
        return total_us / 1e6


DEFAULT_COST_MODEL = CostModel()
