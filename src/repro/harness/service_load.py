"""Sustained-load driver for the service tier: many parked coroutine waiters.

The saturation harness (:mod:`repro.harness.saturation`) measures
synchronization *overhead* — a handful of threads hammering one monitor.
The service tier asks the opposite question: how does an automatic-signal
monitor behave when it is the admission controller of a server holding
**10^4–10^6 parked waiters**, with a signaller draining them at a sustained
rate?  That workload is untestable with OS threads (a thread per waiter
stops scaling around 10^3); on the asyncio backend every waiter is a
coroutine parked on a per-waiter future, so a million of them fit in one
process.

Two entry points:

* :func:`run_service_load` — the monitor-level driver.  Parks ``waiters``
  coroutines on a builtin declarative scenario (``resource_pool`` — one
  fully shared guard — or ``fifo_semaphore`` — one ticket-equivalence
  guard per waiter) with an admission window of ``window`` slots, drives a
  signaller coroutine that releases a slot per completed admission
  (optionally paced at ``target_rate`` releases/second), and reports
  sustained ops/s plus p50/p99 wakeup latency.  Conservation invariants
  (slots out == slots back) are asserted before the result is returned.
* :func:`measure_relay_modes` — the manager-level companion.  Parks the
  same waiter count behind ``waiters // SHARD`` distinct predicates on a
  bare :class:`~repro.core.condition_manager.ConditionManager` and times
  steady-state relay passes with the incremental (dirty-set) search
  against the exhaustive one, so the throughput numbers ship with the
  per-pass evaluation ratio that explains them.

Latency accounting: the signaller stamps ``time.monotonic()`` after each
release; the next admitted waiter pops the oldest stamp, so a wakeup
latency is "release that freed a slot → admitted coroutine running again".
The first ``window`` admissions ride the initial free slots with no
release behind them and are excluded.  Rates are also reported per core
(``ops_per_sec / cpu_count``) so numbers from boxes with different core
counts — including the 1-CPU CI fallback — stay comparable.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.condition_manager import ConditionManager
from repro.core.instrumentation import MonitorStats
from repro.core.write_tracking import WriteTracker
from repro.predicates import compile_predicate
from repro.predicates.evaluator import evaluate
from repro.predicates.parser import parse_predicate

__all__ = ["ServiceLoadResult", "run_service_load", "measure_relay_modes"]

#: Scenario adapters: how each supported builtin scenario maps onto the
#: park/drain protocol.  ``params`` turns the admission window into the
#: scenario's parameter overrides; ``checks`` are conservation equalities
#: over the final monitor state (field name -> expected value callable).
_SCENARIOS: Dict[str, Dict[str, object]] = {
    "resource_pool": {
        "acquire": "acquire_low",
        "release": "release_low",
        "params": lambda window: {"size": window, "reserve": 0},
        "final_state": lambda window, waiters: {
            "free": window,
            "low_held": 0,
            "low_served": waiters,
        },
    },
    "fifo_semaphore": {
        "acquire": "acquire",
        "release": "release",
        "params": lambda window: {"permits": window},
        "final_state": lambda window, waiters: {
            "available": window,
            "acquired": waiters,
            "released": waiters,
        },
    },
}

#: Waiters per distinct predicate in :func:`measure_relay_modes`.
RELAY_SHARD = 16


@dataclass
class ServiceLoadResult:
    """Measurements of one sustained-load run."""

    scenario: str
    waiters: int
    window: int
    mechanism: str
    #: Admissions + releases completed (2 * waiters on a clean run).
    operations: int
    duration_seconds: float
    ops_per_sec: float
    #: ``ops_per_sec / cpu_count`` — the honest cross-machine number.
    ops_per_sec_per_core: float
    cpu_count: int
    #: Wakeup latencies in seconds (release -> admitted coroutine running).
    p50_wakeup_seconds: float
    p99_wakeup_seconds: float
    latency_samples: int
    #: Relevant monitor counters (signals sent, wakeups, evaluations, ...).
    stats: Dict[str, float] = field(default_factory=dict)

    def as_record(self) -> Dict[str, object]:
        """The result as a JSON-ready dictionary."""
        record = {
            name: getattr(self, name)
            for name in (
                "scenario",
                "waiters",
                "window",
                "mechanism",
                "operations",
                "duration_seconds",
                "ops_per_sec",
                "ops_per_sec_per_core",
                "cpu_count",
                "p50_wakeup_seconds",
                "p99_wakeup_seconds",
                "latency_samples",
            )
        }
        record["stats"] = dict(self.stats)
        return record


def percentile(samples: List[float], fraction: float) -> float:
    """The *fraction*-th percentile of *samples* (nearest-rank; 0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _build_scenario_monitor(
    scenario: str, window: int, backend, mechanism: str, **monitor_kwargs
):
    """Compile the builtin *scenario* with an admission window of *window*.

    The shared initials of the supported scenarios depend only on their
    parameters, so the state environment is just the merged parameter set —
    no role sizing is involved (the service driver brings its own
    coroutines).
    """
    from repro.problems.registry import get_problem

    adapter = _SCENARIOS.get(scenario)
    if adapter is None:
        raise ValueError(
            f"unsupported service-load scenario {scenario!r}; "
            f"supported: {sorted(_SCENARIOS)}"
        )
    problem = get_problem(scenario)
    spec = problem.spec
    merged = dict(spec.params)
    merged.update(adapter["params"](window))
    state: Dict[str, object] = dict(merged)
    for name, initial in spec.shared.items():
        if isinstance(initial, str):
            state[name] = evaluate(parse_predicate(initial), merged)
        else:
            state[name] = initial
    monitor = problem.monitor_cls(
        state, backend=backend, signalling=mechanism, **monitor_kwargs
    )
    return monitor, adapter


def run_service_load(
    waiters: int,
    scenario: str = "resource_pool",
    window: int = 64,
    mechanism: str = "autosynch",
    target_rate: Optional[float] = None,
    backend=None,
    **monitor_kwargs,
) -> ServiceLoadResult:
    """Park *waiters* coroutines on *scenario* and drain them; measure.

    Every waiter runs one admission action (``acquire_low`` /``acquire``)
    through the coroutine driver and reports completion on a queue; the
    signaller coroutine answers each completion with one release, keeping
    ``window`` admission slots circulating until all waiters are through.
    *target_rate* paces the signaller (releases per second; ``None`` =
    drain at full speed).  The returned result carries throughput, wakeup
    latency percentiles and the monitor's own counters; conservation of
    the scenario's admission slots is asserted before returning.
    """
    if waiters < 1:
        raise ValueError(f"waiters must be >= 1, got {waiters}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if backend is None:
        from repro.runtime.asyncio_backend import AsyncioBackend

        backend = AsyncioBackend()
    from repro.core.async_driver import run_action

    monitor, adapter = _build_scenario_monitor(
        scenario, window, backend, mechanism, **monitor_kwargs
    )
    acquire_action = adapter["acquire"]
    release_action = adapter["release"]

    completions: "asyncio.Queue[int]" = asyncio.Queue()
    release_stamps: "deque[float]" = deque()
    latencies: List[float] = []
    pacing = None if target_rate is None else 1.0 / target_rate

    async def waiter_task() -> None:
        await run_action(monitor, acquire_action)
        resumed = time.monotonic()
        if release_stamps:
            # The oldest unconsumed release is the one whose freed slot
            # admitted us; the first `window` admissions ride the initial
            # free slots (empty deque) and record no sample.
            latencies.append(resumed - release_stamps.popleft())
        completions.put_nowait(1)

    async def signaller_task() -> None:
        for _ in range(waiters):
            await completions.get()
            if pacing is not None:
                await asyncio.sleep(pacing)
            await run_action(monitor, release_action)
            release_stamps.append(time.monotonic())

    targets = [waiter_task for _ in range(waiters)]
    targets.append(signaller_task)
    names = [f"waiter-{index}" for index in range(waiters)] + ["signaller"]

    started = time.monotonic()
    backend.run(targets, names)
    duration = time.monotonic() - started

    expected = adapter["final_state"](window, waiters)
    for field_name, value in expected.items():
        actual = getattr(monitor, field_name)
        if actual != value:
            raise AssertionError(
                f"conservation violated after {scenario!r} service load: "
                f"{field_name} == {actual!r}, expected {value!r}"
            )

    operations = 2 * waiters
    cpu_count = os.cpu_count() or 1
    ops_per_sec = operations / duration if duration > 0 else float("inf")
    snapshot = monitor.stats.snapshot()
    return ServiceLoadResult(
        scenario=scenario,
        waiters=waiters,
        window=window,
        mechanism=mechanism,
        operations=operations,
        duration_seconds=duration,
        ops_per_sec=ops_per_sec,
        ops_per_sec_per_core=ops_per_sec / cpu_count,
        cpu_count=cpu_count,
        p50_wakeup_seconds=percentile(latencies, 0.50),
        p99_wakeup_seconds=percentile(latencies, 0.99),
        latency_samples=len(latencies),
        stats={
            name: snapshot[name]
            for name in (
                "waits",
                "wakeups",
                "spurious_wakeups",
                "signals_sent",
                "predicate_evaluations",
                "relay_signal_calls",
                "relay_entries_skipped",
                "eval_context_allocations",
            )
        },
    )


# ---------------------------------------------------------------------------
# Manager-level relay-mode comparison
# ---------------------------------------------------------------------------


class _BenchLock:
    def acquire(self):
        return None

    def release(self):
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


class _BenchCondition:
    def notify(self):
        return None

    def notify_n(self, n):
        return None

    def notify_all(self):
        return None

    def waiter_count(self):
        return 0


class _BenchBackend:
    name = "service-bench"

    def create_lock(self):
        return _BenchLock()

    def create_condition(self, lock):
        return _BenchCondition()

    def current_id(self):
        return 0


class _BenchState:
    """Attribute bag standing in for a monitor with sharded guard fields."""


def measure_relay_modes(
    waiters: int, passes: int = 20, shard: int = RELAY_SHARD
) -> Dict[str, object]:
    """Per-pass relay cost at *waiters* parked waiters, both search modes.

    Registers ``max(1, waiters // shard)`` distinct never-true predicates
    (each standing for *shard* co-parked waiters — the service tier's
    sharded-guard shape) on a bare condition manager, then times *passes*
    steady-state relay passes in which exactly one guard field is written:

    * ``incremental`` drains the dirty set — one evaluation per pass;
    * ``exhaustive`` re-evaluates every registered predicate per pass.

    Returns both modes' per-pass seconds and evaluations plus the
    exhaustive/incremental ratios the throughput benchmark asserts on.
    """
    shards = max(1, waiters // shard)
    forms = []
    for index in range(shards):
        name = f"slot{index}"
        forms.append(compile_predicate(f"{name} != 1", {name}).globalized())

    record: Dict[str, object] = {
        "waiters": waiters,
        "predicates": shards,
        "passes": passes,
    }
    for mode, tracker in (("incremental", WriteTracker()), ("exhaustive", None)):
        owner = _BenchState()
        for index in range(shards):
            setattr(owner, f"slot{index}", 1)  # slot != 1 is false: never woken
        backend = _BenchBackend()
        manager = ConditionManager(
            owner=owner,
            backend=backend,
            lock=backend.create_lock(),
            stats=MonitorStats(),
            use_tags=True,
            write_tracker=tracker,
        )
        for form in forms:
            entry = manager.acquire_entry(form, from_shared_predicate=True)
            manager.add_waiter(entry)
        stats = manager._stats
        # Warmup pass: every predicate evaluates once (false), so the
        # incremental manager reaches steady state (dirty set drained).
        assert not manager.relay_signal()
        evals_before = stats.predicate_evaluations
        started = time.perf_counter()
        for index in range(passes):
            name = f"slot{index % shards}"
            setattr(owner, name, 1)  # keeps the predicate false
            if tracker is not None:
                tracker.bump(name)
            assert not manager.relay_signal()
        elapsed = time.perf_counter() - started
        record[mode] = {
            "per_pass_seconds": elapsed / passes,
            "evals_per_pass": (stats.predicate_evaluations - evals_before) / passes,
            "eval_context_allocations": stats.eval_context_allocations,
        }
    incremental = record["incremental"]
    exhaustive = record["exhaustive"]
    record["eval_ratio"] = exhaustive["evals_per_pass"] / max(
        incremental["evals_per_pass"], 1e-9
    )
    record["per_pass_seconds_ratio"] = exhaustive["per_pass_seconds"] / max(
        incremental["per_pass_seconds"], 1e-12
    )
    return record
