"""Plain-text reporting: the tables/series the experiment scripts print.

The paper presents line plots; the text equivalent used here is a table with
the x-axis value in the first column and one column per mechanism, which is
enough to compare shapes (who wins, by what factor, where curves cross).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.harness.results import ExperimentSeries

__all__ = ["format_table", "series_to_rows", "format_series_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render *rows* under *headers* as a fixed-width text table."""
    columns = len(headers)
    normalized: List[List[str]] = []
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
        normalized.append([_format_cell(cell) for cell in row])
    widths = [len(str(header)) for header in headers]
    for row in normalized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(columns)),
    ]
    for row in normalized:
        lines.append("  ".join(cell.rjust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e6 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:,.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def series_to_rows(series: ExperimentSeries, metric: str) -> List[List[object]]:
    """Convert a series into table rows: one row per x value, one column per
    mechanism, cells holding *metric*."""
    mechanisms = list(series.mechanisms())
    rows: List[List[object]] = []
    for x_value in series.x_values():
        row: List[object] = [x_value]
        for mechanism in mechanisms:
            point = series.point_for(mechanism, x_value)
            row.append(point.metric(metric) if point is not None else "-")
        rows.append(row)
    return rows


def format_series_table(
    series: ExperimentSeries, metric: str, title: str = "", legend: bool = True
) -> str:
    """Render one metric of a series as a text table, with an optional title.

    With ``legend`` (the default) a key is appended mapping each mechanism
    column to its signalling policy's ``describe()`` label, so series built
    from arbitrary registered policies stay self-explanatory.
    """
    mechanisms = list(series.mechanisms())
    headers = [series.x_label] + mechanisms
    table = format_table(headers, series_to_rows(series, metric))
    heading = title or f"{series.name} — {metric} ({series.backend} backend)"
    lines = [heading, table]
    if legend:
        for mechanism in mechanisms:
            label = series.label_for(mechanism)
            if label != mechanism:
                lines.append(f"  {mechanism}: {label}")
    return "\n".join(lines)
