"""The experiment runner: sweeps thread counts and mechanisms for one figure.

``RunConfig`` captures everything needed to regenerate one figure or table of
the paper: the problem, the mechanisms to compare, the x-axis values, the
operation budget, the number of repetitions, the backend — and, since the
execution layer became pluggable, *how* the sweep's cells are executed
(``executor``/``jobs``).

``ExperimentRunner.run`` is three pure stages built on
:mod:`repro.harness.execution`:

1. enumerate the config into picklable :class:`RunCell` units,
2. map the cells through the configured executor (``"serial"`` in-process,
   ``"process"`` sharded over a ``multiprocessing`` pool, or any other
   registered executor),
3. deterministically merge the per-cell results — repetition ordering and
   the paper's drop-best/drop-worst protocol included — into an
   :class:`ExperimentSeries` that is identical regardless of executor or
   job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.harness.execution import (
    FrozenMapping,
    create_executor,
    enumerate_cells,
    execute_cell,
    merge_cell_results,
)
from repro.harness.results import (
    ExperimentSeries,
    MeasurementPoint,
    aggregate_runs,
)
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems import get_problem
from repro.problems.base import MECHANISMS, Problem

__all__ = ["RunConfig", "ExperimentRunner", "run_point"]


@dataclass(frozen=True)
class RunConfig:
    """Configuration for one experiment sweep.

    Instances are genuinely immutable and hashable: sequence fields are
    normalized to tuples and ``problem_params`` to a
    :class:`~repro.harness.execution.FrozenMapping`, so configs are safe to
    use as shard or cache keys and ``replace()``/``scaled()`` copies share
    no mutable state.
    """

    problem: str
    thread_counts: Tuple[int, ...]
    #: Any mechanism names a problem supports: ``"explicit"`` plus every
    #: registered signalling policy (defaults to the paper's comparison set).
    mechanisms: Tuple[str, ...] = MECHANISMS
    total_ops: int = 2_000
    repetitions: int = 3
    drop_extremes: bool = True
    backend: str = "simulation"
    seed: int = 0
    profile: bool = False
    #: Run the automatic monitors with relay-invariance checking enabled.
    validate: bool = False
    #: Predicate-evaluation engine for the automatic monitors
    #: (``"compiled"`` or ``"interpreted"``).
    eval_engine: str = DEFAULT_ENGINE
    #: Registered executor that runs the sweep's cells (``"serial"`` or
    #: ``"process"``; see :mod:`repro.harness.execution`).
    executor: str = "serial"
    #: Worker count for executors that parallelize (ignored by ``"serial"``).
    #: ``None`` leaves the count to the executor's own default — one worker
    #: per core for ``"process"`` — so selecting a parallel executor without
    #: a job count actually parallelizes.
    jobs: Optional[int] = None
    #: Metric the drop-best/drop-worst protocol ranks repetitions by.
    #: ``None`` selects ``"modelled_runtime"`` on the simulation backend —
    #: a deterministic function of the exact event counts, so the same
    #: repetitions are dropped on every run — and measured ``"wall_time"``
    #: on the threading backend.
    rank_metric: Optional[str] = None
    x_label: str = "# threads"
    problem_params: Mapping[str, object] = field(default_factory=dict)
    #: For problems compiled from a runtime-registered declarative scenario
    #: (``--scenario`` sweeps): the spec as JSON.  Cells carry it to worker
    #: processes, which re-register the scenario before resolving the
    #: problem name — required wherever workers don't inherit the parent's
    #: registry (the ``spawn`` start method).  A JSON string (not a dict)
    #: keeps the config hashable.
    scenario_json: Optional[str] = None
    #: Wall-clock safety net per run cell, in seconds (simulation backend
    #: only; ``None`` keeps the kernel's default).  A cell that exceeds it
    #: fails with a hang verdict and a parked-thread autopsy instead of
    #: wedging the whole sweep.
    run_timeout: Optional[float] = None
    #: Per-cell re-attempts after a failure (0 = fail fast).  Retries run
    #: with exponential backoff, inside the worker for parallel executors.
    cell_retries: int = 0
    #: Base delay in seconds between cell retry attempts; doubles each time.
    retry_backoff: float = 0.1

    def __post_init__(self) -> None:
        object.__setattr__(self, "thread_counts", tuple(self.thread_counts))
        object.__setattr__(self, "mechanisms", tuple(self.mechanisms))
        if not isinstance(self.problem_params, FrozenMapping):
            object.__setattr__(
                self, "problem_params", FrozenMapping(self.problem_params)
            )

    @property
    def effective_rank_metric(self) -> str:
        """The metric repetitions are actually ranked by (see ``rank_metric``)."""
        if self.rank_metric is not None:
            return self.rank_metric
        return "modelled_runtime" if self.backend == "simulation" else "wall_time"

    def scaled(self, total_ops: Optional[int] = None, repetitions: Optional[int] = None,
               thread_counts: Optional[Sequence[int]] = None) -> "RunConfig":
        """Return a copy with a smaller/larger budget (used by the benchmarks
        to run quick versions of the full paper sweeps)."""
        updates: dict = {}
        if total_ops is not None:
            updates["total_ops"] = total_ops
        if repetitions is not None:
            updates["repetitions"] = repetitions
        if thread_counts is not None:
            updates["thread_counts"] = tuple(thread_counts)
        return replace(self, **updates)

    def with_executor(self, executor: Optional[str] = None,
                      jobs: Optional[int] = None) -> "RunConfig":
        """Return a copy with the execution knobs overridden (``None`` keeps
        the current value)."""
        updates: dict = {}
        if executor is not None:
            updates["executor"] = executor
        if jobs is not None:
            updates["jobs"] = jobs
        return replace(self, **updates) if updates else self


def run_point(
    problem: Union[Problem, str],
    config: RunConfig,
    mechanism: str,
    threads: int,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> MeasurementPoint:
    """Run all repetitions of one ``(mechanism, threads)`` configuration.

    A top-level, picklable entry point (like
    :func:`~repro.harness.saturation.run_workload`): it depends only on its
    arguments, so it can itself be shipped to worker processes.  Cells are
    seeded with the same coordinate-derived :func:`cell_seed` scheme the
    full sweep uses, so a point run in isolation reproduces the exact runs
    of the same point inside a sweep.
    """
    problem_name = problem.name if isinstance(problem, Problem) else str(problem)
    point_config = replace(
        config,
        problem=problem_name,
        mechanisms=(mechanism,),
        thread_counts=(threads,),
    )
    runs = [execute_cell(cell) for cell in enumerate_cells(point_config)]
    return aggregate_runs(
        runs,
        drop_extremes=config.drop_extremes,
        cost_model=cost_model,
        rank_metric=config.effective_rank_metric,
    )


class ExperimentRunner:
    """Executes :class:`RunConfig` sweeps through the execution subsystem."""

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._cost_model = cost_model
        self._progress = progress

    def _report(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run_point(
        self,
        problem: Union[Problem, str],
        config: RunConfig,
        mechanism: str,
        threads: int,
    ) -> MeasurementPoint:
        """Run all repetitions of one (mechanism, threads) configuration."""
        return run_point(problem, config, mechanism, threads, cost_model=self._cost_model)

    def run(self, config: RunConfig) -> ExperimentSeries:
        """Run the full sweep described by *config*.

        Mechanism and executor names are validated before any work starts,
        so a typo fails fast instead of halfway through a sweep.  Progress
        messages are emitted once per completed cell, in deterministic cell
        order, from this process — the executor contract forwards worker
        completions to the parent, so lines never interleave or go missing
        under parallel execution.
        """
        problem = get_problem(config.problem)
        supported = problem.supported_mechanisms()
        unknown = [name for name in config.mechanisms if name not in supported]
        if unknown:
            raise ValueError(
                f"unknown mechanism(s) {unknown} for problem {config.problem!r}; "
                f"supported: {supported}"
            )
        executor = create_executor(
            config.executor,
            jobs=config.jobs,
            # Forwarded only when retrying is on, so custom executors with a
            # legacy __init__(jobs) signature keep working by default.
            retries=config.cell_retries or None,
            retry_backoff=config.retry_backoff if config.cell_retries else None,
        )
        cells = enumerate_cells(config)
        progress = None
        if self._progress is not None:
            total = len(cells)

            def progress(index, cell, result):
                self._report(f"{cell.describe()}/{config.repetitions} [{index + 1}/{total}]")

        results = executor.run_cells(cells, progress=progress)
        return merge_cell_results(config, cells, results, cost_model=self._cost_model)
