"""The experiment runner: sweeps thread counts and mechanisms for one figure.

``RunConfig`` captures everything needed to regenerate one figure or table of
the paper: the problem, the mechanisms to compare, the x-axis values, the
operation budget, the number of repetitions and the backend.  The runner
executes every combination, aggregates repetitions with the paper's
drop-best/drop-worst protocol and returns an :class:`ExperimentSeries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.harness.results import ExperimentSeries, MeasurementPoint, RunResult, aggregate_runs
from repro.harness.saturation import make_backend, run_workload
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems import get_problem
from repro.problems.base import MECHANISMS, Problem

__all__ = ["RunConfig", "ExperimentRunner"]


@dataclass(frozen=True)
class RunConfig:
    """Configuration for one experiment sweep."""

    problem: str
    thread_counts: Tuple[int, ...]
    #: Any mechanism names a problem supports: ``"explicit"`` plus every
    #: registered signalling policy (defaults to the paper's comparison set).
    mechanisms: Tuple[str, ...] = MECHANISMS
    total_ops: int = 2_000
    repetitions: int = 3
    drop_extremes: bool = True
    backend: str = "simulation"
    seed: int = 0
    profile: bool = False
    #: Run the automatic monitors with relay-invariance checking enabled.
    validate: bool = False
    #: Predicate-evaluation engine for the automatic monitors
    #: (``"compiled"`` or ``"interpreted"``).
    eval_engine: str = DEFAULT_ENGINE
    x_label: str = "# threads"
    problem_params: Dict[str, object] = field(default_factory=dict)

    def scaled(self, total_ops: Optional[int] = None, repetitions: Optional[int] = None,
               thread_counts: Optional[Sequence[int]] = None) -> "RunConfig":
        """Return a copy with a smaller/larger budget (used by the benchmarks
        to run quick versions of the full paper sweeps)."""
        updates: Dict[str, object] = {}
        if total_ops is not None:
            updates["total_ops"] = total_ops
        if repetitions is not None:
            updates["repetitions"] = repetitions
        if thread_counts is not None:
            updates["thread_counts"] = tuple(thread_counts)
        return replace(self, **updates)


class ExperimentRunner:
    """Executes :class:`RunConfig` sweeps."""

    def __init__(
        self,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._cost_model = cost_model
        self._progress = progress

    def _report(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    def run_point(
        self,
        problem: Problem,
        config: RunConfig,
        mechanism: str,
        threads: int,
    ) -> MeasurementPoint:
        """Run all repetitions of one (mechanism, threads) configuration."""
        runs: List[RunResult] = []
        for repetition in range(config.repetitions):
            backend = make_backend(config.backend, seed=config.seed + repetition)
            runs.append(
                run_workload(
                    problem,
                    mechanism,
                    backend,
                    threads=threads,
                    total_ops=config.total_ops,
                    seed=config.seed + repetition,
                    profile=config.profile,
                    validate=config.validate,
                    eval_engine=config.eval_engine,
                    **config.problem_params,
                )
            )
        return aggregate_runs(
            runs, drop_extremes=config.drop_extremes, cost_model=self._cost_model
        )

    def run(self, config: RunConfig) -> ExperimentSeries:
        """Run the full sweep described by *config*.

        Mechanism names are validated against the problem's supported set
        (which includes every registered signalling policy) before any work
        starts, so a typo fails fast instead of halfway through a sweep.
        """
        problem = get_problem(config.problem)
        supported = problem.supported_mechanisms()
        unknown = [name for name in config.mechanisms if name not in supported]
        if unknown:
            raise ValueError(
                f"unknown mechanism(s) {unknown} for problem {config.problem!r}; "
                f"supported: {supported}"
            )
        series = ExperimentSeries(
            name=config.problem, x_label=config.x_label, backend=config.backend
        )
        for mechanism in config.mechanisms:
            for threads in config.thread_counts:
                self._report(
                    f"{config.problem}: mechanism={mechanism} threads={threads}"
                )
                series.add(self.run_point(problem, config, mechanism, threads))
        return series
