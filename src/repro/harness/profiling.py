"""Table 1 support: a CPU-usage-style breakdown per signalling mechanism.

The paper profiles the round-robin access pattern with YourKit and reports,
per mechanism, how much CPU time is spent in ``await``, lock handling,
``relaySignal`` and tag management.  Here the same breakdown is produced from
the monitor's own instrumentation:

* on the **threading** backend with ``profile=True`` the buckets are measured
  wall-clock times;
* on the **simulation** backend the buckets are modelled from the exact event
  counts using the cost model, which preserves the paper's headline
  observation (tagging removes ~95% of the relaySignal cost for a small tag
  management overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.harness.results import RunResult

__all__ = [
    "UsageBreakdown",
    "EvalEngineBreakdown",
    "cpu_usage_breakdown",
    "eval_engine_breakdown",
    "eval_engine_rows",
    "modelled_breakdown_from_counters",
    "series_usage_breakdowns",
    "breakdown_rows",
]

#: Column order of Table 1.
BUCKETS = ("await", "lock", "relay_signal", "tag_manager", "others")


@dataclass(frozen=True)
class UsageBreakdown:
    """Per-mechanism time split, in seconds (measured or modelled)."""

    mechanism: str
    await_time: float
    lock_time: float
    relay_signal_time: float
    tag_manager_time: float
    others_time: float

    @property
    def total(self) -> float:
        return (
            self.await_time
            + self.lock_time
            + self.relay_signal_time
            + self.tag_manager_time
            + self.others_time
        )

    def share(self, bucket: str) -> float:
        """Fraction of the total spent in *bucket* (0 when the total is 0)."""
        value = getattr(self, f"{bucket}_time")
        return value / self.total if self.total else 0.0


def _measured_breakdown(result: RunResult) -> UsageBreakdown:
    stats = result.monitor_stats
    await_time = stats.get("await_time", 0.0)
    lock_time = stats.get("lock_time", 0.0)
    relay = stats.get("relay_signal_time", 0.0)
    tag = stats.get("tag_manager_time", 0.0)
    others = max(result.wall_time - (await_time + lock_time + relay + tag), 0.0)
    return UsageBreakdown(result.mechanism, await_time, lock_time, relay, tag, others)


def modelled_breakdown_from_counters(
    mechanism: str,
    monitor_stats: Mapping[str, float],
    backend_metrics: Mapping[str, float],
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> UsageBreakdown:
    """Build a Table-1-style breakdown from raw counters using the cost model."""
    stats = monitor_stats
    metrics = backend_metrics
    await_time = (
        stats.get("waits", 0) * cost_model.wait_us
        + metrics.get("context_switches", 0) * cost_model.context_switch_us
    ) / 1e6
    lock_time = stats.get("entries", 0) * cost_model.monitor_entry_us / 1e6
    relay = (
        stats.get("predicate_evaluations", 0) * cost_model.predicate_evaluation_us
        + stats.get("relay_signal_calls", 0) * cost_model.signal_us
        + stats.get("tag_hash_lookups", 0) * cost_model.predicate_evaluation_us
        + stats.get("tag_heap_checks", 0) * cost_model.predicate_evaluation_us
        + stats.get("exhaustive_checks", 0) * cost_model.predicate_evaluation_us
    ) / 1e6
    tag = (
        (stats.get("tag_insertions", 0) + stats.get("tag_removals", 0))
        * cost_model.predicate_evaluation_us
    ) / 1e6
    others = (
        stats.get("signals_sent", 0) + stats.get("signal_alls_sent", 0)
    ) * cost_model.signal_us / 1e6
    return UsageBreakdown(mechanism, await_time, lock_time, relay, tag, others)


def _modelled_breakdown(result: RunResult, cost_model: CostModel) -> UsageBreakdown:
    return modelled_breakdown_from_counters(
        result.mechanism, result.monitor_stats, result.backend_metrics, cost_model
    )


def cpu_usage_breakdown(
    result: RunResult, cost_model: CostModel = DEFAULT_COST_MODEL
) -> UsageBreakdown:
    """Build the Table-1-style breakdown for one run.

    Measured time buckets are used when they were collected (threading
    backend with profiling on); otherwise the breakdown is modelled from the
    event counts.
    """
    stats = result.monitor_stats
    measured_total = (
        stats.get("await_time", 0.0)
        + stats.get("lock_time", 0.0)
        + stats.get("relay_signal_time", 0.0)
        + stats.get("tag_manager_time", 0.0)
    )
    if measured_total > 0:
        return _measured_breakdown(result)
    return _modelled_breakdown(result, cost_model)


def series_usage_breakdowns(
    series,
    threads: Optional[int] = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[UsageBreakdown]:
    """One modelled :class:`UsageBreakdown` per mechanism of a series.

    Works from the *aggregated* points (whose ``extra`` carries the mean of
    every raw monitor counter and, prefixed with ``backend_``, every
    backend metric), not from raw :class:`RunResult` values — so breakdowns
    can be built after the executor merge, no matter which process produced
    the underlying runs.  ``threads`` selects the x value to profile
    (default: the largest in the series, matching the paper's Table 1).
    """
    if threads is None:
        xs = series.x_values()
        if not xs:
            return []
        threads = xs[-1]
    breakdowns: List[UsageBreakdown] = []
    for mechanism in series.mechanisms():
        point = series.point_for(mechanism, threads)
        if point is None:
            continue
        monitor_stats = {
            key: value
            for key, value in point.extra.items()
            if not key.startswith("backend_")
        }
        backend_metrics = {
            key[len("backend_"):]: value
            for key, value in point.extra.items()
            if key.startswith("backend_")
        }
        breakdowns.append(
            modelled_breakdown_from_counters(
                mechanism, monitor_stats, backend_metrics, cost_model
            )
        )
    return breakdowns


@dataclass(frozen=True)
class EvalEngineBreakdown:
    """Compiled-vs-interpreted attribution of one run's predicate work.

    Counters come straight from ``MonitorStats``: how many evaluations each
    engine served, the wall-clock spent inside them (populated when
    profiling was on), and how many shared reads the per-pass EvalContext
    caches absorbed.  This is what lets a report attribute the compiled
    engine's win instead of just observing a faster total.
    """

    mechanism: str
    compiled_evaluations: int
    interpreted_evaluations: int
    compiled_eval_time: float
    interpreted_eval_time: float
    shared_read_cache_hits: int
    shared_expr_cache_hits: int
    #: Entries relay passes skipped via dirty-set search (0 when the
    #: incremental path is off — exhaustive search never skips).
    relay_entries_skipped: int = 0
    #: Evaluations served by fused batch closures (a subset of
    #: ``compiled_evaluations``).
    batched_evaluations: int = 0

    @property
    def total_evaluations(self) -> int:
        return self.compiled_evaluations + self.interpreted_evaluations

    @property
    def compiled_share(self) -> float:
        """Fraction of evaluations served by the compiled engine."""
        total = self.total_evaluations
        return self.compiled_evaluations / total if total else 0.0


def eval_engine_breakdown(result: RunResult) -> EvalEngineBreakdown:
    """Extract the evaluation-engine attribution from one run's stats."""
    stats = result.monitor_stats
    return EvalEngineBreakdown(
        mechanism=result.mechanism,
        compiled_evaluations=int(stats.get("compiled_evaluations", 0)),
        interpreted_evaluations=int(stats.get("interpreted_evaluations", 0)),
        compiled_eval_time=stats.get("compiled_eval_time", 0.0),
        interpreted_eval_time=stats.get("interpreted_eval_time", 0.0),
        shared_read_cache_hits=int(stats.get("shared_read_cache_hits", 0)),
        shared_expr_cache_hits=int(stats.get("shared_expr_cache_hits", 0)),
        relay_entries_skipped=int(stats.get("relay_entries_skipped", 0)),
        batched_evaluations=int(stats.get("batched_evaluations", 0)),
    )


def eval_engine_rows(
    breakdowns: Sequence[EvalEngineBreakdown],
) -> List[List[object]]:
    """Table rows: per-engine evaluation counts, timings and cache hits."""
    rows: List[List[object]] = []
    for breakdown in breakdowns:
        rows.append(
            [
                breakdown.mechanism,
                breakdown.compiled_evaluations,
                breakdown.interpreted_evaluations,
                f"{100.0 * breakdown.compiled_share:.1f}%",
                breakdown.compiled_eval_time,
                breakdown.interpreted_eval_time,
                breakdown.shared_read_cache_hits + breakdown.shared_expr_cache_hits,
                breakdown.relay_entries_skipped,
                breakdown.batched_evaluations,
            ]
        )
    return rows


def breakdown_rows(
    breakdowns: Sequence[UsageBreakdown],
) -> List[List[object]]:
    """Rows matching Table 1: time and percentage per bucket, plus the total."""
    rows: List[List[object]] = []
    for breakdown in breakdowns:
        row: List[object] = [breakdown.mechanism]
        for bucket in BUCKETS:
            value = getattr(breakdown, f"{bucket}_time")
            row.append(value)
            row.append(f"{100.0 * breakdown.share(bucket):.1f}%")
        row.append(breakdown.total)
        rows.append(row)
    return rows
