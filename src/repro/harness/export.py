"""Export of experiment series to CSV (for plotting outside this repo).

The paper presents its evaluation as line plots.  ``series_to_csv`` writes
one row per (x value, mechanism) pair with every aggregated metric, which is
directly loadable by pandas/gnuplot/spreadsheets to regenerate the figures
graphically; ``write_series_csv`` puts it on disk.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.results import ExperimentSeries

__all__ = ["CSV_COLUMNS", "series_to_csv", "write_series_csv"]

#: Fixed column order of the exported file.
CSV_COLUMNS = (
    "experiment",
    "backend",
    "threads",
    "mechanism",
    "repetitions",
    "wall_time_s",
    "modelled_runtime_s",
    "context_switches",
    "predicate_evaluations",
    "signals",
)


def series_to_csv(series: ExperimentSeries, extra_metrics: Sequence[str] = ()) -> str:
    """Render *series* as CSV text.

    ``extra_metrics`` names additional per-point metrics (any key stored in
    ``MeasurementPoint.extra``) to append as columns; missing values are left
    empty rather than failing, so series from different problems can share a
    column list.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(CSV_COLUMNS) + list(extra_metrics))
    for threads in series.x_values():
        for mechanism in series.mechanisms():
            point = series.point_for(mechanism, threads)
            if point is None:
                continue
            row = [
                series.name,
                series.backend,
                threads,
                mechanism,
                point.repetitions,
                f"{point.wall_time:.6f}",
                f"{point.modelled_runtime:.6f}",
                f"{point.context_switches:.1f}",
                f"{point.predicate_evaluations:.1f}",
                f"{point.signals:.1f}",
            ]
            for metric in extra_metrics:
                try:
                    row.append(f"{point.metric(metric):.3f}")
                except KeyError:
                    row.append("")
            writer.writerow(row)
    return buffer.getvalue()


def write_series_csv(
    series: ExperimentSeries,
    path: Path | str,
    extra_metrics: Sequence[str] = (),
) -> Path:
    """Write the CSV for *series* to *path* and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(series, extra_metrics), encoding="utf-8")
    return path
