"""Export of experiment series to CSV and JSON (for use outside this repo).

The paper presents its evaluation as line plots.  ``series_to_csv`` writes
one row per (x value, mechanism) pair with every aggregated metric, which is
directly loadable by pandas/gnuplot/spreadsheets to regenerate the figures
graphically; ``write_series_csv`` puts it on disk.

``series_to_dict``/``write_series_json`` produce a canonical, fully-ordered
JSON form of a series (the format of the ``BENCH_*`` CI artifacts), and
``series_fingerprint`` hashes that form with every measured wall-clock
quantity stripped — the digest two sweeps of the same config must agree on
regardless of executor, job count or machine, which is how the
serial-vs-process equivalence is checked end to end.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.harness.results import ExperimentSeries

__all__ = [
    "CSV_COLUMNS",
    "series_to_csv",
    "write_series_csv",
    "series_to_dict",
    "write_series_json",
    "series_fingerprint",
]

#: Fixed column order of the exported file.
CSV_COLUMNS = (
    "experiment",
    "backend",
    "threads",
    "mechanism",
    "repetitions",
    "wall_time_s",
    "modelled_runtime_s",
    "context_switches",
    "predicate_evaluations",
    "signals",
)


def series_to_csv(series: ExperimentSeries, extra_metrics: Sequence[str] = ()) -> str:
    """Render *series* as CSV text.

    ``extra_metrics`` names additional per-point metrics (any key stored in
    ``MeasurementPoint.extra``) to append as columns; missing values are left
    empty rather than failing, so series from different problems can share a
    column list.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(CSV_COLUMNS) + list(extra_metrics))
    for threads in series.x_values():
        for mechanism in series.mechanisms():
            point = series.point_for(mechanism, threads)
            if point is None:
                continue
            row = [
                series.name,
                series.backend,
                threads,
                mechanism,
                point.repetitions,
                f"{point.wall_time:.6f}",
                f"{point.modelled_runtime:.6f}",
                f"{point.context_switches:.1f}",
                f"{point.predicate_evaluations:.1f}",
                f"{point.signals:.1f}",
            ]
            for metric in extra_metrics:
                try:
                    row.append(f"{point.metric(metric):.3f}")
                except KeyError:
                    row.append("")
            writer.writerow(row)
    return buffer.getvalue()


def write_series_csv(
    series: ExperimentSeries,
    path: Path | str,
    extra_metrics: Sequence[str] = (),
) -> Path:
    """Write the CSV for *series* to *path* and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(series_to_csv(series, extra_metrics), encoding="utf-8")
    return path


def series_to_dict(series: ExperimentSeries, include_timing: bool = True) -> Dict:
    """Render *series* as a canonical, JSON-ready dictionary.

    Points are listed per mechanism in x order; with
    ``include_timing=False`` measured wall-clock quantities are omitted
    (see :meth:`~repro.harness.results.MeasurementPoint.canonical_items`).
    """
    return {
        "experiment": series.name,
        "x_label": series.x_label,
        "backend": series.backend,
        "mechanisms": list(series.mechanisms()),
        "points": {
            mechanism: [
                point.canonical_items(include_timing)
                for point in sorted(points, key=lambda p: p.threads)
            ]
            for mechanism, points in series.points.items()
        },
    }


def write_series_json(
    series: ExperimentSeries, path: Path | str, include_timing: bool = True
) -> Path:
    """Write the canonical JSON form of *series* to *path* and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = series_to_dict(series, include_timing)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def series_fingerprint(series: ExperimentSeries) -> str:
    """A stable hex digest of the series' deterministic content.

    Wall-clock measurements are excluded, so two sweeps of the same config
    — serial or sharded over any number of worker processes — produce the
    same fingerprint, and any divergence in the exact counters shows up as
    a digest mismatch.
    """
    payload = json.dumps(series_to_dict(series, include_timing=False), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
