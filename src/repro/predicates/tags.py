"""Predicate tags (Definitions 5–8 and Fig. 3 of the paper).

A tag summarizes one DNF conjunction so the condition manager can decide
cheaply whether the conjunction *could* be true in the current monitor state:

* ``Equivalence`` — the conjunction contains an atom ``SE == LE``.  After
  globalization ``LE`` is a constant, so the conjunction can only be true
  when the shared expression currently equals that constant.  Stored in a
  hash table keyed by the constant.
* ``Threshold`` — the conjunction contains an atom ``SE op LE`` with
  ``op ∈ {<, <=, >, >=}``.  Stored in a min-heap (for ``>``/``>=``) or a
  max-heap (for ``<``/``<=``) so only the weakest threshold needs checking.
* ``None`` — neither of the above; the conjunction must be checked
  exhaustively.

Following the paper, only **one** tag is assigned per conjunction, with
equivalence preferred over threshold because it prunes harder.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.predicates.ast_nodes import Compare, Expr, unparse
from repro.predicates.dnf import Conjunction, DNFPredicate
from repro.predicates.evaluator import EvaluationError, evaluate
from repro.predicates.rewrite import normalize_comparison

__all__ = ["TagKind", "Tag", "tag_conjunction", "analyze_predicate", "THRESHOLD_OPS"]

#: Comparison operators that produce a threshold tag.
THRESHOLD_OPS = ("<", "<=", ">", ">=")


class TagKind(enum.Enum):
    """The ``M`` component of a tag (Definition 8)."""

    EQUIVALENCE = "equivalence"
    THRESHOLD = "threshold"
    NONE = "none"


@dataclass(frozen=True)
class Tag:
    """A predicate tag ``(M, expr, key, op)``.

    ``expr_key`` is the canonical source form of the shared expression and is
    what the condition manager uses to group tags that talk about the same
    expression; ``shared_expr`` is the IR tree used to evaluate it.
    """

    kind: TagKind
    expr_key: Optional[str] = None
    shared_expr: Optional[Expr] = None
    key: Optional[object] = None
    op: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is TagKind.NONE:
            if self.expr_key is not None or self.key is not None or self.op is not None:
                raise ValueError("a None tag carries no expression, key or operator")
        else:
            if self.shared_expr is None or self.expr_key is None:
                raise ValueError(f"a {self.kind.value} tag requires a shared expression")
            if self.kind is TagKind.THRESHOLD and self.op not in THRESHOLD_OPS:
                raise ValueError(f"invalid threshold operator {self.op!r}")
            if self.kind is TagKind.EQUIVALENCE and self.op is not None:
                raise ValueError("an equivalence tag has no operator")

    def describe(self) -> str:
        """Human-readable rendering used in reports and error messages."""
        if self.kind is TagKind.NONE:
            return "(None)"
        if self.kind is TagKind.EQUIVALENCE:
            return f"(Equivalence, {self.expr_key}, {self.key!r})"
        return f"(Threshold, {self.expr_key}, {self.key!r}, {self.op})"


_NONE_TAG = Tag(TagKind.NONE)


def _constant_key(local_expr: Expr) -> Optional[object]:
    """Evaluate the local side of a normalized comparison to its constant.

    Tagging happens after globalization, so the local side should contain
    only constants.  If it does not (e.g. a shared predicate whose atoms were
    never meant to be tagged), return ``None`` so the caller falls back to a
    weaker tag.
    """
    try:
        value = evaluate(local_expr, state=None, local_values={})
    except EvaluationError:
        return None
    if isinstance(value, bool) or isinstance(value, (int, float, str, tuple)):
        return value
    return None


def tag_conjunction(conjunction: Conjunction) -> Tag:
    """Assign the single tag for one conjunction (the algorithm of Fig. 3)."""
    threshold_candidate: Optional[Tag] = None
    for atom in conjunction:
        if not isinstance(atom, Compare):
            continue
        normalized = normalize_comparison(atom)
        if normalized is None:
            continue
        key = _constant_key(normalized.right)
        if key is None:
            continue
        expr_key = unparse(normalized.left)
        if normalized.op == "==":
            # Equivalence wins immediately: it prunes hardest.
            return Tag(
                TagKind.EQUIVALENCE,
                expr_key=expr_key,
                shared_expr=normalized.left,
                key=key,
            )
        if normalized.op in THRESHOLD_OPS and threshold_candidate is None:
            threshold_candidate = Tag(
                TagKind.THRESHOLD,
                expr_key=expr_key,
                shared_expr=normalized.left,
                key=key,
                op=normalized.op,
            )
    if threshold_candidate is not None:
        return threshold_candidate
    return _NONE_TAG


def analyze_predicate(dnf: DNFPredicate) -> Tuple[Tag, ...]:
    """Return one tag per conjunction of *dnf*, in order."""
    return tuple(tag_conjunction(conjunction) for conjunction in dnf)
