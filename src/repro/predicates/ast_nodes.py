"""Expression IR used to represent ``waituntil`` conditions.

The IR is intentionally small: it covers the expression language that the
paper's predicates use (integer/boolean arithmetic over monitor fields and
thread-local values, comparisons, boolean connectives, container length and
indexing) while staying analyzable.  Every node is an immutable dataclass so
trees can be hashed, shared between predicates, and used as dictionary keys
by the condition manager.

Scopes
------
Each :class:`Name` carries a :class:`Scope`:

* ``SHARED`` — a monitor field (the paper's set *S*), readable by every
  thread that holds the monitor lock.
* ``LOCAL`` — a variable local to the thread executing ``waituntil`` (the
  paper's set *L*); frozen to a constant by globalization.
* ``UNKNOWN`` — not yet classified (the parser produces these; the
  classification pass resolves them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Tuple, Union

__all__ = [
    "Scope",
    "Expr",
    "Const",
    "BoolConst",
    "Name",
    "Attribute",
    "Subscript",
    "Call",
    "UnaryOp",
    "BinOp",
    "Compare",
    "Not",
    "And",
    "Or",
    "COMPARISON_OPS",
    "ARITHMETIC_OPS",
    "NEGATED_COMPARISON",
    "FLIPPED_COMPARISON",
    "children",
    "walk",
    "unparse",
]


class Scope(enum.Enum):
    """Where a variable lives relative to the monitor."""

    SHARED = "shared"
    LOCAL = "local"
    UNKNOWN = "unknown"


#: Comparison operators supported in predicates.
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

#: Arithmetic operators supported in shared/local expressions.
ARITHMETIC_OPS = ("+", "-", "*", "//", "/", "%")

#: Mapping used when pushing a negation through a comparison.
NEGATED_COMPARISON = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

#: Mapping used when swapping the two sides of a comparison.
FLIPPED_COMPARISON = {
    "==": "==",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


@dataclass(frozen=True)
class Expr:
    """Base class for every IR node."""

    def is_boolean_structure(self) -> bool:
        """Return True for nodes that shape the boolean formula (And/Or/Not)."""
        return False


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (int, float, str, None, tuple of constants)."""

    value: object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class BoolConst(Expr):
    """A literal ``True`` or ``False``."""

    value: bool


@dataclass(frozen=True)
class Name(Expr):
    """A variable reference.

    ``ident`` is the variable name as written in the predicate (with any
    leading ``self.`` stripped by the parser).  ``scope`` records whether the
    variable is a monitor field or a thread-local value.
    """

    ident: str
    scope: Scope = Scope.UNKNOWN


@dataclass(frozen=True)
class Attribute(Expr):
    """Attribute access, e.g. ``queue.head`` where ``queue`` is a field."""

    value: Expr
    attr: str


@dataclass(frozen=True)
class Subscript(Expr):
    """Indexing, e.g. ``chopsticks[i]``."""

    value: Expr
    index: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A call to one of the whitelisted pure functions (``len``, ``abs``,
    ``min``, ``max``) or to a zero/positional-argument method on a shared
    object (e.g. ``waiting.count()``)."""

    func: str
    args: Tuple[Expr, ...] = ()
    receiver: Expr | None = None


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary arithmetic, currently only negation ``-x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary arithmetic: ``+ - * // / %``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Compare(Expr):
    """A single comparison ``left op right`` — the atoms of predicates."""

    op: str
    left: Expr
    right: Expr

    def negate(self) -> "Compare":
        """Return the comparison with the opposite truth value."""
        return Compare(NEGATED_COMPARISON[self.op], self.left, self.right)

    def flipped(self) -> "Compare":
        """Return the comparison with its two sides swapped (same meaning)."""
        return Compare(FLIPPED_COMPARISON[self.op], self.right, self.left)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation of a sub-formula."""

    operand: Expr

    def is_boolean_structure(self) -> bool:
        return True


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction of two or more sub-formulas."""

    operands: Tuple[Expr, ...] = field(default_factory=tuple)

    def is_boolean_structure(self) -> bool:
        return True


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction of two or more sub-formulas."""

    operands: Tuple[Expr, ...] = field(default_factory=tuple)

    def is_boolean_structure(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Tree utilities
# ---------------------------------------------------------------------------


def children(node: Expr) -> Tuple[Expr, ...]:
    """Return the direct sub-expressions of *node* (empty for leaves)."""
    if isinstance(node, (Const, BoolConst, Name)):
        return ()
    if isinstance(node, Attribute):
        return (node.value,)
    if isinstance(node, Subscript):
        return (node.value, node.index)
    if isinstance(node, Call):
        base: Tuple[Expr, ...] = (node.receiver,) if node.receiver is not None else ()
        return base + tuple(node.args)
    if isinstance(node, UnaryOp):
        return (node.operand,)
    if isinstance(node, (BinOp, Compare)):
        return (node.left, node.right)
    if isinstance(node, Not):
        return (node.operand,)
    if isinstance(node, (And, Or)):
        return tuple(node.operands)
    raise TypeError(f"unknown IR node type: {type(node)!r}")


def walk(node: Expr) -> Iterator[Expr]:
    """Yield *node* and every node beneath it, pre-order."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(children(current)))


_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "not": 3,
    "cmp": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "//": 6,
    "/": 6,
    "%": 6,
    "unary": 7,
    "atom": 8,
}


def _prec(node: Expr) -> int:
    if isinstance(node, Or):
        return _PRECEDENCE["or"]
    if isinstance(node, And):
        return _PRECEDENCE["and"]
    if isinstance(node, Not):
        return _PRECEDENCE["not"]
    if isinstance(node, Compare):
        return _PRECEDENCE["cmp"]
    if isinstance(node, BinOp):
        return _PRECEDENCE[node.op]
    if isinstance(node, UnaryOp):
        return _PRECEDENCE["unary"]
    return _PRECEDENCE["atom"]


def _wrap(parent_prec: int, node: Expr) -> str:
    text = unparse(node)
    if _prec(node) < parent_prec:
        return f"({text})"
    return text


def unparse(node: Expr) -> str:
    """Render an IR tree back to a canonical, Python-compatible source string.

    The output is deterministic for equal trees, which makes it usable as the
    canonical key in the condition manager's predicate table.
    """
    if isinstance(node, Const):
        return repr(node.value)
    if isinstance(node, BoolConst):
        return "True" if node.value else "False"
    if isinstance(node, Name):
        return node.ident
    if isinstance(node, Attribute):
        return f"{_wrap(_PRECEDENCE['atom'], node.value)}.{node.attr}"
    if isinstance(node, Subscript):
        return f"{_wrap(_PRECEDENCE['atom'], node.value)}[{unparse(node.index)}]"
    if isinstance(node, Call):
        args = ", ".join(unparse(arg) for arg in node.args)
        if node.receiver is not None:
            return f"{_wrap(_PRECEDENCE['atom'], node.receiver)}.{node.func}({args})"
        return f"{node.func}({args})"
    if isinstance(node, UnaryOp):
        return f"{node.op}{_wrap(_PRECEDENCE['unary'], node.operand)}"
    if isinstance(node, BinOp):
        prec = _PRECEDENCE[node.op]
        left = _wrap(prec, node.left)
        # Subtraction/division are left-associative: parenthesize an equal-
        # precedence right operand so ``a - (b - c)`` round-trips correctly.
        right_prec = prec + 1 if node.op in ("-", "/", "//", "%") else prec
        right = _wrap(right_prec, node.right)
        return f"{left} {node.op} {right}"
    if isinstance(node, Compare):
        prec = _PRECEDENCE["cmp"]
        return f"{_wrap(prec + 1, node.left)} {node.op} {_wrap(prec + 1, node.right)}"
    if isinstance(node, Not):
        return f"not {_wrap(_PRECEDENCE['not'], node.operand)}"
    if isinstance(node, And):
        prec = _PRECEDENCE["and"]
        return " and ".join(_wrap(prec, op) for op in node.operands)
    if isinstance(node, Or):
        prec = _PRECEDENCE["or"]
        return " or ".join(_wrap(prec, op) for op in node.operands)
    raise TypeError(f"unknown IR node type: {type(node)!r}")
