"""Parse ``waituntil`` condition source text into the predicate IR.

The parser accepts ordinary Python expression syntax (what a programmer would
write inside ``waituntil(...)``), using :mod:`ast` for the front end, and maps
it onto the small IR defined in :mod:`repro.predicates.ast_nodes`.

Conventions:

* ``self.<field>`` refers to a monitor field; the leading ``self.`` is
  stripped so the IR name is just ``<field>``.  A bare name may refer either
  to a monitor field or to a thread-local variable — that is resolved later by
  :func:`repro.predicates.classify.classify`.
* Chained comparisons (``0 < x < n``) are expanded into a conjunction of
  binary comparisons.
* Only a whitelist of pure builtins (``len``, ``abs``, ``min``, ``max``) and
  argument-pure method calls are allowed, because the runtime may evaluate a
  predicate many times on behalf of a waiting thread and must not trigger
  side effects.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
)
from repro.predicates.errors import PredicateParseError

__all__ = ["parse_predicate", "ALLOWED_BUILTINS", "SELF_NAMES"]

#: Pure builtins that may appear in predicates.
ALLOWED_BUILTINS = frozenset({"len", "abs", "min", "max", "sum", "all", "any"})

#: Names treated as a reference to the monitor object itself.
SELF_NAMES = frozenset({"self"})

_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
    ast.Div: "/",
    ast.Mod: "%",
}

_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    # ``is`` / ``is not`` are accepted as equality tests so the idiomatic
    # ``value is None`` works in predicates; monitor predicates compare
    # scalars and None, for which identity and equality coincide.
    ast.Is: "==",
    ast.IsNot: "!=",
}


def parse_predicate(source: str) -> Expr:
    """Parse *source* (a Python expression) into the predicate IR.

    Raises :class:`PredicateParseError` for syntax errors and for constructs
    outside the supported expression language.
    """
    if not isinstance(source, str):
        raise PredicateParseError(
            f"predicate source must be a string, got {type(source).__name__}"
        )
    stripped = source.strip()
    if not stripped:
        raise PredicateParseError("predicate source is empty", source)
    try:
        tree = ast.parse(stripped, mode="eval")
    except SyntaxError as exc:
        raise PredicateParseError(f"invalid syntax: {exc.msg}", source) from exc
    return _convert(tree.body, source)


def _convert(node: ast.AST, source: str) -> Expr:
    if isinstance(node, ast.BoolOp):
        operands = tuple(_convert(value, source) for value in node.values)
        if isinstance(node.op, ast.And):
            return And(operands)
        return Or(operands)

    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.Not):
            return Not(_convert(node.operand, source))
        if isinstance(node.op, ast.USub):
            operand = _convert(node.operand, source)
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return Const(-operand.value)
            return UnaryOp("-", operand)
        if isinstance(node.op, ast.UAdd):
            return _convert(node.operand, source)
        raise PredicateParseError(
            f"unsupported unary operator {type(node.op).__name__}", source
        )

    if isinstance(node, ast.BinOp):
        op_type = type(node.op)
        if op_type not in _BIN_OPS:
            raise PredicateParseError(
                f"unsupported binary operator {op_type.__name__}", source
            )
        return BinOp(
            _BIN_OPS[op_type], _convert(node.left, source), _convert(node.right, source)
        )

    if isinstance(node, ast.Compare):
        return _convert_compare(node, source)

    if isinstance(node, ast.Constant):
        if node.value is True or node.value is False:
            return BoolConst(bool(node.value))
        if node.value is None or isinstance(node.value, (int, float, str)):
            return Const(node.value)
        raise PredicateParseError(
            f"unsupported constant {node.value!r}", source
        )

    if isinstance(node, ast.Name):
        if node.id in SELF_NAMES:
            raise PredicateParseError(
                "bare 'self' cannot be used as a value in a predicate", source
            )
        return Name(node.id)

    if isinstance(node, ast.Attribute):
        return _convert_attribute(node, source)

    if isinstance(node, ast.Subscript):
        return Subscript(_convert(node.value, source), _convert(node.slice, source))

    if isinstance(node, ast.Call):
        return _convert_call(node, source)

    if isinstance(node, ast.Tuple):
        values = []
        for element in node.elts:
            converted = _convert(element, source)
            if not isinstance(converted, Const):
                raise PredicateParseError(
                    "tuples in predicates may only contain constants", source
                )
            values.append(converted.value)
        return Const(tuple(values))

    raise PredicateParseError(
        f"unsupported construct {type(node).__name__}", source
    )


def _convert_compare(node: ast.Compare, source: str) -> Expr:
    operands = [node.left, *node.comparators]
    comparisons = []
    for left, op, right in zip(operands, node.ops, operands[1:]):
        op_type = type(op)
        if op_type not in _CMP_OPS:
            raise PredicateParseError(
                f"unsupported comparison operator {op_type.__name__}", source
            )
        comparisons.append(
            Compare(_CMP_OPS[op_type], _convert(left, source), _convert(right, source))
        )
    if len(comparisons) == 1:
        return comparisons[0]
    return And(tuple(comparisons))


def _convert_attribute(node: ast.Attribute, source: str) -> Expr:
    if isinstance(node.value, ast.Name) and node.value.id in SELF_NAMES:
        # ``self.count`` — an explicit monitor field reference.  Mark it
        # shared right away; classification only has to resolve bare names.
        return Name(node.attr, Scope.SHARED)
    return Attribute(_convert(node.value, source), node.attr)


def _convert_call(node: ast.Call, source: str) -> Expr:
    if node.keywords:
        raise PredicateParseError("keyword arguments are not allowed in predicates", source)
    args = tuple(_convert(arg, source) for arg in node.args)
    func = node.func
    if isinstance(func, ast.Name):
        if func.id not in ALLOWED_BUILTINS:
            raise PredicateParseError(
                f"call to {func.id!r} is not allowed in a predicate; only "
                f"{sorted(ALLOWED_BUILTINS)} are permitted",
                source,
            )
        return Call(func.id, args)
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name) and func.value.id in SELF_NAMES:
            # ``self.method(...)`` — a side-effect-free query method on the
            # monitor itself.  Represented with no receiver; the evaluator
            # resolves it against the monitor object.
            return Call(func.attr, args, receiver=None)
        return Call(func.attr, args, receiver=_convert(func.value, source))
    raise PredicateParseError("unsupported call target in predicate", source)
