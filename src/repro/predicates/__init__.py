"""Predicate intermediate representation and analysis for AutoSynch.

This package implements the "compiler" half of AutoSynch (Hung & Garg,
PLDI 2013): parsing the conditions of ``waituntil`` statements into a small
expression IR, classifying variables as shared or local, converting formulas
to disjunctive normal form, *globalizing* complex predicates (freezing local
variables to the values they have when ``waituntil`` is invoked), rewriting
comparisons into the ``shared_expression op local_expression`` shape, and
deriving the Equivalence / Threshold / None *tags* the condition manager uses
to decide which thread to signal.

The public surface re-exported here is what the runtime (``repro.core``) and
the source-to-source preprocessor (``repro.preprocessor``) use.
"""

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
    unparse,
    walk,
)
from repro.predicates.classify import (
    ClassificationError,
    classify,
    free_names,
    is_complex_predicate,
    is_shared_predicate,
    scope_of,
)
from repro.predicates.codegen import (
    DEFAULT_ENGINE,
    ENGINES,
    compile_expr,
    compiled_source,
    validate_engine,
)
from repro.predicates.dnf import Conjunction, DNFPredicate, to_dnf, to_nnf
from repro.predicates.errors import PredicateError, PredicateParseError
from repro.predicates.evaluator import (
    EvalContext,
    EvaluationError,
    evaluate,
    read_shared,
)
from repro.predicates.globalization import globalize
from repro.predicates.parser import parse_predicate
from repro.predicates.rewrite import normalize_comparison
from repro.predicates.tags import Tag, TagKind, analyze_predicate, tag_conjunction
from repro.predicates.predicate import CompiledPredicate, compile_predicate

__all__ = [
    "And",
    "Attribute",
    "BinOp",
    "BoolConst",
    "Call",
    "ClassificationError",
    "Compare",
    "CompiledPredicate",
    "Conjunction",
    "Const",
    "DEFAULT_ENGINE",
    "DNFPredicate",
    "ENGINES",
    "EvalContext",
    "EvaluationError",
    "Expr",
    "Name",
    "Not",
    "Or",
    "PredicateError",
    "PredicateParseError",
    "Scope",
    "Subscript",
    "Tag",
    "TagKind",
    "UnaryOp",
    "analyze_predicate",
    "classify",
    "compile_expr",
    "compile_predicate",
    "compiled_source",
    "evaluate",
    "free_names",
    "globalize",
    "is_complex_predicate",
    "is_shared_predicate",
    "normalize_comparison",
    "parse_predicate",
    "read_shared",
    "scope_of",
    "tag_conjunction",
    "to_dnf",
    "to_nnf",
    "unparse",
    "validate_engine",
    "walk",
]
