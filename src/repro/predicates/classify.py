"""Shared/local classification of predicate variables and expressions.

The paper partitions the variables of a predicate into the *shared* variables
``S`` (monitor fields, visible to every thread holding the monitor lock) and
the *local* variables ``L`` (visible only to the thread that invoked
``waituntil``).  A predicate over shared variables only is a *shared
predicate*; one that also mentions local variables is a *complex predicate*
(Definition 1).  Likewise an expression over shared variables only is a
*shared expression* and one over local variables only is a *local expression*
(Definition 5).

This module resolves the scope of every name in a parsed predicate and
answers those classification questions for whole sub-expressions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
    walk,
)
from repro.predicates.errors import PredicateError
from repro.predicates.parser import ALLOWED_BUILTINS

__all__ = [
    "ClassificationError",
    "classify",
    "free_names",
    "scope_of",
    "is_shared_predicate",
    "is_complex_predicate",
    "local_names_used",
    "shared_names_used",
    "uses_monitor_queries",
]


class ClassificationError(PredicateError):
    """Raised when a predicate mentions a name that is neither a monitor
    field nor a supplied local value."""


def classify(
    expr: Expr,
    shared_names: Iterable[str],
    local_names: Iterable[str],
) -> Expr:
    """Return a copy of *expr* with every :class:`Name` scope resolved.

    Names already marked shared (written ``self.x`` in the source) stay
    shared.  Bare names are resolved to local first (mirroring the way a
    method parameter shadows a field in Java), then to shared; names found in
    neither set raise :class:`ClassificationError`.
    """
    shared = set(shared_names)
    local = set(local_names)

    def rebuild(node: Expr) -> Expr:
        if isinstance(node, Name):
            if node.scope is Scope.SHARED:
                return node
            if node.scope is Scope.LOCAL:
                return node
            if node.ident in local:
                return Name(node.ident, Scope.LOCAL)
            if node.ident in shared:
                return Name(node.ident, Scope.SHARED)
            raise ClassificationError(
                f"name {node.ident!r} is neither a monitor field "
                f"({sorted(shared)}) nor a supplied local value ({sorted(local)})"
            )
        if isinstance(node, (Const, BoolConst)):
            return node
        if isinstance(node, Attribute):
            return Attribute(rebuild(node.value), node.attr)
        if isinstance(node, Subscript):
            return Subscript(rebuild(node.value), rebuild(node.index))
        if isinstance(node, Call):
            receiver = rebuild(node.receiver) if node.receiver is not None else None
            return Call(node.func, tuple(rebuild(a) for a in node.args), receiver)
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, rebuild(node.operand))
        if isinstance(node, BinOp):
            return BinOp(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, Compare):
            return Compare(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, Not):
            return Not(rebuild(node.operand))
        if isinstance(node, And):
            return And(tuple(rebuild(op) for op in node.operands))
        if isinstance(node, Or):
            return Or(tuple(rebuild(op) for op in node.operands))
        raise TypeError(f"unknown IR node type: {type(node)!r}")

    return rebuild(expr)


def free_names(expr: Expr) -> Dict[str, Scope]:
    """Return a mapping from each variable name used in *expr* to its scope."""
    names: Dict[str, Scope] = {}
    for node in walk(expr):
        if isinstance(node, Name):
            previous = names.get(node.ident)
            if previous is not None and previous is not node.scope:
                # The same identifier used once as a field (``self.x``) and
                # once as a local would be genuinely ambiguous.
                raise ClassificationError(
                    f"name {node.ident!r} is used with conflicting scopes "
                    f"({previous.value} and {node.scope.value})"
                )
            names[node.ident] = node.scope
    return names


def shared_names_used(expr: Expr) -> Set[str]:
    """Names in *expr* that resolve to monitor fields."""
    return {n for n, scope in free_names(expr).items() if scope is Scope.SHARED}


def local_names_used(expr: Expr) -> Set[str]:
    """Names in *expr* that resolve to thread-local values."""
    return {n for n, scope in free_names(expr).items() if scope is Scope.LOCAL}


def uses_monitor_queries(expr: Expr) -> bool:
    """True when evaluating *expr* calls anything beyond the pure builtins.

    Query methods (and method calls on shared objects) may read monitor
    state that no field assignment ever touches, so the incremental relay
    path must never version-track a predicate containing one — its shared
    *names* do not bound its read set.
    """
    for node in walk(expr):
        if isinstance(node, Call):
            if node.receiver is not None or node.func not in ALLOWED_BUILTINS:
                return True
    return False


def _reads_monitor_state(node: Expr) -> bool:
    """True if evaluating *node* itself (not its children) touches the monitor."""
    if isinstance(node, Name):
        return node.scope is Scope.SHARED
    if isinstance(node, Call):
        # A no-receiver call that is not a whitelisted builtin is a query
        # method on the monitor object, so it reads monitor state.
        return node.receiver is None and node.func not in ALLOWED_BUILTINS
    return False


def scope_of(expr: Expr) -> Optional[Scope]:
    """Classify *expr* as a shared expression, a local expression, or neither.

    Returns ``Scope.SHARED`` when the expression reads monitor state and no
    thread-local values, ``Scope.LOCAL`` when it reads only thread-local
    values and constants, and ``None`` when it mixes both (or still contains
    unresolved names).
    """
    uses_shared = False
    uses_local = False
    for node in walk(expr):
        if isinstance(node, Name):
            if node.scope is Scope.UNKNOWN:
                return None
            if node.scope is Scope.SHARED:
                uses_shared = True
            else:
                uses_local = True
        elif _reads_monitor_state(node):
            uses_shared = True
    if uses_shared and uses_local:
        return None
    if uses_shared:
        return Scope.SHARED
    return Scope.LOCAL


def is_shared_predicate(expr: Expr) -> bool:
    """True when *expr* mentions no thread-local variables (Definition 1)."""
    return all(
        node.scope is Scope.SHARED
        for node in walk(expr)
        if isinstance(node, Name)
    )


def is_complex_predicate(expr: Expr) -> bool:
    """True when *expr* mentions at least one thread-local variable."""
    return not is_shared_predicate(expr)
