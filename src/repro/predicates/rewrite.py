"""Normalization of comparisons into ``shared_expression op local_expression``.

Tags (Definition 8) require each equivalence/threshold atom to have a shared
expression on the left and a local expression (which globalization turns into
a constant) on the right.  Programmers do not write predicates that way — the
paper's example is ``x - a == y + b`` with ``x, y`` shared and ``a, b`` local,
which is rewritten to ``x - y == a + b``.

:func:`normalize_comparison` performs that rewriting:

1. If both sides are additive combinations of terms that are each purely
   shared or purely local, move every shared term to the left and every local
   term (and constant) to the right, adjusting signs (and flipping the
   comparison when the shared side would otherwise be negated).
2. Otherwise, if one whole side is a pure shared expression and the other a
   pure local expression, orient the comparison so the shared side is on the
   left.
3. Anything else (e.g. a product of a shared and a local variable) cannot be
   separated; the atom then gets a ``None`` tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.predicates.ast_nodes import (
    FLIPPED_COMPARISON,
    BinOp,
    Compare,
    Const,
    Expr,
    Scope,
    UnaryOp,
)
from repro.predicates.classify import scope_of

__all__ = ["normalize_comparison"]


@dataclass(frozen=True)
class _Term:
    """One additive term with its sign (+1 or -1)."""

    sign: int
    expr: Expr


def normalize_comparison(atom: Compare) -> Optional[Compare]:
    """Rewrite *atom* into ``SE op LE`` form if possible, else return ``None``.

    The input must already have its name scopes resolved (see
    :func:`repro.predicates.classify.classify`).  The returned comparison has
    a pure shared expression on the left and a pure local expression on the
    right.  Comparisons that do not read any monitor state, or whose sides
    cannot be separated additively, return ``None``.
    """
    left_terms = _additive_terms(atom.left, 1)
    right_terms = _additive_terms(atom.right, 1)
    if left_terms is None or right_terms is None:
        return _orient_whole_sides(atom)

    shared_terms: List[_Term] = []
    local_terms: List[_Term] = []
    # Terms from the left keep their sign when staying on the left and flip
    # when moving to the right; terms from the right do the opposite.
    for term in left_terms:
        scope = scope_of(term.expr)
        if scope is Scope.SHARED:
            shared_terms.append(term)
        elif scope is Scope.LOCAL:
            local_terms.append(_Term(-term.sign, term.expr))
        else:
            return None
    for term in right_terms:
        scope = scope_of(term.expr)
        if scope is Scope.SHARED:
            shared_terms.append(_Term(-term.sign, term.expr))
        elif scope is Scope.LOCAL:
            local_terms.append(term)
        else:
            return None

    if not shared_terms:
        # The comparison never reads monitor state; it is not useful as an
        # equivalence/threshold tag.
        return None

    op = atom.op
    if all(term.sign < 0 for term in shared_terms):
        # Multiply both sides by -1 so the shared expression reads naturally
        # (``turn == me`` instead of ``-turn == -me``) and syntactically
        # equivalent predicates share a canonical form.
        shared_terms = [_Term(-term.sign, term.expr) for term in shared_terms]
        local_terms = [_Term(-term.sign, term.expr) for term in local_terms]
        op = FLIPPED_COMPARISON[op]

    shared_expr = _combine(shared_terms)
    local_expr = _combine(local_terms) if local_terms else Const(0)
    return Compare(op, shared_expr, local_expr)


def _orient_whole_sides(atom: Compare) -> Optional[Compare]:
    """Fallback when a side is not additively separable: orient the whole
    sides if one is purely shared and the other purely local."""
    left_scope = scope_of(atom.left)
    right_scope = scope_of(atom.right)
    if left_scope is Scope.SHARED and right_scope is Scope.LOCAL:
        return atom
    if left_scope is Scope.LOCAL and right_scope is Scope.SHARED:
        return atom.flipped()
    return None


def _additive_terms(expr: Expr, sign: int) -> Optional[List[_Term]]:
    """Flatten *expr* into a list of signed additive terms.

    Returns ``None`` when a term mixes shared and local variables (such terms
    cannot be moved across the comparison).
    """
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = _additive_terms(expr.left, sign)
        if left is None:
            return None
        right_sign = sign if expr.op == "+" else -sign
        right = _additive_terms(expr.right, right_sign)
        if right is None:
            return None
        return left + right
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return _additive_terms(expr.operand, -sign)
    if scope_of(expr) is None:
        return None
    return [_Term(sign, expr)]


def _combine(terms: List[_Term]) -> Expr:
    """Rebuild an expression from signed terms, e.g. ``[+x, -y] -> x - y``."""
    # Fold constant terms together so e.g. ``x + 1 > a + 2`` produces a clean
    # right-hand side.
    constant = 0
    symbolic: List[_Term] = []
    for term in terms:
        if isinstance(term.expr, Const) and isinstance(term.expr.value, (int, float)):
            constant += term.sign * term.expr.value
        else:
            symbolic.append(term)

    result: Optional[Expr] = None
    for term in symbolic:
        if result is None:
            result = term.expr if term.sign > 0 else UnaryOp("-", term.expr)
        elif term.sign > 0:
            result = BinOp("+", result, term.expr)
        else:
            result = BinOp("-", result, term.expr)

    if result is None:
        return Const(constant)
    if constant > 0:
        return BinOp("+", result, Const(constant))
    if constant < 0:
        return BinOp("-", result, Const(-constant))
    return result
