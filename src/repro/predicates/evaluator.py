"""Evaluation of predicate IR trees against monitor state.

The condition manager evaluates predicates *on behalf of waiting threads*
(that is the whole point of globalization), so the evaluator reads shared
variables from a state object — normally the monitor instance itself — and
local variables from an explicit mapping.

The evaluator is deliberately side-effect free: it only reads attributes,
indexes containers, calls the whitelisted pure builtins, and calls query
methods on the monitor when the predicate uses them.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
)
from repro.predicates.errors import PredicateError
from repro.predicates.globalization import _apply_binop, _apply_compare
from repro.predicates.parser import ALLOWED_BUILTINS

__all__ = ["EvaluationError", "evaluate", "evaluate_bool"]

_BUILTINS = {
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "sum": sum,
    "all": all,
    "any": any,
}


class EvaluationError(PredicateError):
    """Raised when a predicate cannot be evaluated against the given state."""


def _read_shared(state: object, name: str) -> object:
    if isinstance(state, Mapping):
        if name not in state:
            raise EvaluationError(f"shared variable {name!r} not found in state mapping")
        return state[name]
    try:
        return getattr(state, name)
    except AttributeError as exc:
        raise EvaluationError(
            f"shared variable {name!r} is not an attribute of {type(state).__name__}"
        ) from exc


def evaluate(
    expr: Expr,
    state: object,
    local_values: Optional[Mapping[str, object]] = None,
) -> object:
    """Evaluate *expr*, reading shared names from *state* and local names from
    *local_values*.  Returns the raw value (not coerced to bool)."""
    locals_map: Mapping[str, object] = local_values or {}

    def ev(node: Expr) -> object:
        if isinstance(node, Const):
            return node.value
        if isinstance(node, BoolConst):
            return node.value
        if isinstance(node, Name):
            if node.scope is Scope.LOCAL:
                if node.ident not in locals_map:
                    raise EvaluationError(
                        f"no value supplied for local variable {node.ident!r}"
                    )
                return locals_map[node.ident]
            if node.scope is Scope.SHARED:
                return _read_shared(state, node.ident)
            # Unresolved name: prefer an explicitly supplied local, then state.
            if node.ident in locals_map:
                return locals_map[node.ident]
            return _read_shared(state, node.ident)
        if isinstance(node, Attribute):
            return getattr(ev(node.value), node.attr)
        if isinstance(node, Subscript):
            container = ev(node.value)
            index = ev(node.index)
            try:
                return container[index]
            except (TypeError, IndexError, KeyError) as exc:
                raise EvaluationError(
                    f"cannot index {type(container).__name__} with {index!r}"
                ) from exc
        if isinstance(node, Call):
            args = [ev(arg) for arg in node.args]
            if node.receiver is None and node.func in _BUILTINS:
                return _BUILTINS[node.func](*args)
            if node.receiver is None:
                # Query method on the monitor object itself.
                target = state
            else:
                target = ev(node.receiver)
            try:
                method = getattr(target, node.func)
            except AttributeError as exc:
                raise EvaluationError(
                    f"{type(target).__name__} has no method {node.func!r}"
                ) from exc
            return method(*args)
        if isinstance(node, UnaryOp):
            if node.op == "-":
                return -ev(node.operand)
            raise EvaluationError(f"unknown unary operator {node.op!r}")
        if isinstance(node, BinOp):
            try:
                return _apply_binop(node.op, ev(node.left), ev(node.right))
            except ZeroDivisionError as exc:
                raise EvaluationError("division by zero while evaluating predicate") from exc
        if isinstance(node, Compare):
            return _apply_compare(node.op, ev(node.left), ev(node.right))
        if isinstance(node, Not):
            return not ev(node.operand)
        if isinstance(node, And):
            for operand in node.operands:
                if not ev(operand):
                    return False
            return True
        if isinstance(node, Or):
            for operand in node.operands:
                if ev(operand):
                    return True
            return False
        raise EvaluationError(f"unknown IR node type: {type(node)!r}")

    return ev(expr)


def evaluate_bool(
    expr: Expr,
    state: object,
    local_values: Optional[Mapping[str, object]] = None,
) -> bool:
    """Evaluate *expr* and coerce the result to a boolean."""
    return bool(evaluate(expr, state, local_values))
