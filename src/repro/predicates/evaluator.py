"""Evaluation of predicate IR trees against monitor state.

The condition manager evaluates predicates *on behalf of waiting threads*
(that is the whole point of globalization), so the evaluator reads shared
variables from a state object — normally the monitor instance itself — and
local variables from an explicit mapping.

The evaluator is deliberately side-effect free: it only reads attributes,
indexes containers, calls the whitelisted pure builtins, and calls query
methods on the monitor when the predicate uses them.

Two engines share these semantics (see :mod:`repro.predicates.codegen` for
the second one):

* the **interpreted** engine below — a tree walk over the IR.  The dispatch
  table and per-node handlers are module-level, so ``evaluate`` does not
  rebuild any closures per call; the per-node cost is one type lookup plus
  one function call.
* the **compiled** engine — each predicate is lowered to a generated Python
  function.  Both engines read shared variables through the same *reader*
  protocol: a callable ``reader(state, name)`` (default
  :func:`read_shared`), which is what lets :class:`EvalContext` memoize
  shared reads for a whole batch of evaluations.

:class:`EvalContext` is the per-relay-pass context the condition manager
evaluates through: while a monitor exit holds the lock, shared state cannot
change, so one context caches every shared-variable and shared-expression
read for the duration of the pass — a batch of N predicates over the same
shared expression costs one read instead of N.
"""

from __future__ import annotations

import operator
import time
from typing import Callable, Dict, Mapping, Optional

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
)
from repro.predicates.errors import PredicateError

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "EvaluationError",
    "EvalContext",
    "evaluate",
    "evaluate_bool",
    "read_shared",
    "validate_engine",
]

#: The available predicate-evaluation engines.
ENGINES = ("compiled", "interpreted")

#: Engine used when nothing is configured: compiled closures with transparent
#: interpreter fallback.
DEFAULT_ENGINE = "compiled"


def validate_engine(name: str) -> str:
    """Return *name* if it is a known evaluation engine, raise otherwise.

    The error mirrors the plugin registries' unknown-name message, so a
    typo'd ``eval_engine`` reads the same as a typo'd policy or scheduler.
    """
    if name not in ENGINES:
        raise ValueError(
            f"unknown eval engine {name!r}; available engines: {ENGINES}"
        )
    return name

_BUILTINS = {
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "sum": sum,
    "all": all,
    "any": any,
}

#: Shared empty mapping used when no local values are supplied.
_EMPTY_LOCALS: Mapping[str, object] = {}

#: Per-type memo of "is this state object a Mapping?".  The ABC
#: ``isinstance`` check costs ~0.6µs per call — more than the rest of a
#: shared read — and the answer is a property of the class, so it is
#: computed once per state type.  (A class registered as a Mapping *after*
#: its first use as a state object would be mis-cached; no supported
#: monitor does that.)
_IS_MAPPING_TYPE: Dict[type, bool] = {}


class EvaluationError(PredicateError):
    """Raised when a predicate cannot be evaluated against the given state."""


def read_shared(state: object, name: str) -> object:
    """Read shared variable *name* from *state* (attribute or mapping key).

    This is the default *reader*: both evaluation engines funnel every
    shared-variable read through a ``reader(state, name)`` callable so a
    caching reader (:meth:`EvalContext.read_shared`) can be substituted.
    """
    cls = state.__class__
    is_mapping = _IS_MAPPING_TYPE.get(cls)
    if is_mapping is None:
        is_mapping = isinstance(state, Mapping)
        _IS_MAPPING_TYPE[cls] = is_mapping
    if is_mapping:
        if name not in state:
            raise EvaluationError(f"shared variable {name!r} not found in state mapping")
        return state[name]
    try:
        return getattr(state, name)
    except AttributeError as exc:
        raise EvaluationError(
            f"shared variable {name!r} is not an attribute of {type(state).__name__}"
        ) from exc


#: Backwards-compatible alias (the pre-engine name of :func:`read_shared`).
_read_shared = read_shared


# ---------------------------------------------------------------------------
# The interpreted engine: module-level dispatch, no per-call closures
# ---------------------------------------------------------------------------

_BINOPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "//": operator.floordiv,
    "/": operator.truediv,
    "%": operator.mod,
}

_COMPARES = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _ev(node: Expr, state: object, locals_map: Mapping[str, object], reader) -> object:
    handler = _DISPATCH.get(type(node))
    if handler is None:
        raise EvaluationError(f"unknown IR node type: {type(node)!r}")
    return handler(node, state, locals_map, reader)


def _ev_const(node, state, locals_map, reader):
    return node.value


def _ev_name(node, state, locals_map, reader):
    scope = node.scope
    if scope is Scope.LOCAL:
        if node.ident not in locals_map:
            raise EvaluationError(
                f"no value supplied for local variable {node.ident!r}"
            )
        return locals_map[node.ident]
    if scope is Scope.SHARED:
        return reader(state, node.ident)
    # Unresolved name: prefer an explicitly supplied local, then state.
    if node.ident in locals_map:
        return locals_map[node.ident]
    return reader(state, node.ident)


def _ev_attribute(node, state, locals_map, reader):
    return getattr(_ev(node.value, state, locals_map, reader), node.attr)


def _ev_subscript(node, state, locals_map, reader):
    container = _ev(node.value, state, locals_map, reader)
    index = _ev(node.index, state, locals_map, reader)
    try:
        return container[index]
    except (TypeError, IndexError, KeyError) as exc:
        raise EvaluationError(
            f"cannot index {type(container).__name__} with {index!r}"
        ) from exc


def _ev_call(node, state, locals_map, reader):
    args = [_ev(arg, state, locals_map, reader) for arg in node.args]
    if node.receiver is None:
        builtin = _BUILTINS.get(node.func)
        if builtin is not None:
            return builtin(*args)
        # Query method on the monitor object itself.
        target = state
    else:
        target = _ev(node.receiver, state, locals_map, reader)
    try:
        method = getattr(target, node.func)
    except AttributeError as exc:
        raise EvaluationError(
            f"{type(target).__name__} has no method {node.func!r}"
        ) from exc
    return method(*args)


def _ev_unaryop(node, state, locals_map, reader):
    if node.op == "-":
        return -_ev(node.operand, state, locals_map, reader)
    raise EvaluationError(f"unknown unary operator {node.op!r}")


def _ev_binop(node, state, locals_map, reader):
    apply = _BINOPS.get(node.op)
    if apply is None:
        raise TypeError(f"unknown operator {node.op!r}")
    try:
        return apply(
            _ev(node.left, state, locals_map, reader),
            _ev(node.right, state, locals_map, reader),
        )
    except ZeroDivisionError as exc:
        raise EvaluationError("division by zero while evaluating predicate") from exc


def _ev_compare(node, state, locals_map, reader):
    apply = _COMPARES.get(node.op)
    if apply is None:
        raise TypeError(f"unknown comparison {node.op!r}")
    return apply(
        _ev(node.left, state, locals_map, reader),
        _ev(node.right, state, locals_map, reader),
    )


def _ev_not(node, state, locals_map, reader):
    return not _ev(node.operand, state, locals_map, reader)


def _ev_and(node, state, locals_map, reader):
    for operand in node.operands:
        if not _ev(operand, state, locals_map, reader):
            return False
    return True


def _ev_or(node, state, locals_map, reader):
    for operand in node.operands:
        if _ev(operand, state, locals_map, reader):
            return True
    return False


_DISPATCH: Dict[type, Callable] = {
    Const: _ev_const,
    BoolConst: _ev_const,
    Name: _ev_name,
    Attribute: _ev_attribute,
    Subscript: _ev_subscript,
    Call: _ev_call,
    UnaryOp: _ev_unaryop,
    BinOp: _ev_binop,
    Compare: _ev_compare,
    Not: _ev_not,
    And: _ev_and,
    Or: _ev_or,
}


def evaluate(
    expr: Expr,
    state: object,
    local_values: Optional[Mapping[str, object]] = None,
    reader: Optional[Callable[[object, str], object]] = None,
) -> object:
    """Evaluate *expr*, reading shared names from *state* and local names from
    *local_values*.  Returns the raw value (not coerced to bool).

    *reader* overrides how shared variables are read (default
    :func:`read_shared`); :class:`EvalContext` passes its memoizing reader
    here so interpreted evaluation also benefits from per-pass caching.
    """
    return _ev(
        expr,
        state,
        local_values if local_values else _EMPTY_LOCALS,
        reader if reader is not None else read_shared,
    )


def evaluate_bool(
    expr: Expr,
    state: object,
    local_values: Optional[Mapping[str, object]] = None,
    reader: Optional[Callable[[object, str], object]] = None,
) -> bool:
    """Evaluate *expr* and coerce the result to a boolean."""
    return bool(evaluate(expr, state, local_values, reader))


# ---------------------------------------------------------------------------
# Per-relay-pass evaluation context
# ---------------------------------------------------------------------------


class EvalContext:
    """Memoizing evaluation context for one relay/search pass.

    The condition manager creates one context per ``relay_signal`` /
    ``signal_many`` / ``relay_signal_fifo`` / ``find_missed_waiter`` pass.
    The monitor lock is held for the whole pass, so shared state cannot
    change mid-pass and it is sound to cache:

    * **shared-variable reads** (:meth:`read_shared`) — N predicates over the
      same monitor field cost one attribute/mapping read, and
    * **shared-expression values** (:meth:`evaluate_shared`) — the tag
      structures' per-column expressions are evaluated once per pass.

    :meth:`holds` dispatches a predicate evaluation to the configured engine
    (``"compiled"`` native closures with interpreter fallback, or
    ``"interpreted"``), wiring the memoizing reader into either one and
    attributing counters/timings to *stats* when given.  The context must be
    discarded at the end of the pass — caches never leak across passes.
    """

    __slots__ = ("state", "engine", "stats", "_reads", "_shared_exprs")

    def __init__(
        self, state: object, engine: str = DEFAULT_ENGINE, stats: Optional[object] = None
    ) -> None:
        self.state = state
        self.engine = validate_engine(engine)
        self.stats = stats
        self._reads: Dict[str, object] = {}
        self._shared_exprs: Dict[str, object] = {}

    def reset(self) -> None:
        """Drop both memo caches, making the context safe for a new pass.

        The pooling alternative to discarding: the condition manager keeps
        one context per manager and resets it at the start of each relay
        pass, so a high-rate relay loop stops allocating a context (and two
        dicts) per pass.
        """
        self._reads.clear()
        self._shared_exprs.clear()

    def read_shared(self, state: object, name: str) -> object:
        """Memoized :func:`read_shared` (reader-protocol compatible)."""
        cache = self._reads
        if name in cache:
            stats = self.stats
            if stats is not None:
                stats.shared_read_cache_hits += 1
            return cache[name]
        value = read_shared(state, name)
        cache[name] = value
        return value

    def evaluate_shared(self, expr: Expr, key: str) -> object:
        """Evaluate a fully-shared expression, memoized under *key*.

        Used by the tag-directed search for the per-column shared
        expressions; *key* is the expression's canonical form.
        """
        cache = self._shared_exprs
        if key in cache:
            stats = self.stats
            if stats is not None:
                stats.shared_expr_cache_hits += 1
            return cache[key]
        value = evaluate(expr, self.state, None, reader=self.read_shared)
        cache[key] = value
        return value

    def holds(self, globalized) -> bool:
        """Evaluate a :class:`GlobalizedPredicate` through this context.

        Uses the predicate's cached compiled closure when the engine is
        ``"compiled"`` and codegen succeeded, the interpreter otherwise;
        either way shared reads go through the per-pass cache.
        """
        stats = self.stats
        if self.engine == "compiled":
            fn = globalized.compiled_fn()
            if fn is not None:
                try:
                    if stats is None:
                        return bool(fn(self.state, self.read_shared, _EMPTY_LOCALS))
                    stats.compiled_evaluations += 1
                    if stats.profiling:
                        started = time.perf_counter()
                        result = bool(fn(self.state, self.read_shared, _EMPTY_LOCALS))
                        stats.compiled_eval_time += time.perf_counter() - started
                        return result
                    return bool(fn(self.state, self.read_shared, _EMPTY_LOCALS))
                except EvaluationError:
                    # Semantic errors have guaranteed class parity with the
                    # interpreter; re-running would raise the same thing.
                    raise
                except Exception:
                    # The closure misbehaved in a way the interpreter cannot
                    # (by construction their semantics agree): quarantine it
                    # and degrade to the interpreter, this pass and forever.
                    globalized.quarantine()
                    if stats is not None:
                        stats.compiled_evaluations -= 1
                        stats.predicate_quarantines += 1
        if stats is None:
            return bool(_ev(globalized.expr, self.state, _EMPTY_LOCALS, self.read_shared))
        stats.interpreted_evaluations += 1
        if stats.profiling:
            started = time.perf_counter()
            result = bool(
                _ev(globalized.expr, self.state, _EMPTY_LOCALS, self.read_shared)
            )
            stats.interpreted_eval_time += time.perf_counter() - started
            return result
        return bool(_ev(globalized.expr, self.state, _EMPTY_LOCALS, self.read_shared))
