"""Globalization of complex predicates (Definition 2 of the paper).

A *complex* predicate mentions thread-local variables, so only the waiting
thread could evaluate it.  Globalization substitutes each local variable with
the value it holds at the moment ``waituntil`` is invoked, producing a shared
predicate that any thread inside the monitor can evaluate on the waiter's
behalf.  Proposition 1 of the paper justifies the substitution: the waiting
thread is blocked, so nobody can change its local variables while it waits.

After substitution, constant sub-expressions are folded so that syntactically
different but equal predicates (``count >= 40 + 8`` vs. ``count >= 48``) map
to the same canonical form and therefore share a condition-manager entry.
"""

from __future__ import annotations

from typing import Mapping

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
)
from repro.predicates.errors import PredicateError

__all__ = ["globalize", "fold_constants"]

#: Types a thread-local value may have to be frozen into a predicate.
_ALLOWED_CONST_TYPES = (int, float, str, bool, type(None))


def _freeze(value: object, name: str) -> object:
    if isinstance(value, bool) or isinstance(value, _ALLOWED_CONST_TYPES):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(item, name) for item in value)
    raise PredicateError(
        f"local variable {name!r} has unsupported type {type(value).__name__}; "
        "only scalars and tuples/lists of scalars can appear in a waituntil predicate"
    )


def globalize(expr: Expr, local_values: Mapping[str, object]) -> Expr:
    """Return the globalization of *expr* with respect to *local_values*.

    Every ``Name`` with ``Scope.LOCAL`` is replaced by a constant holding its
    current value; the result is then constant-folded.  Raises
    :class:`PredicateError` when a local variable has no supplied value or an
    unsupported type.
    """

    def substitute(node: Expr) -> Expr:
        if isinstance(node, Name):
            if node.scope is Scope.LOCAL:
                if node.ident not in local_values:
                    raise PredicateError(
                        f"no value supplied for local variable {node.ident!r} "
                        "during globalization"
                    )
                frozen = _freeze(local_values[node.ident], node.ident)
                if isinstance(frozen, bool):
                    return BoolConst(frozen)
                return Const(frozen)
            return node
        if isinstance(node, (Const, BoolConst)):
            return node
        if isinstance(node, Attribute):
            return Attribute(substitute(node.value), node.attr)
        if isinstance(node, Subscript):
            return Subscript(substitute(node.value), substitute(node.index))
        if isinstance(node, Call):
            receiver = substitute(node.receiver) if node.receiver is not None else None
            return Call(node.func, tuple(substitute(a) for a in node.args), receiver)
        if isinstance(node, UnaryOp):
            return UnaryOp(node.op, substitute(node.operand))
        if isinstance(node, BinOp):
            return BinOp(node.op, substitute(node.left), substitute(node.right))
        if isinstance(node, Compare):
            return Compare(node.op, substitute(node.left), substitute(node.right))
        if isinstance(node, Not):
            return Not(substitute(node.operand))
        if isinstance(node, And):
            return And(tuple(substitute(op) for op in node.operands))
        if isinstance(node, Or):
            return Or(tuple(substitute(op) for op in node.operands))
        raise TypeError(f"unknown IR node type: {type(node)!r}")

    return fold_constants(substitute(expr))


_FOLDABLE_BUILTINS = {
    "len": len,
    "abs": abs,
    "min": min,
    "max": max,
    "sum": sum,
}


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant sub-expressions bottom-up.

    Only arithmetic, comparisons and whitelisted builtins over literals are
    folded; anything touching monitor state is left untouched.
    """
    if isinstance(expr, (Const, BoolConst, Name)):
        return expr
    if isinstance(expr, Attribute):
        return Attribute(fold_constants(expr.value), expr.attr)
    if isinstance(expr, Subscript):
        value = fold_constants(expr.value)
        index = fold_constants(expr.index)
        if isinstance(value, Const) and isinstance(index, Const):
            try:
                return _constify(value.value[index.value])
            except (TypeError, IndexError, KeyError):
                pass
        return Subscript(value, index)
    if isinstance(expr, Call):
        receiver = fold_constants(expr.receiver) if expr.receiver is not None else None
        args = tuple(fold_constants(a) for a in expr.args)
        if (
            receiver is None
            and expr.func in _FOLDABLE_BUILTINS
            and all(isinstance(a, (Const, BoolConst)) for a in args)
        ):
            try:
                values = [a.value for a in args]
                return _constify(_FOLDABLE_BUILTINS[expr.func](*values))
            except (TypeError, ValueError):
                pass
        return Call(expr.func, args, receiver)
    if isinstance(expr, UnaryOp):
        operand = fold_constants(expr.operand)
        if expr.op == "-" and isinstance(operand, Const) and isinstance(
            operand.value, (int, float)
        ):
            return Const(-operand.value)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, BinOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, Const) and isinstance(right, Const):
            try:
                return _constify(_apply_binop(expr.op, left.value, right.value))
            except (TypeError, ZeroDivisionError):
                pass
        return BinOp(expr.op, left, right)
    if isinstance(expr, Compare):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if isinstance(left, (Const, BoolConst)) and isinstance(right, (Const, BoolConst)):
            try:
                return BoolConst(_apply_compare(expr.op, left.value, right.value))
            except TypeError:
                pass
        return Compare(expr.op, left, right)
    if isinstance(expr, Not):
        operand = fold_constants(expr.operand)
        if isinstance(operand, BoolConst):
            return BoolConst(not operand.value)
        return Not(operand)
    if isinstance(expr, And):
        return And(tuple(fold_constants(op) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(fold_constants(op) for op in expr.operands))
    raise TypeError(f"unknown IR node type: {type(expr)!r}")


def _constify(value: object) -> Expr:
    if isinstance(value, bool):
        return BoolConst(value)
    return Const(value)


def _apply_binop(op: str, left: object, right: object) -> object:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "//":
        return left // right
    if op == "/":
        return left / right
    if op == "%":
        return left % right
    raise TypeError(f"unknown operator {op!r}")


def _apply_compare(op: str, left: object, right: object) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise TypeError(f"unknown comparison {op!r}")
