"""High-level predicate objects used by the monitor runtime.

:func:`compile_predicate` runs the whole front-end pipeline — parse,
classify, (lazily) globalize, convert to DNF, derive tags — and produces a
:class:`CompiledPredicate`.  The monitor compiles each distinct ``waituntil``
source string once and reuses the compiled form for every call; only the
globalization step depends on the calling thread's local values.

Both predicate objects additionally carry a lazily-built **compiled
closure** (see :mod:`repro.predicates.codegen`): the IR lowered to a native
Python function with identical semantics to the tree-walking interpreter.
``compiled_fn()`` returns that function (or None when codegen declined, in
which case callers fall back to the interpreter), and ``compiled_holds`` /
``compiled_evaluate`` are the convenience wrappers that do the fallback
automatically.  Closures are cached per instance *and* memoized on the IR
tree module-wide, so re-globalizing a complex predicate with the same local
values never recompiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping, Optional, Tuple

from repro.predicates.ast_nodes import Expr
from repro.predicates.classify import (
    classify,
    local_names_used,
    shared_names_used,
    uses_monitor_queries,
)
from repro.predicates.codegen import compile_batch, compile_expr, parametrize_expr
from repro.predicates.dnf import DNFPredicate, to_dnf
from repro.predicates.evaluator import _EMPTY_LOCALS, evaluate_bool, read_shared
from repro.predicates.globalization import globalize
from repro.predicates.parser import parse_predicate
from repro.predicates.tags import Tag, analyze_predicate

__all__ = [
    "GlobalizedPredicate",
    "CompiledPredicate",
    "compile_predicate",
    "clear_predicate_memo",
]

#: Sentinel distinguishing "not compiled yet" from "codegen declined" (None).
_UNCOMPILED = object()


@dataclass(frozen=True)
class GlobalizedPredicate:
    """A fully shared predicate, ready for the condition manager.

    ``canonical`` is the deterministic source form of the DNF; two
    ``waituntil`` calls whose predicates are identical after globalization
    (the paper's *syntax equivalence*) produce the same canonical string and
    therefore share a predicate-table entry and condition variable.
    """

    source: str
    expr: Expr
    dnf: DNFPredicate
    tags: Tuple[Tag, ...]
    canonical: str
    #: Per-instance cache of the lowered closure (:data:`_UNCOMPILED` until
    #: first use; None when codegen declined and the interpreter is used).
    _compiled_fn: object = field(
        default=_UNCOMPILED, init=False, repr=False, compare=False
    )
    #: Per-instance cache of the fused-batch form (lazily built, see
    #: :meth:`batch_form`).
    _batch_form: object = field(
        default=_UNCOMPILED, init=False, repr=False, compare=False
    )
    #: Per-instance cache of :meth:`read_set`.
    _read_set: object = field(
        default=_UNCOMPILED, init=False, repr=False, compare=False
    )
    #: Per-instance cache of :meth:`uses_queries`.
    _uses_queries: object = field(
        default=_UNCOMPILED, init=False, repr=False, compare=False
    )
    #: Set by :meth:`quarantine` when the compiled closure misbehaved; a
    #: quarantined predicate evaluates through the interpreter forever.
    _quarantined: bool = field(
        default=False, init=False, repr=False, compare=False
    )

    def compiled_fn(self) -> Optional[Callable]:
        """The predicate lowered to a native closure, or None (cached)."""
        if self._quarantined:
            return None
        fn = self._compiled_fn
        if fn is _UNCOMPILED:
            fn = compile_expr(self.expr)
            object.__setattr__(self, "_compiled_fn", fn)
        return fn

    def quarantine(self) -> None:
        """Permanently demote this predicate to the interpreted engine.

        Called when the compiled closure raised a non-semantic exception
        (anything but ``EvaluationError``, whose class parity with the
        interpreter is guaranteed): rather than failing the run, evaluation
        falls back to the tree walker, which shares the closure's semantics
        by construction.  Irreversible by design — a closure that
        misbehaved once cannot be trusted again.
        """
        object.__setattr__(self, "_quarantined", True)

    @property
    def quarantined(self) -> bool:
        """Whether the compiled closure has been quarantined."""
        return self._quarantined

    def read_set(self) -> frozenset:
        """The shared-variable names this predicate reads (cached).

        This is the dirty-set key of the incremental relay path: an entry
        evaluated false can be skipped while no name in its read set has
        been written since.
        """
        names = self._read_set
        if names is _UNCOMPILED:
            names = frozenset(shared_names_used(self.expr))
            object.__setattr__(self, "_read_set", names)
        return names

    def uses_queries(self) -> bool:
        """True when the predicate calls monitor query methods (cached).

        Query results are not bounded by the predicate's shared *names*, so
        the incremental relay path never version-tracks such a predicate.
        """
        flag = self._uses_queries
        if flag is _UNCOMPILED:
            flag = uses_monitor_queries(self.expr)
            object.__setattr__(self, "_uses_queries", flag)
        return flag

    def batch_form(self) -> Optional[Tuple[Callable, Tuple[object, ...]]]:
        """The predicate's fused-batch handle ``(fn, params)``, or None.

        ``fn`` is the shape's generated batch function (shared by every
        predicate with the same constant-free structure) and ``params`` is
        this predicate's extracted constant tuple — one row of the batch.
        None when codegen cannot lower the shape; callers fall back to
        per-predicate evaluation.
        """
        if self._quarantined:
            # A quarantined predicate must not be evaluated through any
            # generated code, fused batches included.
            return None
        form = self._batch_form
        if form is _UNCOMPILED:
            shape, params = parametrize_expr(self.expr)
            fn = compile_batch(shape)
            form = (fn, params) if fn is not None else None
            object.__setattr__(self, "_batch_form", form)
        return form

    def holds(self, state: object) -> bool:
        """Evaluate the predicate against the monitor *state* (interpreted)."""
        return evaluate_bool(self.expr, state)

    def compiled_holds(self, state: object) -> bool:
        """Evaluate against *state* via the compiled closure.

        Falls back to the interpreter when codegen declined the expression,
        so this is always safe to call.
        """
        fn = self.compiled_fn()
        if fn is None:
            return evaluate_bool(self.expr, state)
        return bool(fn(state, read_shared, _EMPTY_LOCALS))

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.canonical


@dataclass
class CompiledPredicate:
    """The compiled form of one ``waituntil`` condition source string."""

    source: str
    expr: Expr
    shared_names: frozenset
    local_names: frozenset
    _shared_form: Optional[GlobalizedPredicate] = field(default=None, repr=False)
    _compiled_fn: object = field(
        default=_UNCOMPILED, repr=False, compare=False
    )
    #: See :meth:`GlobalizedPredicate.quarantine`.
    _quarantined: bool = field(default=False, repr=False, compare=False)
    #: ``(source, shared, local)`` memo key set by :func:`compile_predicate`,
    #: letting the shared-form build reuse the process-wide ingredient memo.
    _memo_key: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def is_shared(self) -> bool:
        """True when the predicate mentions no thread-local variables."""
        return not self.local_names

    @property
    def is_complex(self) -> bool:
        return bool(self.local_names)

    def compiled_fn(self) -> Optional[Callable]:
        """The (possibly complex) predicate as a native closure, or None.

        Unlike the globalized form, this closure still reads local variables
        from the ``locals_map`` argument, so it serves the monitor's initial
        ``wait_until`` check before globalization.
        """
        if self._quarantined:
            return None
        fn = self._compiled_fn
        if fn is _UNCOMPILED:
            fn = compile_expr(self.expr)
            self._compiled_fn = fn
        return fn

    def quarantine(self) -> None:
        """Demote this predicate to the interpreter for good (see
        :meth:`GlobalizedPredicate.quarantine`)."""
        self._quarantined = True

    @property
    def quarantined(self) -> bool:
        """Whether the compiled closure has been quarantined."""
        return self._quarantined

    def evaluate(
        self, state: object, local_values: Optional[Mapping[str, object]] = None
    ) -> bool:
        """Evaluate the original (possibly complex) predicate directly."""
        return evaluate_bool(self.expr, state, local_values)

    def compiled_evaluate(
        self, state: object, local_values: Optional[Mapping[str, object]] = None
    ) -> bool:
        """Like :meth:`evaluate` but through the compiled closure (with
        transparent interpreter fallback)."""
        fn = self.compiled_fn()
        if fn is None:
            return evaluate_bool(self.expr, state, local_values)
        return bool(fn(state, read_shared, local_values or _EMPTY_LOCALS))

    def globalized(
        self, local_values: Optional[Mapping[str, object]] = None
    ) -> GlobalizedPredicate:
        """Return the globalization of this predicate for *local_values*.

        Shared predicates are independent of local values, so their
        globalized form is computed once and cached.
        """
        if self.is_shared:
            if self._shared_form is None:
                self._shared_form = self._build(local_values or {})
            return self._shared_form
        if local_values is None:
            local_values = {}
        missing = self.local_names - set(local_values)
        if missing:
            from repro.predicates.errors import PredicateError

            raise PredicateError(
                f"missing values for local variables {sorted(missing)} "
                f"in predicate {self.source!r}"
            )
        return self._build(local_values)

    def _build(self, local_values: Mapping[str, object]) -> GlobalizedPredicate:
        if not local_values and self._memo_key is not None:
            # Shared predicates globalize identically every time; reuse the
            # process-wide ingredient memo and wrap fresh (the wrapper
            # carries mutable quarantine/closure state that must stay
            # per-monitor).  The memoized runtime traits seed the wrapper's
            # per-instance caches, so the per-run rebuild skips the AST
            # walks behind read_set/uses_queries/batch_form.
            expr, dnf, tags, canonical, read_set, uses_q, batch = (
                _shared_form_ingredients(*self._memo_key)
            )
            form = GlobalizedPredicate(
                source=self.source, expr=expr, dnf=dnf, tags=tags, canonical=canonical
            )
            object.__setattr__(form, "_read_set", read_set)
            object.__setattr__(form, "_uses_queries", uses_q)
            object.__setattr__(form, "_batch_form", batch)
            return form
        shared_expr = globalize(self.expr, local_values)
        dnf = to_dnf(shared_expr)
        tags = analyze_predicate(dnf)
        return GlobalizedPredicate(
            source=self.source,
            expr=dnf.to_expr(),
            dnf=dnf,
            tags=tags,
            canonical=dnf.canonical(),
        )


@lru_cache(maxsize=512)
def _classified_parts(
    source: str, shared: frozenset, local: frozenset
) -> Tuple[Expr, frozenset, frozenset]:
    """Process-wide memo of the parse→classify front end.

    The returned expression tree is immutable and shared by every
    :class:`CompiledPredicate` built from the same ``(source, shared,
    local)`` triple — across monitors, runs and exploration tasks.  Parse
    and classification *errors* are deliberately not cached (``lru_cache``
    never caches exceptions), so retry-after-fix still works.
    """
    expr = classify(parse_predicate(source), set(shared), set(local))
    return (
        expr,
        frozenset(shared_names_used(expr)),
        frozenset(local_names_used(expr)),
    )


@lru_cache(maxsize=512)
def _shared_form_ingredients(
    source: str, shared: frozenset, local: frozenset
) -> tuple:
    """Process-wide memo of the shared-form pipeline (globalize with no
    locals → DNF → tags → canonical source), all immutable artifacts.

    Also pre-computes the runtime traits the condition manager asks of
    every shared-form wrapper — the read set, the monitor-query flag and
    the fused-batch handle — so a recompilation (one per monitor per run
    during exploration) does not re-walk the expression tree for them.
    """
    expr, _, _ = _classified_parts(source, shared, local)
    shared_expr = globalize(expr, {})
    dnf = to_dnf(shared_expr)
    final = dnf.to_expr()
    shape, params = parametrize_expr(final)
    fn = compile_batch(shape)
    batch = (fn, params) if fn is not None else None
    return (
        final,
        dnf,
        analyze_predicate(dnf),
        dnf.canonical(),
        frozenset(shared_names_used(final)),
        uses_monitor_queries(final),
        batch,
    )


def clear_predicate_memo() -> None:
    """Drop the process-wide predicate artifact memos (benchmarking hook:
    the throughput benchmark's *cold* legs measure uncached builds)."""
    _classified_parts.cache_clear()
    _shared_form_ingredients.cache_clear()


def compile_predicate(
    source: str,
    shared_names: Mapping[str, object] | Tuple[str, ...] | frozenset | set | list,
    local_names: Mapping[str, object] | Tuple[str, ...] | frozenset | set | list = (),
) -> CompiledPredicate:
    """Parse and classify *source* into a :class:`CompiledPredicate`.

    ``shared_names`` and ``local_names`` may be any iterable of names (a
    mapping's keys are used when a mapping is given).  The parse/classify
    work is memoized process-wide; every call still returns a fresh
    :class:`CompiledPredicate` wrapper, because the wrapper carries mutable
    quarantine state that must not leak across monitors or runs.
    """
    key = (source, frozenset(shared_names), frozenset(local_names))
    expr, shared_used, local_used = _classified_parts(*key)
    return CompiledPredicate(
        source=source,
        expr=expr,
        shared_names=shared_used,
        local_names=local_used,
        _memo_key=key,
    )
