"""Predicate compilation: lower IR trees to native Python closures.

The tree-walking interpreter in :mod:`repro.predicates.evaluator` pays one
dispatch lookup plus one Python function call *per IR node per evaluation* —
and ``GlobalizedPredicate.holds`` is the hottest call in the whole runtime
(every candidate entry on every monitor exit).  This module removes that tax
by lowering each predicate once into generated Python source, compiling it
with :func:`compile`, and caching the resulting function.

Semantics are kept bit-for-bit identical to the interpreter, including which
exceptions are raised (the engine-equivalence property test enforces this):

* shared-variable reads go through the same *reader* protocol
  (``reader(state, name)``) so :class:`~repro.predicates.evaluator.EvalContext`
  can memoize them per relay pass,
* subscripting, ``/ // %`` and method lookup are emitted as calls to tiny
  helpers that wrap ``TypeError``/``IndexError``/``KeyError``/
  ``ZeroDivisionError``/``AttributeError`` into
  :class:`~repro.predicates.evaluator.EvaluationError` exactly like the
  interpreter does,
* ``and``/``or`` results are coerced with ``bool`` (the interpreter returns
  strict booleans, not the last operand).

Generated functions have the signature ``fn(state, reader, locals_map)`` and
return the raw (uncoerced) value, mirroring ``evaluate``.

:func:`compile_expr` returns ``None`` for IR it cannot lower (unknown node
types, unsupported operators) — callers fall back to the interpreter, so the
compiled engine is a pure optimisation, never a behaviour change.  The knob
selecting between the engines is the ``eval_engine`` string validated by
:func:`validate_engine` (``"compiled"``, the default, or ``"interpreted"``).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, List, Optional

from repro.predicates.ast_nodes import (
    And,
    Attribute,
    BinOp,
    BoolConst,
    Call,
    COMPARISON_OPS,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    UnaryOp,
    unparse,
)
# The engine constants live in the evaluator (the module both engines share)
# and are re-exported here for backwards compatibility.
from repro.predicates.evaluator import (
    _BUILTINS,
    DEFAULT_ENGINE,
    ENGINES,
    EvaluationError,
    validate_engine,
)

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "validate_engine",
    "compile_expr",
    "compile_batch",
    "compiled_source",
    "parametrize_expr",
]

#: How many distinct lowered predicates are kept compiled.  Complex
#: predicates globalize to a fresh tree per distinct local value, so the
#: cache must be bounded; 1024 comfortably covers every workload in the
#: benchmark suite while capping memory on adversarial ones.
CODEGEN_CACHE_SIZE = 1024


class _Unsupported(Exception):
    """Internal: the expression contains something codegen cannot lower."""


# ---------------------------------------------------------------------------
# Runtime helpers referenced by the generated code
# ---------------------------------------------------------------------------


def _cg_local(locals_map, name):
    if name not in locals_map:
        raise EvaluationError(f"no value supplied for local variable {name!r}")
    return locals_map[name]


def _cg_unknown(state, reader, locals_map, name):
    if name in locals_map:
        return locals_map[name]
    return reader(state, name)


def _cg_subscript(container, index):
    try:
        return container[index]
    except (TypeError, IndexError, KeyError) as exc:
        raise EvaluationError(
            f"cannot index {type(container).__name__} with {index!r}"
        ) from exc


def _cg_div(left, right):
    try:
        return left / right
    except ZeroDivisionError as exc:
        raise EvaluationError("division by zero while evaluating predicate") from exc


def _cg_floordiv(left, right):
    try:
        return left // right
    except ZeroDivisionError as exc:
        raise EvaluationError("division by zero while evaluating predicate") from exc


def _cg_mod(left, right):
    try:
        return left % right
    except ZeroDivisionError as exc:
        raise EvaluationError("division by zero while evaluating predicate") from exc


def _cg_call_method(name, *args, target):
    # ``target`` is a keyword argument on purpose: Python evaluates keyword
    # arguments after positional ones, which reproduces the interpreter's
    # args-then-receiver-then-method evaluation order.
    try:
        method = getattr(target, name)
    except AttributeError as exc:
        raise EvaluationError(
            f"{type(target).__name__} has no method {name!r}"
        ) from exc
    return method(*args)


#: Exec namespace shared by every generated function.  Generated code never
#: contains bare user identifiers (all reads go through the reader / locals
#: helpers), so these reserved names cannot collide with predicate variables.
_NAMESPACE = {
    "__builtins__": {},
    "bool": bool,
    "__cg_local": _cg_local,
    "__cg_unknown": _cg_unknown,
    "__cg_subscript": _cg_subscript,
    "__cg_div": _cg_div,
    "__cg_floordiv": _cg_floordiv,
    "__cg_mod": _cg_mod,
    "__cg_call": _cg_call_method,
}
_NAMESPACE.update({f"__cg_b_{name}": fn for name, fn in _BUILTINS.items()})

#: Native binary operators whose exception behaviour already matches the
#: interpreter (it only wraps ZeroDivisionError, which these cannot raise).
_NATIVE_BINOPS = {"+", "-", "*"}

_WRAPPED_BINOPS = {"/": "__cg_div", "//": "__cg_floordiv", "%": "__cg_mod"}


class _Slot:
    """Placeholder constant: row-parameter *index* in a fused batch closure.

    :func:`parametrize_expr` substitutes one of these for every literal
    constant, so predicates that differ only in their constants (the typical
    shape after globalization freezes each thread's local values) collapse
    to a single *shape* — and a single generated batch function.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __eq__(self, other: object) -> bool:
        return type(other) is _Slot and other.index == self.index

    def __hash__(self) -> int:
        return hash((_Slot, self.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<slot {self.index}>"


def _emit_const(value: object, consts: List[object]) -> str:
    """Emit a constant: literal source when repr round-trips, else a slot in
    the function's constant tuple.

    Exact types only — an int/str *subclass* (with, say, an overridden
    ``__eq__``) must keep its identity, so it goes through the constant
    tuple rather than being reconstructed from a literal.
    """
    if type(value) is _Slot:
        return f"__cg_p[{value.index}]"
    if value is None or value is True or value is False:
        return repr(value)
    if type(value) in (int, str):
        return repr(value)
    if type(value) is float and math.isfinite(value):
        return repr(value)
    consts.append(value)
    return f"__cg_consts[{len(consts) - 1}]"


def _emit(node: Expr, consts: List[object]) -> str:
    """Lower one IR node to a (parenthesized) Python source fragment."""
    kind = type(node)
    if kind is Const:
        return _emit_const(node.value, consts)
    if kind is BoolConst:
        return "True" if node.value else "False"
    if kind is Name:
        if node.scope is Scope.SHARED:
            return f"__cg_read(state, {node.ident!r})"
        if node.scope is Scope.LOCAL:
            return f"__cg_local(__cg_locals, {node.ident!r})"
        return f"__cg_unknown(state, __cg_read, __cg_locals, {node.ident!r})"
    if kind is Attribute:
        if not node.attr.isidentifier():
            raise _Unsupported(f"attribute {node.attr!r} is not an identifier")
        return f"({_emit(node.value, consts)}).{node.attr}"
    if kind is Subscript:
        return f"__cg_subscript({_emit(node.value, consts)}, {_emit(node.index, consts)})"
    if kind is Call:
        args = ", ".join(_emit(arg, consts) for arg in node.args)
        if node.receiver is None and node.func in _BUILTINS:
            return f"__cg_b_{node.func}({args})"
        target = "state" if node.receiver is None else _emit(node.receiver, consts)
        if args:
            return f"__cg_call({node.func!r}, {args}, target={target})"
        return f"__cg_call({node.func!r}, target={target})"
    if kind is UnaryOp:
        if node.op != "-":
            raise _Unsupported(f"unary operator {node.op!r}")
        return f"(-{_emit(node.operand, consts)})"
    if kind is BinOp:
        left = _emit(node.left, consts)
        right = _emit(node.right, consts)
        if node.op in _NATIVE_BINOPS:
            return f"({left} {node.op} {right})"
        helper = _WRAPPED_BINOPS.get(node.op)
        if helper is None:
            raise _Unsupported(f"binary operator {node.op!r}")
        return f"{helper}({left}, {right})"
    if kind is Compare:
        if node.op not in COMPARISON_OPS:
            raise _Unsupported(f"comparison operator {node.op!r}")
        return f"({_emit(node.left, consts)} {node.op} {_emit(node.right, consts)})"
    if kind is Not:
        return f"(not {_emit(node.operand, consts)})"
    if kind is And:
        if not node.operands:
            return "True"
        return "bool(" + " and ".join(_emit(op, consts) for op in node.operands) + ")"
    if kind is Or:
        if not node.operands:
            return "False"
        return "bool(" + " or ".join(_emit(op, consts) for op in node.operands) + ")"
    raise _Unsupported(f"codegen does not support IR node type {kind!r}")


@lru_cache(maxsize=CODEGEN_CACHE_SIZE)
def _compile_cached(expr: Expr) -> Optional[Callable]:
    consts: List[object] = []
    try:
        body = _emit(expr, consts)
    except _Unsupported:
        return None
    source = (
        "def __cg_predicate(state, __cg_read, __cg_locals):\n"
        f"    return {body}\n"
    )
    namespace = dict(_NAMESPACE)
    namespace["__cg_consts"] = tuple(consts)
    try:
        code = compile(source, f"<predicate: {unparse(expr)[:80]}>", "exec")
        exec(code, namespace)
    except (SyntaxError, ValueError):  # pragma: no cover - defensive fallback
        return None
    fn = namespace["__cg_predicate"]
    fn.__cg_source__ = source
    return fn


def compile_expr(expr: Expr) -> Optional[Callable]:
    """Lower *expr* to a native Python function, or None when unsupported.

    The returned function has signature ``fn(state, reader, locals_map)``
    and the exact raw-value/exception semantics of
    :func:`repro.predicates.evaluator.evaluate`.  Results are memoized on
    the (hashable, immutable) IR tree, so repeated globalizations of the
    same predicate share one compilation.
    """
    try:
        return _compile_cached(expr)
    except TypeError:
        # An unhashable constant (no IR the parser emits, but defensive):
        # compile without memoization.
        return _compile_cached.__wrapped__(expr)


def compiled_source(expr: Expr) -> Optional[str]:
    """Return the generated source for *expr* (None when codegen declined)."""
    fn = compile_expr(expr)
    return getattr(fn, "__cg_source__", None) if fn is not None else None


# ---------------------------------------------------------------------------
# Fused batch closures: one generated loop for a whole group of predicates
# ---------------------------------------------------------------------------


def parametrize_expr(expr: Expr) -> tuple:
    """Split *expr* into its constant-free *shape* and its constants.

    Returns ``(shape, params)`` where every :class:`Const` of *expr* has been
    replaced by a positional slot (in left-to-right order) and ``params`` is
    the tuple of extracted values.  Two globalized predicates that differ
    only in their frozen local values — ``serving == 3`` and
    ``serving == 7`` — share the same shape, which is what lets one fused
    batch closure (see :func:`compile_batch`) evaluate all of them in a
    single generated loop.  ``BoolConst`` stays inline: it is structural
    (``and True`` simplifications), not data.
    """
    params: List[object] = []

    def rebuild(node: Expr) -> Expr:
        kind = type(node)
        if kind is Const:
            params.append(node.value)
            return Const(_Slot(len(params) - 1))
        if kind in (BoolConst, Name):
            return node
        if kind is Attribute:
            return Attribute(rebuild(node.value), node.attr)
        if kind is Subscript:
            return Subscript(rebuild(node.value), rebuild(node.index))
        if kind is Call:
            receiver = rebuild(node.receiver) if node.receiver is not None else None
            return Call(node.func, tuple(rebuild(a) for a in node.args), receiver)
        if kind is UnaryOp:
            return UnaryOp(node.op, rebuild(node.operand))
        if kind is BinOp:
            return BinOp(node.op, rebuild(node.left), rebuild(node.right))
        if kind is Compare:
            return Compare(node.op, rebuild(node.left), rebuild(node.right))
        if kind is Not:
            return Not(rebuild(node.operand))
        if kind is And:
            return And(tuple(rebuild(op) for op in node.operands))
        if kind is Or:
            return Or(tuple(rebuild(op) for op in node.operands))
        raise _Unsupported(f"codegen does not support IR node type {kind!r}")

    try:
        shape = rebuild(expr)
    except _Unsupported:
        return None, ()
    return shape, tuple(params)


@lru_cache(maxsize=CODEGEN_CACHE_SIZE)
def _compile_batch_cached(shape: Expr) -> Optional[Callable]:
    consts: List[object] = []
    try:
        body = _emit(shape, consts)
    except _Unsupported:
        return None
    source = (
        "def __cg_batch(__cg_rows, state, __cg_read, __cg_locals):\n"
        "    __cg_out = []\n"
        "    __cg_append = __cg_out.append\n"
        "    for __cg_p in __cg_rows:\n"
        f"        __cg_append(bool({body}))\n"
        "    return __cg_out\n"
    )
    namespace = dict(_NAMESPACE)
    namespace["__cg_consts"] = tuple(consts)
    try:
        code = compile(source, f"<batch predicate: {unparse(shape)[:80]}>", "exec")
        exec(code, namespace)
    except (SyntaxError, ValueError):  # pragma: no cover - defensive fallback
        return None
    fn = namespace["__cg_batch"]
    fn.__cg_source__ = source
    return fn


def compile_batch(shape: Expr) -> Optional[Callable]:
    """Lower a parametrized *shape* (see :func:`parametrize_expr`) to a fused
    batch function, or None when unsupported.

    The returned function has signature
    ``fn(rows, state, reader, locals_map) -> List[bool]`` where each row is
    one predicate's extracted constant tuple: all rows are evaluated in a
    single generated loop sharing one reader (and therefore one
    :class:`~repro.predicates.evaluator.EvalContext` cache), with no
    per-predicate Python call.  Results are bool-coerced exactly like
    ``EvalContext.holds``.  Memoized on the shape, so every predicate group
    with the same structure shares one compilation.
    """
    if shape is None:
        return None
    try:
        return _compile_batch_cached(shape)
    except TypeError:
        # An unhashable constant survived into the shape (no IR the parser
        # emits, but defensive): compile without memoization.
        return _compile_batch_cached.__wrapped__(shape)
