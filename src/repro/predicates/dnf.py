"""Conversion of predicates to disjunctive normal form (DNF).

The paper assumes every ``waituntil`` predicate is in DNF, ``P = c1 ∨ ... ∨
cn`` with each ``ci`` a conjunction of atomic boolean expressions, and notes
that any formula can be brought into that shape with De Morgan's laws and the
distributive law.  The AutoSynch preprocessor performs that conversion; here
it is done by :func:`to_nnf` (push negations down to the atoms) followed by
:func:`to_dnf` (distribute conjunction over disjunction).

Tags (:mod:`repro.predicates.tags`) are then assigned per conjunction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.predicates.ast_nodes import (
    And,
    BoolConst,
    Compare,
    Expr,
    Not,
    Or,
    unparse,
)
from repro.predicates.errors import PredicateError

__all__ = ["Conjunction", "DNFPredicate", "to_nnf", "to_dnf", "MAX_CONJUNCTIONS"]

#: Upper bound on the number of conjunctions produced by DNF expansion.  The
#: conversion is worst-case exponential; synchronization predicates are tiny
#: in practice, so hitting this limit almost certainly indicates a mistake.
MAX_CONJUNCTIONS = 256


def to_nnf(expr: Expr) -> Expr:
    """Return *expr* in negation normal form.

    Negations are pushed through ``and``/``or`` with De Morgan's laws and
    through comparisons by flipping the comparison operator; a negation of
    any other atom (e.g. a boolean field) is kept as ``Not(atom)``.
    """
    return _nnf(expr, negate=False)


def _nnf(expr: Expr, negate: bool) -> Expr:
    if isinstance(expr, Not):
        return _nnf(expr.operand, not negate)
    if isinstance(expr, And):
        operands = tuple(_nnf(op, negate) for op in expr.operands)
        return Or(operands) if negate else And(operands)
    if isinstance(expr, Or):
        operands = tuple(_nnf(op, negate) for op in expr.operands)
        return And(operands) if negate else Or(operands)
    if isinstance(expr, Compare):
        return expr.negate() if negate else expr
    if isinstance(expr, BoolConst):
        return BoolConst(not expr.value) if negate else expr
    # Any other node is an atom (a boolean-valued field, call, ...).
    return Not(expr) if negate else expr


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atoms — one ``ci`` of the DNF."""

    atoms: Tuple[Expr, ...]

    def to_expr(self) -> Expr:
        if not self.atoms:
            return BoolConst(True)
        if len(self.atoms) == 1:
            return self.atoms[0]
        return And(self.atoms)

    def canonical(self) -> str:
        """Deterministic source form, usable as a dictionary key."""
        return unparse(self.to_expr())

    def __iter__(self):
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class DNFPredicate:
    """A predicate in disjunctive normal form."""

    conjunctions: Tuple[Conjunction, ...]

    def to_expr(self) -> Expr:
        if not self.conjunctions:
            return BoolConst(False)
        if len(self.conjunctions) == 1:
            return self.conjunctions[0].to_expr()
        return Or(tuple(c.to_expr() for c in self.conjunctions))

    def canonical(self) -> str:
        """Deterministic source form, usable as the predicate-table key."""
        return unparse(self.to_expr())

    @property
    def is_trivially_true(self) -> bool:
        return any(len(c) == 0 for c in self.conjunctions)

    @property
    def is_trivially_false(self) -> bool:
        return not self.conjunctions

    def __iter__(self):
        return iter(self.conjunctions)

    def __len__(self) -> int:
        return len(self.conjunctions)


def to_dnf(expr: Expr) -> DNFPredicate:
    """Convert *expr* into :class:`DNFPredicate`.

    Boolean constants are simplified away: a conjunction containing ``False``
    is dropped, ``True`` atoms are removed, and a predicate reduced to ``True``
    is represented by a single empty conjunction.
    """
    nnf = to_nnf(expr)
    raw = _expand(nnf)
    conjunctions: List[Conjunction] = []
    seen = set()
    for atoms in raw:
        simplified = _simplify_conjunction(atoms)
        if simplified is None:
            continue  # contained a literal False
        if not simplified:
            # The whole predicate is trivially true.
            return DNFPredicate((Conjunction(()),))
        conjunction = Conjunction(tuple(simplified))
        key = conjunction.canonical()
        if key not in seen:
            seen.add(key)
            conjunctions.append(conjunction)
    return DNFPredicate(tuple(conjunctions))


def _expand(expr: Expr) -> List[List[Expr]]:
    """Return the DNF of an NNF formula as a list of atom lists."""
    if isinstance(expr, Or):
        result: List[List[Expr]] = []
        for operand in expr.operands:
            result.extend(_expand(operand))
            _check_size(result)
        return result
    if isinstance(expr, And):
        # Cartesian product of the operands' DNFs.
        result = [[]]
        for operand in expr.operands:
            operand_dnf = _expand(operand)
            result = [left + right for left in result for right in operand_dnf]
            _check_size(result)
        return result
    return [[expr]]


def _check_size(conjunctions: Iterable[List[Expr]]) -> None:
    count = sum(1 for _ in conjunctions)
    if count > MAX_CONJUNCTIONS:
        raise PredicateError(
            f"DNF expansion produced more than {MAX_CONJUNCTIONS} conjunctions; "
            "the predicate is too large for the condition manager"
        )


def _simplify_conjunction(atoms: List[Expr]) -> List[Expr] | None:
    """Drop ``True`` atoms, return None if the conjunction contains ``False``."""
    out: List[Expr] = []
    seen = set()
    for atom in atoms:
        if isinstance(atom, BoolConst):
            if atom.value:
                continue
            return None
        key = unparse(atom)
        if key in seen:
            continue
        seen.add(key)
        out.append(atom)
    return out
