"""Exception types raised by the predicate subsystem."""


class PredicateError(Exception):
    """Base class for every error raised while handling predicates."""


class PredicateParseError(PredicateError):
    """Raised when a ``waituntil`` condition cannot be parsed into the IR.

    The condition text is kept on the exception so callers (the preprocessor
    and the runtime) can produce an error message that points at the original
    source.
    """

    def __init__(self, message: str, source: str | None = None):
        self.source = source
        if source is not None:
            message = f"{message} (in predicate {source!r})"
        super().__init__(message)
