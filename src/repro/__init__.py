"""AutoSynch reproduction: an automatic-signal monitor based on predicate tagging.

This package reimplements, in Python, the system described in

    Wei-Lun Hung and Vijay K. Garg.
    "AutoSynch: An Automatic-Signal Monitor Based on Predicate Tagging."
    PLDI 2013.

Quick start::

    from repro import AutoSynchMonitor

    class BoundedBuffer(AutoSynchMonitor):
        def __init__(self, capacity, **kwargs):
            super().__init__(**kwargs)
            self.items = []
            self.capacity = capacity

        def put(self, item):
            self.wait_until("len(items) < capacity")
            self.items.append(item)

        def take(self):
            self.wait_until("len(items) > 0")
            return self.items.pop(0)

The main entry points are:

* :class:`repro.core.AutoSynchMonitor` / :class:`repro.core.ExplicitMonitor` —
  the monitor base classes.
* :mod:`repro.preprocessor` — the source-to-source translator that turns
  ``@autosynch`` classes with bare ``waituntil(...)`` statements into runtime
  calls (the Python analogue of the paper's JavaCC preprocessor).
* :mod:`repro.runtime` — the threading and deterministic-simulation backends.
* :mod:`repro.problems`, :mod:`repro.harness`, :mod:`repro.experiments` — the
  paper's seven benchmark problems and the machinery that regenerates every
  figure and table of its evaluation.
* :mod:`repro.explore` — systematic schedule exploration over the
  simulation backend: exhaustive DFS / random swarm over scheduling
  decisions, per-problem oracles, failure shrinking and replayable repro
  files (``python -m repro.explore``).
"""

from repro.core import (
    AutoSynchMonitor,
    ExplicitMonitor,
    MonitorError,
    MonitorStats,
    MonitorUsageError,
    SignallingPolicy,
    Tracer,
    available_policies,
    entry_method,
    query_method,
    register_policy,
)
from repro.predicates import PredicateError, PredicateParseError, compile_predicate
from repro.runtime import SimulationBackend, ThreadingBackend

__version__ = "1.0.0"

__all__ = [
    "AutoSynchMonitor",
    "ExplicitMonitor",
    "MonitorError",
    "MonitorStats",
    "MonitorUsageError",
    "PredicateError",
    "PredicateParseError",
    "SignallingPolicy",
    "SimulationBackend",
    "ThreadingBackend",
    "Tracer",
    "__version__",
    "available_policies",
    "compile_predicate",
    "entry_method",
    "query_method",
    "register_policy",
]
