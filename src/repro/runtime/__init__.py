"""Execution backends for the AutoSynch monitors.

Two interchangeable backends implement the same small synchronization API
(locks, condition variables, thread spawning):

* :mod:`repro.runtime.threads` — real ``threading`` primitives, used for
  wall-clock measurements.
* :mod:`repro.runtime.simulation` — a deterministic cooperative scheduler in
  which exactly one simulated thread runs at a time.  It counts context
  switches and scheduling decisions exactly and reproducibly, independent of
  the GIL, which is what the paper's evaluation argument is really about.

Monitors (:mod:`repro.core`) are written against the abstract API in
:mod:`repro.runtime.api` and work unchanged on either backend.
"""

from repro.runtime.api import (
    Backend,
    BackendMetrics,
    ConditionAPI,
    LockAPI,
    ThreadHandle,
)
from repro.runtime.threads import ThreadingBackend
from repro.runtime.simulation import (
    DeadlockError,
    PrefixScheduler,
    ReplayScheduler,
    SchedulePoint,
    ScheduleDivergenceError,
    ScheduleTrace,
    Scheduler,
    SimulationBackend,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)

__all__ = [
    "Backend",
    "BackendMetrics",
    "ConditionAPI",
    "DeadlockError",
    "LockAPI",
    "PrefixScheduler",
    "ReplayScheduler",
    "SchedulePoint",
    "ScheduleDivergenceError",
    "ScheduleTrace",
    "Scheduler",
    "SimulationBackend",
    "ThreadHandle",
    "ThreadingBackend",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
]
