"""Execution backends for the AutoSynch monitors.

Three interchangeable backends implement the same small synchronization API
(locks, condition variables, thread spawning):

* :mod:`repro.runtime.threads` — real ``threading`` primitives, used for
  wall-clock measurements.
* :mod:`repro.runtime.simulation` — a deterministic cooperative scheduler in
  which exactly one simulated thread runs at a time.  It counts context
  switches and scheduling decisions exactly and reproducibly, independent of
  the GIL, which is what the paper's evaluation argument is really about.
* :mod:`repro.runtime.asyncio_backend` — event-loop tasks as waiters, for
  service-tier workloads parking 10^5-10^6 waiters on one monitor.

Monitors (:mod:`repro.core`) are written against the abstract API in
:mod:`repro.runtime.api` and work unchanged on any backend.  Backends are
pluggable through :mod:`repro.runtime.registry` (``register_backend`` /
``available_backends``), the same registry idiom the signalling policies
and executors use.
"""

from repro.runtime.api import (
    Backend,
    BackendMetrics,
    ConditionAPI,
    LockAPI,
    ThreadHandle,
)
from repro.runtime.asyncio_backend import AsyncioBackend
from repro.runtime.registry import (
    available_backends,
    create_backend,
    describe_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.runtime.threads import ThreadingBackend
from repro.runtime.simulation import (
    DeadlockError,
    PrefixScheduler,
    ReplayScheduler,
    SchedulePoint,
    ScheduleDivergenceError,
    ScheduleTrace,
    Scheduler,
    SimulationBackend,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)

__all__ = [
    "AsyncioBackend",
    "Backend",
    "BackendMetrics",
    "ConditionAPI",
    "DeadlockError",
    "LockAPI",
    "PrefixScheduler",
    "ReplayScheduler",
    "SchedulePoint",
    "ScheduleDivergenceError",
    "ScheduleTrace",
    "Scheduler",
    "SimulationBackend",
    "ThreadHandle",
    "ThreadingBackend",
    "available_backends",
    "available_schedulers",
    "create_backend",
    "create_scheduler",
    "describe_backend",
    "get_backend",
    "register_backend",
    "register_scheduler",
    "unregister_backend",
]
