"""Lock and condition-variable objects for the simulation backend.

These are thin data holders; all queueing and scheduling logic lives in the
kernel so that every state change happens under the kernel's own lock.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.runtime.api import ConditionAPI, LockAPI

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.runtime.simulation.kernel import SimulationBackend

__all__ = ["SimLock", "SimCondition"]


class SimLock(LockAPI):
    """A mutual-exclusion lock for simulated threads.

    ``label`` is an optional human-readable name; when set, it appears in
    block reasons ("waiting for lock forks[2]"), which flow into deadlock
    messages and recorded schedule traces.
    """

    def __init__(self, kernel: "SimulationBackend", label: Optional[str] = None) -> None:
        self._kernel = kernel
        self.label = label
        self.owner: Optional[int] = None
        self.queue: Deque[int] = deque()

    def acquire(self) -> None:
        self._kernel.lock_acquire(self)

    def release(self) -> None:
        self._kernel.lock_release(self)


class SimCondition(ConditionAPI):
    """A condition variable for simulated threads.

    A notified thread is moved to the lock's entry queue (it must re-acquire
    the monitor lock before running again), mirroring Java monitor semantics.
    """

    def __init__(
        self,
        kernel: "SimulationBackend",
        lock: SimLock,
        label: Optional[str] = None,
    ) -> None:
        self._kernel = kernel
        self.lock = lock
        self.label = label
        self.waiters: Deque[int] = deque()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._kernel.condition_wait(self, timeout=timeout)

    def notify(self) -> None:
        self._kernel.condition_notify(self, wake_all=False)

    def notify_n(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"notify_n requires n >= 0, got {n}")
        if n == 0:
            return
        self._kernel.condition_notify(self, wake_all=False, count=n)

    def notify_all(self) -> None:
        self._kernel.condition_notify(self, wake_all=True)

    def waiter_count(self) -> int:
        return self._kernel.condition_waiter_count(self)
