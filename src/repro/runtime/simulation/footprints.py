"""Per-decision footprints: what one scheduling slice touched.

Dynamic partial-order reduction (:mod:`repro.explore.dpor`) needs to know
when two scheduling decisions *commute* — swapping them cannot change any
observable outcome.  The kernel answers that question operationally: while a
slice runs (the span between one scheduling decision and the next), it
records which monitors the slice entered, which shared variables it read and
wrote, and which locks and condition variables it operated on.  Two slices
are **independent** when those sets are disjoint; independence is the entire
interface DPOR consumes.

The sources are the structures the paper already builds: shared-variable
*reads* come from the predicate classifier (every compiled ``waituntil``
predicate knows its shared read set), *writes* come from the same
``__setattr__`` hook that feeds the incremental-relay ``WriteTracker``, and
monitor identity comes from the kernel's own lock bookkeeping (every monitor
is one lock; slices that enter the same monitor conflict by definition).

Recording is opt-in (``SimulationBackend(record_footprints=True)``) and
costs nothing when off — the saturation benchmarks never see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

__all__ = ["DecisionFootprint", "FootprintRecorder", "independent"]


@dataclass(frozen=True)
class DecisionFootprint:
    """Everything one scheduling slice touched.

    ``locks`` and ``conds`` carry stable per-backend identifiers (creation
    index plus label), so footprints from different runs of the same workload
    compare equal.  Empty sets on every field mean the slice is independent
    of *everything* — e.g. a bare thread exit — which lets the explorer treat
    the singleton ``{chosen}`` as a persistent set at that decision.
    """

    #: Shared monitor variables the slice read (predicate evaluations).
    reads: FrozenSet[str] = frozenset()
    #: Shared monitor variables the slice wrote (``__setattr__`` hook).
    writes: FrozenSet[str] = frozenset()
    #: Locks the slice acquired, blocked on, released or handed off.
    locks: FrozenSet[str] = frozenset()
    #: Condition variables the slice waited on or notified.
    conds: FrozenSet[str] = frozenset()

    @property
    def empty(self) -> bool:
        """True when the slice touched nothing shared at all."""
        return not (self.reads or self.writes or self.locks or self.conds)

    def to_dict(self) -> dict:
        return {
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "locks": sorted(self.locks),
            "conds": sorted(self.conds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionFootprint":
        return cls(
            reads=frozenset(data.get("reads", ())),
            writes=frozenset(data.get("writes", ())),
            locks=frozenset(data.get("locks", ())),
            conds=frozenset(data.get("conds", ())),
        )


def independent(
    a: Optional[DecisionFootprint], b: Optional[DecisionFootprint]
) -> bool:
    """Whether two slices commute.

    A missing footprint (None — the slice ran without recording, or the
    recording was lossy) is conservatively dependent on everything.  Two
    recorded slices conflict when they touch the same lock or condition
    (same monitor, or the same scenario-level lock), or when one's writes
    intersect the other's reads or writes — the classic Mazurkiewicz
    dependence relation over shared variables.
    """
    if a is None or b is None:
        return False
    if a.locks & b.locks or a.conds & b.conds:
        return False
    if a.writes & (b.reads | b.writes):
        return False
    if b.writes & (a.reads | a.writes):
        return False
    return True


class FootprintRecorder:
    """Accumulates the current slice's events inside the kernel.

    The kernel owns exactly one of these when footprint recording is on and
    calls ``flush()`` at every scheduling decision: the accumulated events
    become the footprint of the slice that just ended, and accumulation
    restarts for the next slice.  All calls happen with the kernel lock held
    (or from the single running simulated thread), so plain sets suffice.

    ``skip`` suppresses recording for the first *skip* slices: their
    footprints come out as ``None`` placeholders (conservatively dependent
    on everything, per :func:`independent`).  The schedule explorer uses
    this on shared-prefix re-execution — the parent run already recorded
    those slices, so the replay skips the per-event set updates inside the
    verified prefix.
    """

    __slots__ = ("_reads", "_writes", "_locks", "_conds", "_skip", "_active", "footprints")

    def __init__(self, skip: int = 0) -> None:
        self._reads: set = set()
        self._writes: set = set()
        self._locks: set = set()
        self._conds: set = set()
        self._skip = skip
        self._active = skip <= 0
        #: One footprint per *completed* slice, aligned with the trace's
        #: decision points (footprint ``i`` covers the slice started by
        #: decision ``i``; the first ``skip`` entries are ``None``).
        self.footprints: List[Optional[DecisionFootprint]] = []

    def note_read(self, names) -> None:
        if self._active:
            self._reads.update(names)

    def note_write(self, name: str) -> None:
        if self._active:
            self._writes.add(name)

    def note_lock(self, lock_id: str) -> None:
        if self._active:
            self._locks.add(lock_id)

    def note_cond(self, cond_id: str) -> None:
        if self._active:
            self._conds.add(cond_id)

    def flush(self) -> None:
        """Seal the current slice's footprint and start the next one."""
        if self._active:
            self.footprints.append(
                DecisionFootprint(
                    reads=frozenset(self._reads),
                    writes=frozenset(self._writes),
                    locks=frozenset(self._locks),
                    conds=frozenset(self._conds),
                )
            )
            self._reads.clear()
            self._writes.clear()
            self._locks.clear()
            self._conds.clear()
        else:
            self.footprints.append(None)
        self._active = len(self.footprints) >= self._skip
