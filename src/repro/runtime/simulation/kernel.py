"""The simulation kernel: a deterministic cooperative scheduler.

Every simulated thread is carried by a real Python thread, but the kernel
allows exactly one of them to execute at any moment.  Control is transferred
only at synchronization points — contended lock acquisition, condition wait,
thread exit, or an explicit yield — and the next thread to run is chosen by a
seeded scheduling policy, so runs are fully reproducible.

The kernel also owns the run-wide metrics: every hand-off of control is one
context switch, every condition wait and notification is counted, which gives
the exact quantities the paper's evaluation reasons about.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from repro.runtime.api import Backend, BackendMetrics, ThreadHandle
from repro.runtime.simulation.footprints import DecisionFootprint, FootprintRecorder
from repro.runtime.simulation.schedulers import (
    SchedulePoint,
    Scheduler,
    ScheduleTrace,
    SchedulerSpec,
    create_scheduler,
)
from repro.runtime.simulation.sync import SimCondition, SimLock

__all__ = [
    "SimulationError",
    "DeadlockError",
    "SimulationLimitError",
    "SimulationHangError",
    "MonitorAbandonedError",
    "SimulationBackend",
]

#: ``observer(point)`` — called once per scheduling decision, with the kernel
#: lock held, right after the decision was recorded; an exception raised by
#: the observer aborts the run and surfaces from :meth:`SimulationBackend.run`.
DecisionObserver = Callable[[SchedulePoint], None]

#: Maximum times the deadlock-recovery hook (see
#: :meth:`SimulationBackend.set_deadlock_recovery`) may rescue one run; a
#: bound so a hook that keeps "recovering" without real progress cannot
#: livelock the kernel.
RECOVERY_ATTEMPT_LIMIT = 32

#: How many trailing schedule decisions a hang autopsy reports.
HANG_AUTOPSY_DECISIONS = 10


class SimulationError(Exception):
    """Base class for errors raised by the simulation backend."""


class DeadlockError(SimulationError):
    """Raised when every live simulated thread is blocked."""


class SimulationLimitError(SimulationError):
    """Raised when a run exceeds the configured maximum number of scheduling
    steps (a guard against livelock in tests)."""


class SimulationHangError(SimulationError):
    """Raised when the wall-clock ``run_timeout`` fires: the simulation made
    no progress, but unlike a detected deadlock the kernel cannot say why
    (typically a simulated thread blocked on something outside the kernel's
    control).  The message carries a full autopsy — parked threads, their
    block reasons, the hang inspector's predicate report and the last few
    schedule decisions — instead of a bare "did not finish"."""


class MonitorAbandonedError(SimulationError):
    """Raised when a simulated thread finished (crashed or was killed by
    fault injection) while still owning a lock that other threads are
    blocked behind: the monitor was *abandoned*, and no schedule can ever
    run the blocked threads again.  A classified verdict, not a hang."""


class _SimulationAbort(BaseException):
    """Internal control-flow exception used to unwind simulated threads when
    the kernel aborts a run.  Derives from ``BaseException`` so ordinary
    ``except Exception`` blocks in user code do not swallow it."""


class _InjectedDeath(BaseException):
    """Raised inside a doomed simulated thread (the ``thread_crash`` fault)
    at its next kernel primitive.  The carrier treats it as a silent thread
    exit — no failure is recorded; whatever the sudden death breaks (an
    abandoned lock, an unfinished workload) must surface on its own."""


class _State(enum.Enum):
    CREATED = "created"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class _Gate:
    """One-token handoff gate: a binary semaphore over a raw lock.

    Cheaper than :class:`threading.Event` for the kernel's one-producer,
    one-consumer control handoffs (an Event pays an internal Condition
    round-trip per set/wait cycle; a raw lock is a single futex operation).
    ``set`` deposits a wake token — duplicate sets merge, exactly like
    ``Event.set`` — and ``wait`` consumes it, so no explicit ``clear`` is
    needed between handoffs.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lock.acquire()

    def set(self) -> None:
        try:
            self._lock.release()
        except RuntimeError:
            pass  # token already deposited; duplicates merge

    def wait(self) -> None:
        self._lock.acquire()

    def wait_for(self, timeout: float) -> bool:
        return self._lock.acquire(timeout=timeout)


class _Latch:
    """One-shot sticky flag over a raw lock: a cheaper ``threading.Event``.

    ``set`` opens the latch permanently (duplicates merge); ``wait``
    re-deposits the token after consuming it, so any number of sequential
    or concurrent waiters pass once it is open.  Used for run/thread
    completion flags, which are set once and never cleared — unlike
    :class:`_Gate`, whose token is consumed per handoff.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lock.acquire()

    def set(self) -> None:
        try:
            self._lock.release()
        except RuntimeError:
            pass  # already open

    def wait(self, timeout: Optional[float] = None) -> bool:
        if timeout is None:
            self._lock.acquire()
        elif not self._lock.acquire(timeout=timeout):
            return False
        self._lock.release()  # stay open for the next waiter
        return True


#: How long a parked carrier waits for its next job before retiring its OS
#: thread.  Exploration redispatches carriers within microseconds; the
#: timeout only matters for backends that are discarded without being
#: recycled, whose carriers would otherwise sleep forever.
CARRIER_IDLE_TIMEOUT = 10.0

#: Poison job: a carrier dispatched this retires instead of carrying.
_RETIRE = object()


class _Carrier:
    """A pooled OS thread that carries simulated threads, one run at a time.

    Spawning a fresh OS thread per simulated thread per schedule dominates
    the cost of short exploration runs, so each backend parks its carriers
    between runs and re-dispatches them.  A carrier loops forever: wait for
    a job, carry the simulated thread to completion, park back in the
    backend's idle pool.  Carriers are daemons; one that never returns from
    a stuck run is simply abandoned (and the backend marked tainted) rather
    than reused.
    """

    __slots__ = ("_backend", "_gate", "_job", "thread")

    def __init__(self, backend: "SimulationBackend") -> None:
        self._backend = backend
        self._gate = _Gate()
        self._job: Optional[_SimThread] = None
        self.thread = threading.Thread(target=self._loop, name="sim-carrier", daemon=True)
        self.thread.start()

    def dispatch(self, sim_thread: "_SimThread") -> None:
        sim_thread.real_thread = self.thread
        self._job = sim_thread
        self._gate.set()

    def retire(self) -> None:
        """Release this carrier's OS thread now instead of after the idle
        timeout.  Only valid on a carrier already removed from the idle
        pool (so no dispatch can race the poison job).
        """
        self._job = _RETIRE
        self._gate.set()

    def _loop(self) -> None:
        while True:
            if not self._gate.wait_for(CARRIER_IDLE_TIMEOUT):
                backend = self._backend
                with backend._lock:
                    try:
                        backend._idle_carriers.remove(self)
                    except ValueError:
                        # A dispatch (or retire) claimed this carrier
                        # concurrently with the timeout; its job (and wake
                        # token) is in flight — loop back and pick it up.
                        continue
                return  # retired: idle too long, release the OS thread
            sim_thread = self._job
            self._job = None
            if sim_thread is _RETIRE:
                return
            self._backend._carry(self, sim_thread)


class _SimThread:
    """Book-keeping for one simulated thread."""

    __slots__ = (
        "tid",
        "name",
        "target",
        "state",
        "go",
        "done",
        "real_thread",
        "real_ident",
        "block_reason",
        "timed_out",
    )

    def __init__(self, tid: int, name: str, target: Callable[[], None]) -> None:
        self.tid = tid
        self.name = name
        self.target = target
        self.state = _State.CREATED
        self.go = _Gate()
        #: Set by the carrier once this simulated thread's job is fully over
        #: — after ``_on_exit`` ran *and* the carrier parked back in the
        #: idle pool, so waiting on ``done`` for every thread guarantees the
        #: backend is quiescent and safe to recycle.
        self.done = _Latch()
        self.real_thread: Optional[threading.Thread] = None
        self.real_ident: Optional[int] = None
        self.block_reason: Optional[str] = None
        #: Set by the kernel when a timed condition wait expired; consumed
        #: by :meth:`SimulationBackend.condition_wait` on resumption.
        self.timed_out = False


class _SimHandle(ThreadHandle):
    """Thread handle returned by :meth:`SimulationBackend.spawn`."""

    def __init__(self, sim_thread: _SimThread) -> None:
        self._sim_thread = sim_thread

    def join(self, timeout: Optional[float] = None) -> None:
        # Joining from inside the simulation would deadlock the scheduler, so
        # joining is only meaningful after run() returned; by then the thread
        # has finished.  Waits on the per-thread completion event rather than
        # the carrier OS thread, which is pooled and outlives the run.
        if self._sim_thread.real_thread is not None:
            self._sim_thread.done.wait(timeout)

    @property
    def name(self) -> str:
        return self._sim_thread.name

    @property
    def alive(self) -> bool:
        return self._sim_thread.state is not _State.FINISHED


class SimulationBackend(Backend):
    """Deterministic cooperative backend.

    Parameters
    ----------
    seed:
        Seed passed to the scheduler at the start of every run.
    policy:
        Which scheduling strategy picks the next runnable thread: a name
        registered in :mod:`repro.runtime.simulation.schedulers` (``"fifo"``
        — the default —, ``"random"``, ...), a :class:`Scheduler` subclass,
        or a constructed instance (the hook the schedule explorer uses to
        pass :class:`~repro.runtime.simulation.schedulers.PrefixScheduler`
        and :class:`~repro.runtime.simulation.schedulers.ReplayScheduler`
        objects).
    max_steps:
        Optional upper bound on the number of scheduling steps per run.
    run_timeout:
        Wall-clock safety net for :meth:`run`; a run that has not finished by
        then is aborted with :class:`SimulationError`.
    record_trace:
        Record every scheduling decision as a
        :class:`~repro.runtime.simulation.schedulers.ScheduleTrace`
        (available as :attr:`schedule_trace` after the run).  Off by default
        so saturation runs pay nothing for it.
    record_footprints:
        Also record, per scheduling decision, the set of shared variables,
        locks and conditions the slice touched (available as
        :attr:`schedule_footprints` after the run) — the dependence
        information dynamic partial-order reduction consumes.  Off by
        default; independent of ``record_trace`` but only useful with it.
    observer:
        Optional callback invoked once per scheduling decision (see
        :data:`DecisionObserver`); the explorer's oracle checks hook in here.
    """

    name = "simulation"
    description = "deterministic cooperative scheduler; time is scheduling steps"
    time_unit = "steps"

    @classmethod
    def build(cls, seed: int = 0, run_timeout: Optional[float] = None) -> "SimulationBackend":
        if run_timeout is not None:
            return cls(seed=seed, run_timeout=run_timeout)
        return cls(seed=seed)

    def __init__(
        self,
        seed: int = 0,
        policy: SchedulerSpec = "fifo",
        max_steps: Optional[int] = None,
        run_timeout: float = 600.0,
        record_trace: bool = False,
        record_footprints: bool = False,
        footprints_from: int = 0,
        observer: Optional[DecisionObserver] = None,
    ) -> None:
        super().__init__()
        # create_scheduler's own errors already carry the right diagnostics:
        # unknown names list the registered schedulers, and a scheduler whose
        # constructor needs arguments (e.g. "replay") explains itself.
        self._scheduler = create_scheduler(policy)
        self._seed = seed
        self._max_steps = max_steps
        self._run_timeout = run_timeout
        self._record_trace = record_trace
        self._trace: Optional[ScheduleTrace] = ScheduleTrace() if record_trace else None
        self._record_footprints = record_footprints
        #: Suppress footprint recording for the first N slices of a run
        #: (shared-prefix re-execution; the suppressed entries are None).
        self._footprints_from = footprints_from
        self._fp: Optional[FootprintRecorder] = (
            FootprintRecorder(skip=footprints_from) if record_footprints else None
        )
        #: id(lock-or-condition) -> stable identifier used in footprints
        #: (creation index + label, so two identically-constructed backends
        #: assign the same ids and footprints compare across runs).
        self._sync_ids: Dict[int, str] = {}
        self._observer = observer
        self._deadlock_inspector: Optional[Callable[[], Optional[str]]] = None
        self._hang_inspector: Optional[Callable[[], Optional[str]]] = None
        self._recovery_hook: Optional[Callable[[], Optional[SimCondition]]] = None
        self._fault_injector: Optional[object] = None
        self._condition_count = 0
        #: Every lock/condition this backend created, in creation order —
        #: the deterministic universe fault injection and abandonment
        #: detection scan.
        self._locks: List[SimLock] = []
        self._conditions: List[SimCondition] = []

        self._lock = threading.Lock()
        #: Fast path for :meth:`current_thread`: each carrier thread stores
        #: the _SimThread it is carrying here, in :meth:`_carry`, so
        #: simulation primitives skip the global lock and the ident->tid
        #: dict lookup.
        self._tls = threading.local()
        #: Parked carrier OS threads, reused across runs (see
        #: :class:`_Carrier`).
        self._idle_carriers: List[_Carrier] = []
        #: Set when a run left carrier threads stuck (wall-clock hang);
        #: a tainted backend refuses :meth:`recycle` — callers must build
        #: a fresh one.
        self._tainted = False
        self._threads: Dict[int, _SimThread] = {}
        self._by_ident: Dict[int, int] = {}
        self._runnable: List[int] = []
        self._current: Optional[int] = None
        self._next_tid = 0
        self._running = False
        self._abort = False
        self._deadlock_message: Optional[str] = None
        self._abandonment_message: Optional[str] = None
        self._limit_exceeded = False
        self._failures: List[BaseException] = []
        self._done = _Latch()
        self._steps = 0
        #: tid -> (condition, deadline) for threads in a timed condition
        #: wait; deadlines are in scheduling steps (see :meth:`now`).
        self._timed_waits: Dict[int, tuple] = {}
        #: tids the ``thread_crash`` fault marked for death; they raise
        #: :class:`_InjectedDeath` at their next kernel primitive.
        self._doomed: set = set()
        self._recovery_attempts = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        """The scheduling strategy instance driving this backend."""
        return self._scheduler

    @property
    def policy(self) -> str:
        """Registry name of the scheduling strategy."""
        return self._scheduler.name

    @property
    def schedule_trace(self) -> Optional[ScheduleTrace]:
        """The recorded decision trace of the latest run (None unless the
        backend was constructed with ``record_trace=True``)."""
        return self._trace

    @property
    def records_footprints(self) -> bool:
        """Whether per-decision footprint recording is on (see
        :mod:`repro.runtime.simulation.footprints`).  Monitors consult this
        once at construction so the no-recording hot path pays nothing."""
        return self._record_footprints

    @property
    def schedule_footprints(self) -> Optional[List[Optional[DecisionFootprint]]]:
        """Per-decision footprints of the latest run, aligned with
        :attr:`schedule_trace` (footprint ``i`` covers the slice started by
        decision ``i``; the first ``footprints_from`` entries are ``None``).
        None unless constructed with ``record_footprints=True``; call only
        after :meth:`run` returned.
        """
        recorder = self._fp
        if recorder is None:
            return None
        # The last slice ends with the run, not with another decision: seal
        # it here.  (A decision whose slice recorded nothing still gets an
        # explicit empty footprint, which is meaningful — it commutes with
        # everything.)
        while len(recorder.footprints) < self._steps:
            recorder.flush()
        return list(recorder.footprints)

    def note_write(self, name: str) -> None:
        """Record a shared-variable write into the current slice's footprint.

        Bridged from the monitor's ``__setattr__`` hook (the same hook that
        feeds the incremental-relay ``WriteTracker``).  No-op unless
        footprint recording is on.
        """
        recorder = self._fp
        if recorder is not None:
            recorder.note_write(name)

    def note_reads(self, names) -> None:
        """Record shared-variable reads (a predicate's read set) into the
        current slice's footprint.  No-op unless recording is on."""
        recorder = self._fp
        if recorder is not None:
            recorder.note_read(names)

    def _note_lock(self, lock: SimLock) -> None:
        recorder = self._fp
        if recorder is not None:
            recorder.note_lock(self._sync_ids.get(id(lock), repr(lock)))

    def _note_cond(self, condition: SimCondition) -> None:
        recorder = self._fp
        if recorder is not None:
            recorder.note_cond(self._sync_ids.get(id(condition), repr(condition)))

    @property
    def steps(self) -> int:
        """Scheduling decisions made so far in the current run."""
        return self._steps

    def now(self) -> float:
        """Simulation time: the number of scheduling decisions made.

        Timed waits measure their deadlines in these units, so a timeout of
        50 means "give up after 50 scheduling decisions" — deterministic and
        replayable, unlike wall-clock time.
        """
        return float(self._steps)

    def blocked_threads(self) -> tuple:
        """``(tid, name, block_reason)`` for every currently blocked thread.

        Lock-free snapshot intended for decision observers (which already run
        under the kernel lock) and for post-mortem inspection after
        :meth:`run` returned; do not call from unrelated threads mid-run.
        """
        return tuple(
            (t.tid, t.name, t.block_reason or "blocked")
            for t in self._threads.values()
            if t.state is _State.BLOCKED
        )

    def sync_state(self) -> tuple:
        """Hashable snapshot of all scheduling-relevant kernel state.

        Returns ``(threads, locks, conds)`` where ``threads`` is
        ``(tid, state, block_reason)`` sorted by tid, ``locks`` is
        ``(index, owner_tid, waiter_queue)`` in creation order, and ``conds``
        is ``(index, waiter_queue)`` in creation order.  Same calling
        restrictions as :meth:`blocked_threads`; the DPOR explorer snapshots
        this at every decision point to build abstract configurations.
        """
        threads = tuple(
            (t.tid, t.state.value, t.block_reason)
            for t in sorted(self._threads.values(), key=lambda t: t.tid)
        )
        locks = tuple(
            (i, lock.owner, tuple(lock.queue))
            for i, lock in enumerate(self._locks)
        )
        conds = tuple(
            (i, tuple(c.waiters)) for i, c in enumerate(self._conditions)
        )
        return threads, locks, conds

    def set_observer(self, observer: Optional[DecisionObserver]) -> None:
        """Install (or clear) the per-decision observer callback.

        Exists alongside the constructor argument because observers usually
        close over objects — monitors, oracles — that are themselves built
        on top of this backend.
        """
        self._observer = observer

    def set_deadlock_inspector(self, inspector: Optional[Callable[[], Optional[str]]]) -> None:
        """Install a callback run at the instant a deadlock is detected.

        The callback runs *before* the blocked threads are unwound (their
        wait-bookkeeping is still intact, which post-mortem inspection after
        :meth:`run` raised would no longer see) and may return extra detail
        to append to the :class:`DeadlockError` message — e.g. the schedule
        explorer reports whether a waiting predicate was actually true,
        distinguishing a missed signal from a genuine deadlock.
        """
        self._deadlock_inspector = inspector

    def set_hang_inspector(self, inspector: Optional[Callable[[], Optional[str]]]) -> None:
        """Install a callback consulted when the wall-clock ``run_timeout``
        fires, *before* the stuck threads are unwound.

        Whatever string it returns is appended to the
        :class:`SimulationHangError` autopsy — the schedule explorer uses it
        to list the parked waiters' predicates, which only the monitor's
        condition manager knows.
        """
        self._hang_inspector = inspector

    def set_deadlock_recovery(
        self, hook: Optional[Callable[[], Optional[SimCondition]]]
    ) -> None:
        """Install a self-healing hook consulted when a deadlock is imminent.

        The hook runs with the kernel lock held, after timed waits have been
        expired but before the deadlock is declared.  It must not call any
        kernel primitive; instead it may repair its own bookkeeping (e.g.
        re-promise a lost signal, demote a corrupt write tracker) and return
        the :class:`SimCondition` whose longest waiter the kernel should
        wake — or None to decline.  Recovery attempts are bounded by
        :data:`RECOVERY_ATTEMPT_LIMIT` per run so a hook that keeps
        "recovering" without progress cannot livelock the kernel.
        """
        self._recovery_hook = hook

    def set_fault_injector(self, injector: Optional[object]) -> None:
        """Attach a :class:`repro.faults.FaultInjector` (or None to clear).

        The injector's ``on_decision`` hook runs at every scheduling
        decision, ``on_notify`` intercepts condition notifications, and
        ``on_no_runnable`` gets a last word before deadlock handling —
        all with the kernel lock held, restricted to the ``inject_*``
        kernel methods below.
        """
        self._fault_injector = injector

    # ------------------------------------------------------------------
    # Backend factory methods
    # ------------------------------------------------------------------

    def create_lock(self, label: Optional[str] = None) -> SimLock:
        lock = SimLock(self, label=label)
        self._sync_ids[id(lock)] = f"L{len(self._locks)}:{label or 'lock'}"
        self._locks.append(lock)
        return lock

    def create_condition(self, lock: SimLock, label: Optional[str] = None) -> SimCondition:
        if not isinstance(lock, SimLock):
            raise TypeError("a SimulationBackend condition requires a SimulationBackend lock")
        if label is None:
            # A deterministic default label: two backends used identically
            # (same construction order, e.g. the explorer's fresh backend
            # per run) assign the same labels, so block reasons — and hence
            # recorded schedule traces — compare equal across runs and
            # processes, unlike the id()-based fallback.  The counter is
            # monotonic for the backend's lifetime, so reusing one backend
            # for several monitors keeps labels unique but not aligned with
            # a fresh backend's.
            label = f"cond-{self._condition_count}"
        self._condition_count += 1
        condition = SimCondition(self, lock, label=label)
        self._sync_ids[id(condition)] = f"C{len(self._conditions)}:{label}"
        self._conditions.append(condition)
        return condition

    def spawn(self, target: Callable[[], None], name: Optional[str] = None) -> _SimHandle:
        """Add a new simulated thread.

        Before :meth:`run` starts this registers the thread for the next run;
        while a run is in progress (called from a simulated thread) the new
        thread becomes runnable immediately.
        """
        with self._lock:
            sim_thread = self._create_thread_locked(target, name)
            if self._running:
                self._start_real_thread(sim_thread)
                sim_thread.state = _State.RUNNABLE
                self._runnable.append(sim_thread.tid)
        return _SimHandle(sim_thread)

    # ------------------------------------------------------------------
    # Running a simulation
    # ------------------------------------------------------------------

    def run(
        self,
        targets: Sequence[Callable[[], None]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Run all *targets* as simulated threads until every one finishes.

        Raises :class:`DeadlockError` if all live threads block,
        :class:`SimulationLimitError` if ``max_steps`` is exceeded, and
        re-raises the first exception raised inside a simulated thread.
        """
        if self._running:
            raise SimulationError("run() called while a simulation is already in progress")
        self._reset_run_state()

        with self._lock:
            for index, target in enumerate(targets):
                name = names[index] if names else f"sim-{index}"
                self._create_thread_locked(target, name)
            pending = list(self._threads.values())

        if not pending:
            return

        for sim_thread in pending:
            self._start_real_thread(sim_thread)

        with self._lock:
            self._running = True
            for sim_thread in pending:
                sim_thread.state = _State.RUNNABLE
                self._runnable.append(sim_thread.tid)
            first = self._pick_next_locked()
        if first is not None:
            first.go.set()

        finished = self._done.wait(self._run_timeout)
        if not finished:
            with self._lock:
                # Autopsy first: the abort below unwinds the very
                # bookkeeping (block reasons, waiter queues, predicate
                # entries) the diagnosis needs.
                autopsy = self._hang_autopsy_locked()
                self._abort = True
                self._wake_all_locked()
            self._done.wait(5.0)
            self._running = False
            # Carriers may still be wedged inside the stuck run; never hand
            # them another job.
            self._tainted = True
            raise SimulationHangError(
                f"simulation did not finish within {self._run_timeout} "
                f"seconds\n{autopsy}"
            )

        for sim_thread in self._threads.values():
            if sim_thread.real_thread is not None and not sim_thread.done.wait(timeout=5.0):
                self._tainted = True
        self._running = False

        if self._abandonment_message is not None:
            raise MonitorAbandonedError(self._abandonment_message)
        if self._deadlock_message is not None:
            raise DeadlockError(self._deadlock_message)
        if self._limit_exceeded:
            raise SimulationLimitError(
                f"simulation exceeded the configured limit of {self._max_steps} steps"
            )
        if self._failures:
            raise self._failures[0]

    def _reset_run_state(self) -> None:
        # Threads registered with spawn() before run() was called take part
        # in the upcoming run; everything else from previous runs is dropped.
        self._threads = {
            tid: sim_thread
            for tid, sim_thread in self._threads.items()
            if sim_thread.state is _State.CREATED and sim_thread.real_thread is None
        }
        self._by_ident = {}
        self._runnable = []
        self._current = None
        self._abort = False
        self._deadlock_message = None
        self._abandonment_message = None
        self._limit_exceeded = False
        self._failures = []
        self._done = _Latch()
        self._steps = 0
        self._timed_waits = {}
        self._doomed = set()
        self._recovery_attempts = 0
        self._scheduler.reset(self._seed)
        if self._record_trace:
            self._trace = ScheduleTrace()
        if self._record_footprints:
            self._fp = FootprintRecorder(skip=self._footprints_from)

    def shutdown(self) -> None:
        """Retire this backend's parked carrier threads immediately.

        A discarded backend's carriers otherwise linger for
        :data:`CARRIER_IDLE_TIMEOUT` before releasing their OS threads —
        harmless one at a time, but a workload that churns through backends
        (cold benchmark legs, runtime-cache eviction) can accumulate
        thousands of idle threads and measurably slow the live ones.
        Idempotent; safe between runs.  Stuck carriers of a tainted backend
        are not in the idle pool and stay abandoned, as before.
        """
        with self._lock:
            carriers = self._idle_carriers
            self._idle_carriers = []
        for carrier in carriers:
            carrier.retire()

    def recycle(
        self,
        seed: Optional[int] = None,
        policy: Optional[SchedulerSpec] = None,
        record_footprints: Optional[bool] = None,
        footprints_from: Optional[int] = None,
    ) -> None:
        """Reset this backend to fresh-construction state, keeping the
        carrier-thread pool.

        After recycling, the backend behaves exactly like a newly
        constructed ``SimulationBackend(seed=..., policy=..., ...)``: thread
        ids restart at 0, condition labels restart at ``cond-0``, metrics
        are zeroed, and all observers/inspectors/injectors are cleared — so
        recorded traces and digests compare bit-for-bit with a fresh
        backend's.  The schedule explorer recycles one backend across the
        thousands of runs of a task instead of paying construction plus OS
        thread spawns every run.

        Raises :class:`SimulationError` if a run is in progress or a
        previous run left carriers stuck (wall-clock hang) — callers should
        fall back to constructing a fresh backend.
        """
        if self._running:
            raise SimulationError("recycle() called while a simulation is in progress")
        if self._tainted:
            raise SimulationError(
                "backend cannot be recycled: a previous run left carrier threads stuck"
            )
        if seed is not None:
            self._seed = seed
        if policy is not None:
            self._scheduler = create_scheduler(policy)
        if record_footprints is not None:
            self._record_footprints = record_footprints
        if footprints_from is not None:
            self._footprints_from = footprints_from
        self._trace = ScheduleTrace() if self._record_trace else None
        self._fp = (
            FootprintRecorder(skip=self._footprints_from)
            if self._record_footprints
            else None
        )
        self._sync_ids = {}
        self._observer = None
        self._deadlock_inspector = None
        self._hang_inspector = None
        self._recovery_hook = None
        self._fault_injector = None
        self._condition_count = 0
        self._locks = []
        self._conditions = []
        self._threads = {}
        self._by_ident = {}
        self._runnable = []
        self._current = None
        self._next_tid = 0
        self._abort = False
        self._deadlock_message = None
        self._abandonment_message = None
        self._limit_exceeded = False
        self._failures = []
        self._done = _Latch()
        self._steps = 0
        self._timed_waits = {}
        self._doomed = set()
        self._recovery_attempts = 0
        self.metrics = BackendMetrics()

    def _create_thread_locked(
        self, target: Callable[[], None], name: Optional[str]
    ) -> _SimThread:
        tid = self._next_tid
        self._next_tid += 1
        sim_thread = _SimThread(tid, name or f"sim-{tid}", target)
        self._threads[tid] = sim_thread
        self.metrics.threads_spawned += 1
        return sim_thread

    def _start_real_thread(self, sim_thread: _SimThread) -> None:
        # Reuse a parked carrier when one is idle; spawn a new one otherwise.
        # List.pop is atomic under the GIL, so both the locked (spawn) and
        # unlocked (run) call sites are safe.
        try:
            carrier = self._idle_carriers.pop()
        except IndexError:
            carrier = _Carrier(self)
        carrier.dispatch(sim_thread)

    def _carry(self, carrier: _Carrier, sim_thread: _SimThread) -> None:
        """Carry one simulated thread through one run (on a carrier thread)."""
        sim_thread.real_ident = threading.get_ident()
        self._tls.sim_thread = sim_thread
        with self._lock:
            self._by_ident[sim_thread.real_ident] = sim_thread.tid
        sim_thread.go.wait()
        if not self._abort:
            try:
                sim_thread.target()
            except _SimulationAbort:
                pass
            except _InjectedDeath:
                # The thread_crash fault: die silently, exactly as if the
                # thread vanished mid-flight.  Locks it owns stay owned —
                # abandonment detection (not this handler) reports that.
                pass
            except BaseException as exc:
                with self._lock:
                    self._failures.append(exc)
                    self._abort = True
                    self._wake_all_locked()
        self._on_exit(sim_thread)
        self._tls.sim_thread = None
        # Park first, then signal completion: once every thread's ``done``
        # event is set, all carriers are back in the pool and the backend is
        # quiescent (safe to recycle).
        with self._lock:
            self._idle_carriers.append(carrier)
        sim_thread.done.set()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def current_thread(self) -> _SimThread:
        """Return the simulated thread corresponding to the calling thread.

        Every simulation primitive (lock, condition, yield) starts here, so
        the lookup is served from a ``threading.local`` populated per job in
        :meth:`_carry` — no global lock, no dict lookup.  The locked
        ident-table path remains as a fallback for carrier threads that
        predate the cache (none in practice).
        """
        sim_thread = getattr(self._tls, "sim_thread", None)
        if sim_thread is not None:
            return sim_thread
        ident = threading.get_ident()
        with self._lock:
            tid = self._by_ident.get(ident)
            if tid is None:
                raise SimulationError(
                    "simulation primitives may only be used from inside a simulated thread"
                )
            return self._threads[tid]

    def current_name(self) -> str:
        """Name of the currently running simulated thread."""
        return self.current_thread().name

    def current_id(self) -> object:
        return self.current_thread().tid

    def _pick_next_locked(self, reason: str = "start") -> Optional[_SimThread]:
        """Choose, dequeue and dispatch-mark the next runnable thread.

        *reason* records why control was up for grabs (the previous thread
        blocked with that reason, yielded, exited, or the run is starting);
        it flows into the recorded :class:`ScheduleTrace` decision points.
        """
        if self._abort:
            return None
        if self._timed_waits:
            self._expire_due_waits_locked()
        if self._fault_injector is not None:
            try:
                self._fault_injector.on_decision(self, self._steps)
            except BaseException as exc:
                self._fail_locked(exc)
                return None
        if self._max_steps is not None and self._steps >= self._max_steps:
            self._limit_exceeded = True
            self._abort = True
            self._wake_all_locked()
            return None
        if not self._runnable:
            return self._handle_no_runnable_locked()
        try:
            index = self._scheduler.choose(self._runnable)
        except BaseException as exc:
            self._fail_locked(exc)
            return None
        if not 0 <= index < len(self._runnable):
            self._fail_locked(
                SimulationError(
                    f"scheduler {self._scheduler.name!r} chose index {index} "
                    f"but only {len(self._runnable)} threads are runnable"
                )
            )
            return None
        tid = self._runnable.pop(index)
        sim_thread = self._threads[tid]
        sim_thread.state = _State.RUNNING
        sim_thread.block_reason = None
        if self._fp is not None and self._steps > 0:
            # The slice started by the previous decision ends here; seal its
            # footprint so accumulation restarts for the slice about to run.
            self._fp.flush()
        point: Optional[SchedulePoint] = None
        if self._trace is not None or self._observer is not None:
            point = SchedulePoint(
                step=self._steps,
                runnable=tuple(sorted(self._runnable + [tid])),
                chosen=tid,
                reason=reason,
            )
        if self._trace is not None:
            self._trace.append(point)
        self._steps += 1
        if self._current != tid:
            # Re-dispatching the same thread (a yield with nobody else
            # runnable) is not a context switch.
            self.metrics.context_switches += 1
        self._current = tid
        if self._observer is not None:
            try:
                self._observer(point)
            except BaseException as exc:
                self._fail_locked(exc)
                return None
        return sim_thread

    def _fail_locked(self, exc: BaseException) -> None:
        """Abort the run with *exc* from inside the scheduling machinery.

        Scheduler and observer callbacks run on paths (``_on_exit``) outside
        the per-thread try/except in :meth:`_runner`, so their exceptions are
        funnelled through the failure list instead of being allowed to kill a
        carrier thread and hang the run until the timeout.
        """
        self._failures.append(exc)
        self._abort = True
        self._wake_all_locked()

    def _handle_no_runnable_locked(self) -> Optional[_SimThread]:
        live = [t for t in self._threads.values() if t.state is not _State.FINISHED]
        blocked = [t for t in live if t.state is _State.BLOCKED]
        self._current = None
        if not live or not blocked:
            # Either everything finished, or the only live thread is the one
            # currently exiting/blocking — nothing to do until it proceeds.
            if not live:
                self._done.set()
            return None
        # Timed waiters outrank deadlock: with nothing runnable, simulation
        # time jumps to the earliest pending deadline (real time would pass
        # anyway) and the expired waiter gets the monitor back.
        if self._timed_waits:
            self._expire_earliest_waits_locked()
            if self._runnable:
                return self._pick_next_locked(reason="wait timeout")
            return self._handle_no_runnable_locked()
        # Fault injection gets a last word (e.g. a delayed signal still in
        # flight is force-delivered rather than reported as a deadlock).
        if self._fault_injector is not None:
            try:
                rescued = self._fault_injector.on_no_runnable(self)
            except BaseException as exc:
                self._fail_locked(exc)
                return None
            if rescued:
                if self._runnable:
                    return self._pick_next_locked(reason="delayed signal")
                return self._handle_no_runnable_locked()
        details = ", ".join(
            f"{t.name} ({t.block_reason or 'blocked'})" for t in sorted(blocked, key=lambda t: t.tid)
        )
        # A lock owned by a finished thread can never be released: classify
        # as monitor abandonment, not a generic deadlock.
        abandoned = self._find_abandoned_lock_locked()
        if abandoned is not None:
            lock, owner = abandoned
            label = lock.label or "monitor lock"
            self._abandonment_message = (
                f"monitor abandoned: thread {owner.name} finished while "
                f"holding lock {label}; {len(blocked)} blocked thread(s) "
                f"can never run again — {details}"
            )
            self._abort = True
            self._wake_all_locked()
            return None
        # Self-healing: let the recovery hook re-promise a lost signal
        # before the deadlock is declared final.
        if (
            self._recovery_hook is not None
            and self._recovery_attempts < RECOVERY_ATTEMPT_LIMIT
        ):
            self._recovery_attempts += 1
            try:
                condition = self._recovery_hook()
            except Exception:  # recovery must never mask the deadlock
                condition = None
            if condition is not None and condition.waiters:
                waiter_tid = condition.waiters.popleft()
                self._grant_lock_to_waiter_locked(condition, waiter_tid)
                if self._runnable:
                    return self._pick_next_locked(reason="self-heal")
                return self._handle_no_runnable_locked()
        message = (
            f"deadlock: all {len(blocked)} live simulated threads are blocked — {details}"
        )
        if self._deadlock_inspector is not None:
            # Inspect *now*: waiting threads still hold their wait-side
            # bookkeeping (condition queues, predicate entries); the abort
            # below unwinds all of it.
            try:
                extra = self._deadlock_inspector()
            except Exception:  # diagnostics must never mask the deadlock
                extra = None
            if extra:
                message = f"{message}; {extra}"
        self._deadlock_message = message
        self._abort = True
        self._wake_all_locked()
        return None

    def _wake_all_locked(self) -> None:
        for sim_thread in self._threads.values():
            if sim_thread.state is not _State.FINISHED:
                sim_thread.go.set()

    def _make_runnable_locked(self, tid: int) -> None:
        sim_thread = self._threads[tid]
        if sim_thread.state is _State.FINISHED:
            raise SimulationError(f"cannot make finished thread {sim_thread.name} runnable")
        sim_thread.state = _State.RUNNABLE
        sim_thread.block_reason = None
        self._runnable.append(tid)

    def _block_and_pick_next_locked(
        self, sim_thread: _SimThread, reason: str
    ) -> Optional[_SimThread]:
        sim_thread.state = _State.BLOCKED
        sim_thread.block_reason = reason
        return self._pick_next_locked(reason=reason)

    def _handoff_and_wait(
        self, sim_thread: _SimThread, next_thread: Optional[_SimThread]
    ) -> None:
        if next_thread is sim_thread:
            # The scheduler picked the calling thread again (it was the only
            # runnable one); keep running without parking on the event.
            if self._abort:
                raise _SimulationAbort()
            return
        if next_thread is not None:
            next_thread.go.set()
        if self._abort:
            # Never park once the run is unwinding: a thread re-entering a
            # primitive during exception cleanup (e.g. a condition waiter
            # re-acquiring the monitor lock) has already consumed its
            # one-shot wake-all token, so parking here would wedge it until
            # the external run timeout.  Any abort set after this check is
            # caught below — its wake-all sets the event this thread is
            # about to wait on.
            raise _SimulationAbort()
        sim_thread.go.wait()
        if self._abort:
            raise _SimulationAbort()

    def _on_exit(self, sim_thread: _SimThread) -> None:
        next_thread = None
        with self._lock:
            sim_thread.state = _State.FINISHED
            if self._current == sim_thread.tid:
                self._current = None
            if self._abort:
                if all(t.state is _State.FINISHED for t in self._threads.values()):
                    self._done.set()
                return
            next_thread = self._pick_next_locked(reason="exit")
            if next_thread is None and all(
                t.state is _State.FINISHED for t in self._threads.values()
            ):
                self._done.set()
        if next_thread is not None:
            next_thread.go.set()
        elif self._abort:
            # A deadlock or limit was detected while picking the next thread.
            with self._lock:
                if all(t.state is _State.FINISHED for t in self._threads.values()):
                    self._done.set()

    def yield_control(self) -> None:
        """Voluntarily hand control to another runnable thread (if any)."""
        sim_thread = self.current_thread()
        with self._lock:
            self._check_doomed_locked(sim_thread)
            self._runnable.append(sim_thread.tid)
            sim_thread.state = _State.RUNNABLE
            next_thread = self._pick_next_locked(reason="yield")
        self._handoff_and_wait(sim_thread, next_thread)

    # ------------------------------------------------------------------
    # Lock operations (called by SimLock)
    # ------------------------------------------------------------------

    def lock_acquire(self, lock: SimLock) -> None:
        sim_thread = self.current_thread()
        with self._lock:
            self._check_doomed_locked(sim_thread)
            self._note_lock(lock)
            if lock.owner is None:
                lock.owner = sim_thread.tid
                self.metrics.lock_acquisitions += 1
                return
            if lock.owner == sim_thread.tid:
                raise SimulationError(
                    f"thread {sim_thread.name} attempted to re-acquire a lock it already holds"
                )
            lock.queue.append(sim_thread.tid)
            self.metrics.lock_contentions += 1
            wait_reason = (
                f"waiting for lock {lock.label}" if lock.label else "waiting for lock"
            )
            next_thread = self._block_and_pick_next_locked(sim_thread, wait_reason)
        self._handoff_and_wait(sim_thread, next_thread)
        with self._lock:
            if lock.owner != sim_thread.tid:
                raise SimulationError(
                    "internal error: thread resumed from lock wait without ownership"
                )
            self.metrics.lock_acquisitions += 1

    def lock_release(self, lock: SimLock) -> None:
        sim_thread = self.current_thread()
        with self._lock:
            self._check_doomed_locked(sim_thread)
            if lock.owner != sim_thread.tid:
                raise SimulationError(
                    f"thread {sim_thread.name} released a lock it does not hold"
                )
            self._release_lock_locked(lock)

    def _release_lock_locked(self, lock: SimLock) -> None:
        self._note_lock(lock)
        if lock.queue:
            next_tid = lock.queue.popleft()
            lock.owner = next_tid
            self._make_runnable_locked(next_tid)
        else:
            lock.owner = None

    # ------------------------------------------------------------------
    # Condition operations (called by SimCondition)
    # ------------------------------------------------------------------

    def condition_wait(
        self, condition: SimCondition, timeout: Optional[float] = None
    ) -> bool:
        sim_thread = self.current_thread()
        with self._lock:
            self._check_doomed_locked(sim_thread)
            if condition.lock.owner != sim_thread.tid:
                raise SimulationError(
                    f"thread {sim_thread.name} called wait() without holding the monitor lock"
                )
            self._note_cond(condition)
            condition.waiters.append(sim_thread.tid)
            self.metrics.condition_waits += 1
            if timeout is not None:
                # Deadlines are measured in scheduling steps (see now());
                # expiry happens at the next scheduling decision at or past
                # the deadline, or immediately when nothing else can run.
                self._timed_waits[sim_thread.tid] = (condition, self._steps + timeout)
            self._release_lock_locked(condition.lock)
            label = condition.label if condition.label is not None else f"{id(condition):#x}"
            next_thread = self._block_and_pick_next_locked(
                sim_thread, f"waiting on condition {label}"
            )
        self._handoff_and_wait(sim_thread, next_thread)
        with self._lock:
            timed_out = sim_thread.timed_out
            sim_thread.timed_out = False
            if condition.lock.owner != sim_thread.tid:
                raise SimulationError(
                    "internal error: thread resumed from condition wait without the lock"
                )
        return not timed_out

    def condition_notify(
        self, condition: SimCondition, wake_all: bool, count: int = 1
    ) -> None:
        """Wake waiters of *condition*: all of them (``wake_all``) or up to
        *count* in FIFO order (``notify_n`` passes ``count > 1``).

        A bulk wakeup is one notification event — a single ``notifies``
        metric increment and a single fault-injection point, so a suppressed
        notify drops the whole batch exactly like a lost ``notify(n)``.
        """
        sim_thread = self.current_thread()
        with self._lock:
            self._check_doomed_locked(sim_thread)
            if condition.lock.owner != sim_thread.tid:
                raise SimulationError(
                    f"thread {sim_thread.name} called notify without holding the monitor lock"
                )
            self._note_cond(condition)
            if wake_all:
                self.metrics.notify_alls += 1
                count = len(condition.waiters)
            else:
                self.metrics.notifies += 1
                count = min(count, len(condition.waiters))
            if count and self._fault_injector is not None and not self._abort:
                try:
                    suppressed = self._fault_injector.on_notify(
                        self, condition, wake_all
                    )
                except BaseException as exc:
                    self._fail_locked(exc)
                    raise _SimulationAbort()
                if suppressed:
                    # The fault swallowed (or detached, for delayed delivery)
                    # this notification; the waiters stay parked.
                    return
            for _ in range(count):
                waiter_tid = condition.waiters.popleft()
                self.metrics.notified_threads += 1
                self._grant_lock_to_waiter_locked(condition, waiter_tid)

    def _grant_lock_to_waiter_locked(
        self, condition: SimCondition, waiter_tid: int
    ) -> None:
        """Move a dequeued waiter to the lock's entry queue (or grant the
        lock outright), exactly like a Java signalled thread.

        Shared by notification, timed-wait expiry and the self-heal path;
        cancels any pending timed-wait deadline for the waiter.
        """
        self._timed_waits.pop(waiter_tid, None)
        self._note_lock(condition.lock)
        # A notified thread must re-acquire the monitor lock before it
        # can run again, exactly like a Java signalled thread moving
        # to the lock's entry queue.
        if condition.lock.owner is None:
            condition.lock.owner = waiter_tid
            self._make_runnable_locked(waiter_tid)
        else:
            condition.lock.queue.append(waiter_tid)

    def condition_waiter_count(self, condition: SimCondition) -> int:
        with self._lock:
            return len(condition.waiters)

    # ------------------------------------------------------------------
    # Timed waits
    # ------------------------------------------------------------------

    def _expire_due_waits_locked(self) -> None:
        """Expire every timed wait whose deadline has passed (in step time)."""
        due = sorted(
            (deadline, tid)
            for tid, (_, deadline) in self._timed_waits.items()
            if deadline <= self._steps
        )
        for _, tid in due:
            self._expire_wait_locked(tid)

    def _expire_earliest_waits_locked(self) -> None:
        """Jump simulation time to the earliest pending deadline and expire
        every wait due then.  Called only when nothing is runnable."""
        earliest = min(deadline for (_, deadline) in self._timed_waits.values())
        due = sorted(
            (deadline, tid)
            for tid, (_, deadline) in self._timed_waits.items()
            if deadline <= earliest
        )
        for _, tid in due:
            self._expire_wait_locked(tid)

    def _expire_wait_locked(self, tid: int) -> None:
        condition, _ = self._timed_waits.pop(tid)
        sim_thread = self._threads.get(tid)
        if sim_thread is None or sim_thread.state is not _State.BLOCKED:
            # Already notified/aborted between scheduling decisions.
            return
        try:
            condition.waiters.remove(tid)
        except ValueError:
            # Notified concurrently with expiry: the notification wins.
            return
        # Expiry is a scheduler-driven event between slices; attribute it to
        # the slice being sealed, which is conservative (more dependence).
        self._note_cond(condition)
        self._note_lock(condition.lock)
        sim_thread.timed_out = True
        if condition.lock.owner is None:
            condition.lock.owner = tid
            self._make_runnable_locked(tid)
        else:
            condition.lock.queue.append(tid)

    # ------------------------------------------------------------------
    # Fault injection surface (called by repro.faults with the kernel
    # lock held, from injector hooks only)
    # ------------------------------------------------------------------

    def _check_doomed_locked(self, sim_thread: _SimThread) -> None:
        if self._doomed and sim_thread.tid in self._doomed:
            self._doomed.discard(sim_thread.tid)
            raise _InjectedDeath()

    def inject_wake_one_waiter_locked(self) -> Optional[int]:
        """Spuriously wake the longest waiter of the first populated
        condition; returns its tid, or None when nobody is waiting."""
        for condition in self._conditions:
            if condition.waiters:
                waiter_tid = condition.waiters.popleft()
                self._grant_lock_to_waiter_locked(condition, waiter_tid)
                return waiter_tid
        return None

    def inject_doom_lock_owner_locked(self) -> Optional[int]:
        """Mark the first live lock owner for death at its next kernel
        primitive; returns its tid, or None when no lock is held."""
        for lock in self._locks:
            owner = lock.owner
            if owner is None:
                continue
            sim_thread = self._threads.get(owner)
            if sim_thread is not None and sim_thread.state is not _State.FINISHED:
                self._doomed.add(owner)
                return owner
        return None

    def inject_detach_waiter_locked(self, condition: SimCondition) -> Optional[int]:
        """Remove (without waking) the longest waiter of *condition*;
        returns its tid, or None.  The delayed-signal fault re-delivers the
        detached waiter later via :meth:`inject_deliver_waiter_locked`."""
        if condition.waiters:
            return condition.waiters.popleft()
        return None

    def inject_deliver_waiter_locked(self, condition: SimCondition, tid: int) -> bool:
        """Deliver a previously detached waiter back into *condition*'s lock
        queue, as if its notification just arrived.  Returns False when the
        thread is gone or already runnable (e.g. its timed wait expired)."""
        sim_thread = self._threads.get(tid)
        if sim_thread is None or sim_thread.state is not _State.BLOCKED:
            return False
        if condition.lock.owner == tid or tid in condition.lock.queue:
            return False
        self.metrics.notified_threads += 1
        self._grant_lock_to_waiter_locked(condition, tid)
        return True

    # ------------------------------------------------------------------
    # Hang autopsy and abandonment detection
    # ------------------------------------------------------------------

    def _find_abandoned_lock_locked(self) -> Optional[tuple]:
        """A ``(lock, owner)`` pair where the owner finished while threads
        still queue behind the lock (directly or via its conditions)."""
        for lock in self._locks:
            if lock.owner is None:
                continue
            owner = self._threads.get(lock.owner)
            if owner is None or owner.state is not _State.FINISHED:
                continue
            if lock.queue or any(
                c.waiters for c in self._conditions if c.lock is lock
            ):
                return (lock, owner)
        return None

    def _hang_autopsy_locked(self) -> str:
        """Diagnose a wall-clock hang: who is parked, why, and what the
        scheduler last did.  Built *before* the abort unwinds the waiters."""
        live = [t for t in self._threads.values() if t.state is not _State.FINISHED]
        blocked = [t for t in live if t.state is _State.BLOCKED]
        lines = [
            f"hang autopsy: {len(blocked)}/{len(live)} live thread(s) blocked "
            f"after {self._steps} scheduling step(s)"
        ]
        for t in sorted(blocked, key=lambda t: t.tid):
            lines.append(f"  parked: {t.name} — {t.block_reason or 'blocked'}")
        if self._hang_inspector is not None:
            try:
                extra = self._hang_inspector()
            except Exception:  # diagnostics must never mask the hang
                extra = None
            if extra:
                lines.append(f"  waiters: {extra}")
        if self._trace is not None and len(self._trace):
            tail = list(self._trace)[-HANG_AUTOPSY_DECISIONS:]
            lines.append(f"  last {len(tail)} schedule decision(s):")
            for point in tail:
                lines.append(
                    f"    step {point.step}: chose {point.chosen} "
                    f"of {list(point.runnable)} ({point.reason})"
                )
        return "\n".join(lines)
