"""Deterministic cooperative simulation backend.

The simulator runs each simulated thread on a real Python thread but allows
exactly one of them to execute at a time; control is handed from thread to
thread only at synchronization points (lock acquisition, condition wait,
thread exit, explicit yields).  Scheduling decisions are made by a seeded
policy, so a whole experiment is reproducible bit-for-bit, and the kernel
counts every hand-off, giving exact context-switch counts that do not depend
on the GIL or on OS scheduling noise.

This is the substrate used to reproduce the *shape* of the paper's
evaluation: the quantities the paper's argument rests on (context switches
and predicate evaluations caused by each signalling mechanism) are measured
exactly here, while the threading backend provides wall-clock numbers for
reference.
"""

from repro.runtime.simulation.footprints import (
    DecisionFootprint,
    independent,
)
from repro.runtime.simulation.kernel import (
    DeadlockError,
    MonitorAbandonedError,
    SimulationBackend,
    SimulationError,
    SimulationHangError,
    SimulationLimitError,
)
from repro.runtime.simulation.schedulers import (
    FifoScheduler,
    PrefixScheduler,
    RandomScheduler,
    ReplayScheduler,
    SchedulePoint,
    ScheduleDivergenceError,
    ScheduleTrace,
    Scheduler,
    available_schedulers,
    create_scheduler,
    describe_scheduler,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)

__all__ = [
    "DeadlockError",
    "DecisionFootprint",
    "FifoScheduler",
    "MonitorAbandonedError",
    "SimulationHangError",
    "PrefixScheduler",
    "RandomScheduler",
    "ReplayScheduler",
    "SchedulePoint",
    "ScheduleDivergenceError",
    "ScheduleTrace",
    "Scheduler",
    "SimulationBackend",
    "SimulationError",
    "SimulationLimitError",
    "available_schedulers",
    "create_scheduler",
    "describe_scheduler",
    "get_scheduler",
    "independent",
    "register_scheduler",
    "unregister_scheduler",
]
