"""Pluggable scheduling strategies for the simulation kernel.

The kernel used to hard-code ``policy in ("fifo", "random")``; scheduling is
now a :class:`Scheduler` strategy object resolved through a name-based
registry, exactly like the signalling-policy and executor registries.  A
scheduler sees every *decision point* — the kernel has more than one runnable
thread (or exactly one) and must pick which runs next — and returns an index
into the runnable queue.

The kernel can also record the decisions it actually made as a
:class:`ScheduleTrace`: one :class:`SchedulePoint` per decision, carrying the
sorted runnable set, the chosen thread id and the reason control was up for
grabs.  A recorded trace can be re-driven bit-identically by the
:class:`ReplayScheduler`, which is what the schedule-exploration engine
(:mod:`repro.explore`) builds its repro files on.

Schedulers:

* ``"fifo"``   — round-robin over the runnable queue (the default).
* ``"random"`` — seeded uniformly-random choice among runnable threads.
* :class:`PrefixScheduler` — follows an explicit list of decisions (indices
  into the *sorted* runnable set), then falls back to the smallest thread id;
  the branching primitive of the DFS explorer.
* ``"replay"`` / :class:`ReplayScheduler` — re-drives a recorded
  :class:`ScheduleTrace`, verifying at every step that the simulation offers
  exactly the recorded runnable set.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Type, Union

from repro.core.plugin_registry import PluginRegistry

__all__ = [
    "SchedulePoint",
    "ScheduleTrace",
    "ScheduleDivergenceError",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "PrefixScheduler",
    "ReplayScheduler",
    "register_scheduler",
    "unregister_scheduler",
    "get_scheduler",
    "available_schedulers",
    "describe_scheduler",
    "create_scheduler",
]


class ScheduleDivergenceError(Exception):
    """Raised when a replayed/prefixed schedule no longer matches the run.

    Replay is only meaningful against the exact same (problem, mechanism,
    parameters) the trace was recorded from; any divergence — a different
    runnable set, a shorter run, an out-of-range decision — is an error
    rather than a silent best-effort continuation.
    """


@dataclass(frozen=True)
class SchedulePoint:
    """One scheduling decision.

    ``runnable`` is the *sorted* tuple of runnable thread ids at the decision
    (sorted so the set is canonical regardless of queue order), ``chosen`` is
    the thread id that was dispatched, and ``reason`` records why control was
    up for grabs ("start", "yield", "exit", or the blocking thread's block
    reason such as ``"waiting for lock"``).
    """

    step: int
    runnable: Tuple[int, ...]
    chosen: int
    reason: str

    @property
    def choice_index(self) -> int:
        """Index of the chosen thread within the sorted runnable set."""
        return self.runnable.index(self.chosen)

    @property
    def branching(self) -> int:
        """How many alternatives existed at this decision."""
        return len(self.runnable)

    def to_dict(self) -> dict:
        return {
            "step": self.step,
            "runnable": list(self.runnable),
            "chosen": self.chosen,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulePoint":
        return cls(
            step=int(data["step"]),
            runnable=tuple(int(tid) for tid in data["runnable"]),
            chosen=int(data["chosen"]),
            reason=str(data["reason"]),
        )


class ScheduleTrace:
    """The ordered list of decision points of one simulation run.

    ``footprints``, when present, annotates each decision with what its
    slice touched (see :mod:`repro.runtime.simulation.footprints`) — the
    dependence information DPOR consumes.  Footprints are *annotations*:
    they are excluded from :meth:`digest` and from equality, so a trace
    recorded with footprint recording on replays bit-identically to one
    recorded without.
    """

    __slots__ = ("points", "footprints")

    def __init__(
        self,
        points: Sequence[SchedulePoint] = (),
        footprints: Optional[Sequence] = None,
    ) -> None:
        self.points: List[SchedulePoint] = list(points)
        self.footprints: Optional[list] = (
            list(footprints) if footprints is not None else None
        )

    def append(self, point: SchedulePoint) -> None:
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ScheduleTrace):
            return self.points == other.points
        return NotImplemented

    def choices(self) -> Tuple[int, ...]:
        """The decision sequence as indices into each sorted runnable set.

        This is the canonical coordinate system of the DFS explorer: a
        schedule is fully determined by these indices, independent of thread
        ids or queue order.
        """
        return tuple(point.choice_index for point in self.points)

    def digest(self) -> str:
        """A stable hex digest of the full decision sequence.

        Mirrors ``series_fingerprint`` in the harness: two runs followed the
        same schedule if and only if their trace digests match.
        """
        hasher = hashlib.sha256()
        for point in self.points:
            hasher.update(
                f"{point.step}|{','.join(map(str, point.runnable))}|"
                f"{point.chosen}|{point.reason}\n".encode("utf-8")
            )
        return hasher.hexdigest()

    def to_dict(self) -> dict:
        data: dict = {"points": [point.to_dict() for point in self.points]}
        if self.footprints is not None:
            # None entries are shared-prefix placeholders (the parent run
            # recorded those slices); they round-trip as JSON nulls.
            data["footprints"] = [
                fp.to_dict() if fp is not None else None for fp in self.footprints
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleTrace":
        footprints = None
        if "footprints" in data:
            from repro.runtime.simulation.footprints import DecisionFootprint

            footprints = [
                DecisionFootprint.from_dict(fp) if fp is not None else None
                for fp in data["footprints"]
            ]
        return cls(
            (SchedulePoint.from_dict(point) for point in data["points"]),
            footprints=footprints,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ScheduleTrace":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScheduleTrace {len(self.points)} points digest={self.digest()[:12]}>"


class Scheduler:
    """Strategy object deciding which runnable thread the kernel runs next.

    ``choose`` receives the runnable queue (thread ids, in kernel queue
    order) and returns the index of the thread to dispatch.  ``reset`` is
    called by the kernel at the start of every run with the run's seed, so a
    scheduler instance behaves identically across repeated runs.
    """

    #: Registry name ("fifo", "random", ...).
    name: str = "abstract"
    #: One-line human-readable label shown by ``--list-schedulers``.
    description: str = ""

    def reset(self, seed: int) -> None:
        """Prepare for a new run (re-seed RNGs, rewind replay cursors...)."""

    def choose(self, runnable: Sequence[int]) -> int:
        """Return the index (into *runnable*) of the thread to run next."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line label used by reports and the CLI."""
        return self.description or self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


#: The shared plugin registry (see :mod:`repro.core.plugin_registry`):
#: name -> scheduler class, in registration order.
_REGISTRY = PluginRegistry(kind="scheduler", base=Scheduler)

SchedulerSpec = Union[str, Scheduler, Type[Scheduler]]


def register_scheduler(
    scheduler_cls: Type[Scheduler], replace: bool = False
) -> Type[Scheduler]:
    """Register *scheduler_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True``.
    """
    return _REGISTRY.register(scheduler_cls, replace=replace)


def unregister_scheduler(name: str) -> None:
    """Remove a registered scheduler (used by tests that register throwaway
    strategies); unknown names raise the same error as :func:`get_scheduler`."""
    _REGISTRY.unregister(name)


def get_scheduler(name: str) -> Type[Scheduler]:
    """Look up a scheduler class by registry name."""
    return _REGISTRY.get(name)


def available_schedulers() -> Tuple[str, ...]:
    """Names of every registered scheduler, in registration order."""
    return _REGISTRY.names()


def describe_scheduler(name: str) -> str:
    """The one-line human-readable label of a registered scheduler."""
    return _REGISTRY.describe(name)


def create_scheduler(spec: SchedulerSpec) -> Scheduler:
    """Resolve *spec* to a ready-to-use scheduler instance.

    Accepts a registry name (``"fifo"``, ``"random"``), a :class:`Scheduler`
    subclass, or an already-constructed instance — the hook that lets the
    explorer pass :class:`PrefixScheduler`/:class:`ReplayScheduler` objects
    straight to the kernel.
    """
    return _REGISTRY.create(spec)


@register_scheduler
class FifoScheduler(Scheduler):
    """Round-robin over the runnable queue (the kernel's legacy default)."""

    name = "fifo"
    description = "round-robin over the runnable queue (the default)"

    def choose(self, runnable: Sequence[int]) -> int:
        return 0


@register_scheduler
class RandomScheduler(Scheduler):
    """Seeded uniformly-random choice among the runnable threads.

    Reproduces the legacy ``policy="random"`` decision stream bit-for-bit:
    the RNG is seeded from the run seed and draws one ``randrange`` per
    decision over the queue in queue order.
    """

    name = "random"
    description = "seeded uniformly-random choice among runnable threads"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def reset(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def choose(self, runnable: Sequence[int]) -> int:
        return self._rng.randrange(len(runnable))


@register_scheduler
class PrefixScheduler(Scheduler):
    """Follow an explicit decision prefix, then run the smallest thread id.

    The prefix is a sequence of indices into the **sorted** runnable set at
    each successive decision point (the coordinate system of
    :meth:`ScheduleTrace.choices`), so a prefix identifies the same schedule
    regardless of kernel queue order.  Beyond the prefix the scheduler picks
    index 0 of the sorted set — the canonical default continuation the DFS
    explorer branches from.
    """

    name = "prefix"
    description = "explicit decision prefix + smallest-tid continuation (DFS driver)"

    def __init__(self, prefix: Sequence[int] = ()) -> None:
        self.prefix: Tuple[int, ...] = tuple(int(choice) for choice in prefix)
        self._cursor = 0

    def reset(self, seed: int) -> None:
        self._cursor = 0

    def choose(self, runnable: Sequence[int]) -> int:
        ordered = sorted(runnable)
        if self._cursor < len(self.prefix):
            choice = self.prefix[self._cursor]
            if not 0 <= choice < len(ordered):
                raise ScheduleDivergenceError(
                    f"decision {self._cursor}: prefix chose alternative {choice} "
                    f"but only {len(ordered)} threads are runnable"
                )
        else:
            choice = 0
        self._cursor += 1
        return runnable.index(ordered[choice])


@register_scheduler
class ReplayScheduler(Scheduler):
    """Re-drive a recorded :class:`ScheduleTrace` decision-for-decision.

    Every decision is checked against the recorded point: the sorted
    runnable set must match exactly, otherwise the simulation being replayed
    differs from the one that produced the trace and a
    :class:`ScheduleDivergenceError` is raised instead of silently picking
    something else.
    """

    name = "replay"
    description = "re-drive a recorded ScheduleTrace deterministically"

    def __init__(self, trace: Optional[ScheduleTrace] = None) -> None:
        if trace is None:
            raise ValueError(
                "the replay scheduler needs a recorded ScheduleTrace; construct "
                "it as ReplayScheduler(trace) or load a repro file with "
                "repro.explore (plain create_scheduler('replay') cannot work)"
            )
        self.trace = trace
        self._cursor = 0

    def reset(self, seed: int) -> None:
        self._cursor = 0

    def choose(self, runnable: Sequence[int]) -> int:
        if self._cursor >= len(self.trace):
            raise ScheduleDivergenceError(
                f"replay diverged: the recorded trace has {len(self.trace)} "
                f"decisions but the run needs more"
            )
        point = self.trace[self._cursor]
        observed = tuple(sorted(runnable))
        if observed != point.runnable:
            raise ScheduleDivergenceError(
                f"replay diverged at decision {self._cursor}: recorded runnable "
                f"set {point.runnable} but the run offers {observed}"
            )
        self._cursor += 1
        return runnable.index(point.chosen)
