"""Event-loop backend: each waiter is a coroutine task, not an OS thread.

``ThreadingBackend`` tops out at a few thousand OS threads, so the relay
machinery's sublinear pass cost can never be demonstrated at service scale.
This backend hosts 10^5-10^6 waiters by making every waiter an ``asyncio``
task: locks and condition variables keep their state under a cheap
``threading.Lock`` and park waiters as a FIFO of per-waiter futures, so a
``notify_n(k)`` is one pass popping k futures and one batch of resolutions.

The backend is a hybrid, because monitor code is synchronous:

* **Coroutine targets** (``async def``) run as tasks on one event loop and
  enter monitors through the coroutine driver
  (:mod:`repro.core.async_driver`), which awaits :meth:`_AsyncioLock.
  acquire_async` / :meth:`_AsyncioCondition.wait_async` instead of blocking.
* **Plain callables** run on bridged OS threads (exactly like the threading
  backend) and may call the ordinary blocking ``acquire``/``wait``; their
  futures are ``concurrent.futures.Future`` objects resolved directly.

Both kinds of waiter share the same FIFO queues, so mixed workloads — a
million parked coroutines woken by a handful of real threads, or vice versa
— keep strict FIFO wakeup order across the boundary.  Time is wall-clock
seconds (:meth:`Backend.now`), the same unit the threading backend uses.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from collections import deque
from typing import Callable, Deque, Optional, Sequence

from repro.runtime.api import Backend, ConditionAPI, LockAPI, ThreadHandle

__all__ = ["AsyncioBackend"]


class _Waiter:
    """One parked waiter: a future plus the loop that must resolve it.

    ``loop`` is None for bridged-thread waiters (``concurrent.futures.
    Future``, resolvable from any thread) and the owning event loop for
    coroutine waiters (``asyncio.Future``, resolved via
    ``call_soon_threadsafe`` when woken from another thread).
    """

    __slots__ = ("future", "loop")

    def __init__(self, future, loop) -> None:
        self.future = future
        self.loop = loop


def _set_result_safe(future) -> None:
    # A waiter may have timed out (future cancelled) between being popped
    # from the queue and this callback running; the pop already decided the
    # wait counts as notified, so a done future just means nothing to do.
    if not future.done():
        future.set_result(True)


class _AsyncioLock(LockAPI):
    """FIFO mutex shared by coroutine and bridged-thread waiters.

    Release hands the lock directly to the head of the queue (the lock never
    becomes free while waiters are queued), so wakeup order is strict FIFO
    and no barging thread can starve a parked coroutine.
    """

    def __init__(self, backend: "AsyncioBackend", label: Optional[str] = None) -> None:
        self._backend = backend
        self.label = label
        self._state = threading.Lock()
        self._locked = False
        self._queue: Deque[_Waiter] = deque()

    def acquire(self) -> None:
        backend = self._backend
        with self._state:
            if not self._locked:
                self._locked = True
                backend._record("lock_acquisitions")
                return
            if backend._on_loop_thread():
                raise RuntimeError(
                    "blocking acquire of a contended asyncio-backend lock from "
                    "the event-loop thread; coroutine waiters must go through "
                    "the coroutine driver (acquire_async)"
                )
            waiter = _Waiter(concurrent.futures.Future(), None)
            self._queue.append(waiter)
            backend._record("lock_contentions")
        waiter.future.result()
        backend._record("lock_acquisitions")
        backend._record("context_switches")

    async def acquire_async(self) -> None:
        backend = self._backend
        with self._state:
            if not self._locked:
                self._locked = True
                backend._record("lock_acquisitions")
                return
            loop = asyncio.get_running_loop()
            waiter = _Waiter(loop.create_future(), loop)
            self._queue.append(waiter)
            backend._record("lock_contentions")
        await waiter.future
        backend._record("lock_acquisitions")
        backend._record("context_switches")

    def release(self) -> None:
        with self._state:
            if not self._locked:
                raise RuntimeError("release of an unheld asyncio-backend lock")
            if self._queue:
                waiter = self._queue.popleft()  # direct handoff: stays locked
            else:
                self._locked = False
                waiter = None
        if waiter is not None:
            self._backend._resolve(waiter)

    @property
    def locked(self) -> bool:
        with self._state:
            return self._locked


class _AsyncioCondition(ConditionAPI):
    """Condition variable over a FIFO deque of per-waiter futures."""

    def __init__(
        self,
        backend: "AsyncioBackend",
        lock: _AsyncioLock,
        label: Optional[str] = None,
    ) -> None:
        self._backend = backend
        self._lock = lock
        self.label = label
        # Shares the lock's state mutex: a waiter enqueues itself *before*
        # releasing the monitor lock, so a notify between release and park
        # can never be missed.
        self._state = lock._state
        self._waiters: Deque[_Waiter] = deque()

    def _discard(self, waiter: _Waiter) -> bool:
        """Remove *waiter* after a timeout; False means a concurrent notify
        already popped it (the notification wins, the wait counts as
        notified)."""
        with self._state:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                return False
            return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        backend = self._backend
        if backend._on_loop_thread():
            raise RuntimeError(
                "blocking wait on the event-loop thread; coroutine waiters "
                "must go through the coroutine driver (wait_async)"
            )
        backend._record("condition_waits")
        waiter = _Waiter(concurrent.futures.Future(), None)
        with self._state:
            self._waiters.append(waiter)
        self._lock.release()
        notified = True
        try:
            waiter.future.result(timeout)
        except concurrent.futures.TimeoutError:
            notified = not self._discard(waiter)
        backend._record("context_switches")
        self._lock.acquire()
        return notified

    async def wait_async(self, timeout: Optional[float] = None) -> bool:
        backend = self._backend
        backend._record("condition_waits")
        loop = asyncio.get_running_loop()
        waiter = _Waiter(loop.create_future(), loop)
        with self._state:
            self._waiters.append(waiter)
        self._lock.release()
        notified = True
        try:
            if timeout is None:
                await waiter.future
            else:
                await asyncio.wait_for(waiter.future, timeout)
        except asyncio.TimeoutError:
            notified = not self._discard(waiter)
        backend._record("context_switches")
        await self._lock.acquire_async()
        return notified

    def _pop_waiters(self, n: Optional[int]) -> list:
        with self._state:
            if n is None:
                popped = list(self._waiters)
                self._waiters.clear()
            else:
                popped = [
                    self._waiters.popleft()
                    for _ in range(min(n, len(self._waiters)))
                ]
        return popped

    def notify(self) -> None:
        backend = self._backend
        backend._record("notifies")
        popped = self._pop_waiters(1)
        if popped:
            backend._record("notified_threads")
            backend._resolve(popped[0])

    def notify_n(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"notify_n requires n >= 0, got {n}")
        if n == 0:
            return
        backend = self._backend
        backend._record("notifies")
        popped = self._pop_waiters(n)
        if popped:
            backend._record("notified_threads", len(popped))
            backend._resolve_batch(popped)

    def notify_all(self) -> None:
        backend = self._backend
        backend._record("notify_alls")
        popped = self._pop_waiters(None)
        if popped:
            backend._record("notified_threads", len(popped))
            backend._resolve_batch(popped)

    def waiter_count(self) -> int:
        with self._state:
            return len(self._waiters)


class _AsyncioThreadHandle(ThreadHandle):
    """Handle for a bridged OS thread."""

    def __init__(self, thread: threading.Thread) -> None:
        self._thread = thread

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    @property
    def name(self) -> str:
        return self._thread.name

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class _AsyncioTaskHandle(ThreadHandle):
    """Handle for a coroutine task; joinable only after ``run`` returned."""

    def __init__(self, task: "asyncio.Task", name: str) -> None:
        self._task = task
        self._name = name

    def join(self, timeout: Optional[float] = None) -> None:
        # run() awaits every task before returning; by the time user code
        # can call join the task has finished.
        del timeout

    @property
    def name(self) -> str:
        return self._name

    @property
    def alive(self) -> bool:
        return not self._task.done()


class AsyncioBackend(Backend):
    """Backend hosting waiters as coroutine tasks on one event loop."""

    name = "asyncio"
    description = "event-loop tasks as waiters; scales to 10^5-10^6 parked waiters (seconds)"
    time_unit = "seconds"

    def __init__(self) -> None:
        super().__init__()
        self._metrics_lock = threading.Lock()
        self._failures: list[BaseException] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread_id: Optional[int] = None

    # -- internals ---------------------------------------------------------

    def _record(self, counter: str, amount: int = 1) -> None:
        with self._metrics_lock:
            setattr(self.metrics, counter, getattr(self.metrics, counter) + amount)

    def _on_loop_thread(self) -> bool:
        return (
            self._loop_thread_id is not None
            and self._loop_thread_id == threading.get_ident()
        )

    def _resolve(self, waiter: _Waiter) -> None:
        if waiter.loop is None or self._on_loop_thread():
            _set_result_safe(waiter.future)
        else:
            waiter.loop.call_soon_threadsafe(_set_result_safe, waiter.future)

    def _resolve_batch(self, waiters: Sequence[_Waiter]) -> None:
        """Resolve a bulk wakeup: loop-local futures in one pass, foreign-
        loop futures through a single scheduled callback per loop."""
        foreign: dict = {}
        for waiter in waiters:
            if waiter.loop is None or self._on_loop_thread():
                _set_result_safe(waiter.future)
            else:
                foreign.setdefault(waiter.loop, []).append(waiter.future)
        for loop, futures in foreign.items():
            loop.call_soon_threadsafe(
                lambda batch=futures: [_set_result_safe(f) for f in batch]
            )

    # -- factory API -------------------------------------------------------

    def create_lock(self, label: Optional[str] = None) -> _AsyncioLock:
        return _AsyncioLock(self, label=label)

    def create_condition(
        self, lock: LockAPI, label: Optional[str] = None
    ) -> _AsyncioCondition:
        if not isinstance(lock, _AsyncioLock):
            raise TypeError("an AsyncioBackend condition requires an AsyncioBackend lock")
        return _AsyncioCondition(self, lock, label=label)

    def spawn(
        self,
        target: Callable[[], None],
        name: Optional[str] = None,
    ) -> ThreadHandle:
        """Start *target*: a coroutine function becomes a task on the running
        loop (loop thread only); a plain callable gets a bridged OS thread."""
        if asyncio.iscoroutinefunction(target):
            if not self._on_loop_thread():
                raise RuntimeError(
                    "coroutine targets can only be spawned from inside "
                    "AsyncioBackend.run's event loop"
                )
            self._record("threads_spawned")
            task = self._loop.create_task(self._run_task(target), name=name)
            return _AsyncioTaskHandle(task, name or "task")

        def runner() -> None:
            try:
                target()
            except BaseException as exc:  # propagated to the caller by run()
                with self._metrics_lock:
                    self._failures.append(exc)

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._record("threads_spawned")
        thread.start()
        return _AsyncioThreadHandle(thread)

    async def _run_task(self, target) -> None:
        try:
            await target()
        except BaseException as exc:
            with self._metrics_lock:
                self._failures.append(exc)

    def current_id(self) -> object:
        if self._on_loop_thread():
            task = asyncio.current_task()
            if task is not None:
                return task
        return threading.get_ident()

    def run(
        self,
        targets: Sequence[Callable[[], None]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Run all *targets* concurrently and wait for every one.

        Coroutine functions become tasks on a fresh event loop; plain
        callables run on bridged threads alongside it.  With no coroutine
        target at all there is no loop: the run degenerates to plain
        threads over the same future-FIFO primitives, which is how the
        backend hosts unmodified (synchronous) problem workloads.
        """
        self._failures = []
        if any(asyncio.iscoroutinefunction(target) for target in targets):
            asyncio.run(self._run_async(targets, names))
        else:
            handles = []
            for index, target in enumerate(targets):
                name = names[index] if names else f"worker-{index}"
                handles.append(self.spawn(target, name=name))
            for handle in handles:
                handle.join()
        if self._failures:
            raise self._failures[0]

    async def _run_async(
        self,
        targets: Sequence[Callable[[], None]],
        names: Optional[Sequence[str]],
    ) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._loop_thread_id = threading.get_ident()
        tasks = []
        handles = []
        try:
            for index, target in enumerate(targets):
                name = names[index] if names else f"worker-{index}"
                if asyncio.iscoroutinefunction(target):
                    self._record("threads_spawned")
                    tasks.append(loop.create_task(self._run_task(target), name=name))
                else:
                    handles.append(self.spawn(target, name=name))
            if tasks:
                # _run_task never raises (failures are collected), so gather
                # waits for every task even when some fail.
                await asyncio.gather(*tasks)
            if handles:
                await asyncio.to_thread(self._join_handles, handles)
        finally:
            self._loop = None
            self._loop_thread_id = None

    @staticmethod
    def _join_handles(handles: Sequence[ThreadHandle]) -> None:
        for handle in handles:
            handle.join()
