"""Abstract synchronization API shared by the threading and simulation backends.

The monitors in :mod:`repro.core` and the workload drivers in
:mod:`repro.harness` only ever talk to these interfaces, so the same monitor
code runs on real threads (for wall-clock measurements) and on the
deterministic simulator (for exact context-switch and evaluation counts).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["LockAPI", "ConditionAPI", "ThreadHandle", "BackendMetrics", "Backend"]


class LockAPI(abc.ABC):
    """A mutual-exclusion lock."""

    @abc.abstractmethod
    def acquire(self) -> None:
        """Block until the lock is held by the calling thread."""

    @abc.abstractmethod
    def release(self) -> None:
        """Release the lock; it must currently be held by the caller."""

    def __enter__(self) -> "LockAPI":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ConditionAPI(abc.ABC):
    """A condition variable tied to a :class:`LockAPI`."""

    @abc.abstractmethod
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Atomically release the lock and block until notified, then
        re-acquire the lock before returning.

        With a *timeout* (in the backend's time units — see
        :meth:`Backend.now`), the wait gives up once the deadline passes and
        returns False; a wait that ended by notification returns True.
        Either way the lock is re-acquired before returning.
        """

    @abc.abstractmethod
    def notify(self) -> None:
        """Wake one thread waiting on this condition (if any)."""

    def notify_n(self, n: int) -> None:
        """Wake up to *n* threads waiting on this condition, in FIFO order.

        The bulk-wakeup contract, identical across backends:

        - wakes ``min(n, waiter_count())`` threads — asking for more than
          are waiting wakes everyone waiting and is not an error;
        - waiters are woken in the order they called :meth:`wait` (FIFO);
        - ``n == 0`` is a no-op (no metrics recorded, no error);
        - ``n < 0`` raises :class:`ValueError`.

        The default implementation loops over :meth:`notify`; backends
        override it with a single batched wakeup where the primitive
        supports one (``threading.Condition.notify(n)``, one simulation
        kernel pass, one batch of future resolutions on asyncio).
        """
        if n < 0:
            raise ValueError(f"notify_n requires n >= 0, got {n}")
        for _ in range(n):
            self.notify()

    @abc.abstractmethod
    def notify_all(self) -> None:
        """Wake every thread waiting on this condition."""

    @abc.abstractmethod
    def waiter_count(self) -> int:
        """Number of threads currently waiting on this condition."""


class ThreadHandle(abc.ABC):
    """Handle for a spawned thread."""

    @abc.abstractmethod
    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the thread to finish."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """The thread's name."""

    @property
    @abc.abstractmethod
    def alive(self) -> bool:
        """Whether the thread is still running."""


@dataclass
class BackendMetrics:
    """Counters maintained by a backend across one experiment run.

    ``context_switches`` counts transfers of control between threads: on the
    simulation backend this is exact; on the threading backend it is
    approximated by the number of times a blocked thread resumed (every
    wake-up from a lock or condition wait implies at least one OS context
    switch into that thread).
    """

    context_switches: int = 0
    condition_waits: int = 0
    notifies: int = 0
    notify_alls: int = 0
    notified_threads: int = 0
    lock_acquisitions: int = 0
    lock_contentions: int = 0
    threads_spawned: int = 0

    def snapshot(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "context_switches": self.context_switches,
            "condition_waits": self.condition_waits,
            "notifies": self.notifies,
            "notify_alls": self.notify_alls,
            "notified_threads": self.notified_threads,
            "lock_acquisitions": self.lock_acquisitions,
            "lock_contentions": self.lock_contentions,
            "threads_spawned": self.threads_spawned,
        }

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class Backend(abc.ABC):
    """Factory for locks, conditions and threads, plus run-wide metrics."""

    #: Short identifier used in reports ("threading", "simulation", "asyncio").
    name: str = "abstract"

    #: One-line summary surfaced by the backend registry (``--list-backends``).
    description: str = ""

    #: The unit :meth:`now` counts in — ``"seconds"`` (wall clock) or
    #: ``"steps"`` (simulation scheduling decisions).  Timeouts handed to
    #: :meth:`ConditionAPI.wait` and ``wait_until`` are in this unit.
    time_unit: str = "seconds"

    def __init__(self) -> None:
        self.metrics = BackendMetrics()

    @classmethod
    def build(cls, seed: int = 0, run_timeout: Optional[float] = None) -> "Backend":
        """Construct an instance from the harness's uniform knobs.

        Real-time backends have no use for a scheduling seed or a modelled
        run timeout, so the default ignores both; the simulation backend
        overrides this to thread them into its kernel.
        """
        del seed, run_timeout
        return cls()

    @abc.abstractmethod
    def create_lock(self, label: Optional[str] = None) -> LockAPI:
        """Create a new lock.

        *label* is an optional human-readable name surfaced in diagnostics
        (block reasons, deadlock messages, schedule traces); backends may
        ignore it but must accept it.
        """

    @abc.abstractmethod
    def create_condition(
        self, lock: LockAPI, label: Optional[str] = None
    ) -> ConditionAPI:
        """Create a condition variable associated with *lock* (see
        :meth:`create_lock` for *label*)."""

    @abc.abstractmethod
    def spawn(
        self,
        target: Callable[[], None],
        name: Optional[str] = None,
    ) -> ThreadHandle:
        """Start a new thread running *target* and return its handle."""

    @abc.abstractmethod
    def run(
        self,
        targets: Sequence[Callable[[], None]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Run every callable in *targets* in its own thread and wait for all
        of them to finish.  This is the entry point the experiment harness
        uses; the simulation backend overrides it to drive its scheduler."""

    @abc.abstractmethod
    def current_id(self) -> object:
        """An identifier for the calling thread, unique among live threads.

        Monitors use this for re-entrancy checks; workloads may use it for
        thread identity (e.g. the round-robin access pattern).
        """

    def now(self) -> float:
        """The backend's monotonic clock, in the units timed waits use.

        This is the single time-unit contract every timed wait is built on:

        - the value is monotonically non-decreasing and starts at an
          arbitrary origin (only differences are meaningful);
        - the unit is :attr:`time_unit` — wall-clock **seconds** for the
          threading and asyncio backends, **scheduling steps** for the
          simulation backend (its only notion of time), so a
          ``wait_until(..., timeout=50)`` under simulation gives up after
          50 scheduling decisions;
        - deadline arithmetic is uniform: callers compute
          ``deadline = now() + timeout`` once and pass
          ``max(deadline - now(), 0)`` as each remaining wait, never
          mixing clocks — the signalling policies centralise this in one
          place so no backend can drift.
        """
        return time.monotonic()

    def reset_metrics(self) -> None:
        """Zero the backend counters before a measured run."""
        self.metrics.reset()
