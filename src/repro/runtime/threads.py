"""Real-thread backend built on :mod:`threading`.

This backend is used for wall-clock measurements.  Its metrics are
best-effort approximations of what an OS profiler would report: every return
from a blocking wait is counted as (at least) one context switch into the
waking thread.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from repro.runtime.api import Backend, ConditionAPI, LockAPI, ThreadHandle

__all__ = ["ThreadingBackend"]


class _ThreadingLock(LockAPI):
    """Wrapper around :class:`threading.Lock` that records contention."""

    def __init__(
        self, backend: "ThreadingBackend", label: Optional[str] = None
    ) -> None:
        self._backend = backend
        self.label = label
        self._lock = threading.Lock()

    def acquire(self) -> None:
        # Try the fast path first so uncontended acquisitions stay cheap and
        # contended ones are visible in the metrics.
        if self._lock.acquire(blocking=False):
            self._backend._record("lock_acquisitions")
            return
        self._backend._record("lock_contentions")
        self._lock.acquire()
        self._backend._record("lock_acquisitions")
        self._backend._record("context_switches")

    def release(self) -> None:
        self._lock.release()

    @property
    def raw(self) -> threading.Lock:
        return self._lock


class _ThreadingCondition(ConditionAPI):
    """Wrapper around :class:`threading.Condition` with waiter accounting."""

    def __init__(
        self,
        backend: "ThreadingBackend",
        lock: _ThreadingLock,
        label: Optional[str] = None,
    ) -> None:
        self._backend = backend
        self._condition = threading.Condition(lock.raw)
        self._waiters = 0
        self.label: Optional[str] = label

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._waiters += 1
        self._backend._record("condition_waits")
        try:
            notified = self._condition.wait(timeout)
        finally:
            self._waiters -= 1
        # Returning from wait() means this thread was scheduled back in.
        self._backend._record("context_switches")
        return notified

    def notify(self) -> None:
        self._backend._record("notifies")
        if self._waiters > 0:
            self._backend._record("notified_threads")
        self._condition.notify()

    def notify_n(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"notify_n requires n >= 0, got {n}")
        if n == 0:
            return
        # One bulk wakeup: a single notifies event, however many threads it
        # actually reaches.
        self._backend._record("notifies")
        woken = min(n, self._waiters)
        if woken > 0:
            self._backend._record("notified_threads", woken)
        self._condition.notify(n)

    def notify_all(self) -> None:
        self._backend._record("notify_alls")
        self._backend._record("notified_threads", self._waiters)
        self._condition.notify_all()

    def waiter_count(self) -> int:
        return self._waiters


class _ThreadingHandle(ThreadHandle):
    def __init__(self, thread: threading.Thread) -> None:
        self._thread = thread

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    @property
    def name(self) -> str:
        return self._thread.name

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class ThreadingBackend(Backend):
    """Backend using ordinary Python threads and locks."""

    name = "threading"
    description = "real OS threads; wall-clock measurements (seconds)"

    def __init__(self) -> None:
        super().__init__()
        self._metrics_lock = threading.Lock()
        self._failures: list[BaseException] = []

    def _record(self, counter: str, amount: int = 1) -> None:
        with self._metrics_lock:
            setattr(self.metrics, counter, getattr(self.metrics, counter) + amount)

    def create_lock(self, label: Optional[str] = None) -> _ThreadingLock:
        return _ThreadingLock(self, label=label)

    def create_condition(
        self, lock: LockAPI, label: Optional[str] = None
    ) -> _ThreadingCondition:
        if not isinstance(lock, _ThreadingLock):
            raise TypeError("a ThreadingBackend condition requires a ThreadingBackend lock")
        return _ThreadingCondition(self, lock, label=label)

    def spawn(
        self,
        target: Callable[[], None],
        name: Optional[str] = None,
    ) -> _ThreadingHandle:
        def runner() -> None:
            try:
                target()
            except BaseException as exc:  # propagated to the caller by run()
                with self._metrics_lock:
                    self._failures.append(exc)

        thread = threading.Thread(target=runner, name=name, daemon=True)
        self._record("threads_spawned")
        thread.start()
        return _ThreadingHandle(thread)

    def current_id(self) -> object:
        return threading.get_ident()

    def run(
        self,
        targets: Sequence[Callable[[], None]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        """Run all *targets* concurrently and join them.

        If any target raised, the first exception is re-raised here so test
        failures inside worker threads are not silently swallowed.
        """
        self._failures = []
        handles = []
        for index, target in enumerate(targets):
            name = names[index] if names else f"worker-{index}"
            handles.append(self.spawn(target, name=name))
        for handle in handles:
            handle.join()
        if self._failures:
            raise self._failures[0]
