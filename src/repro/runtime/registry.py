"""Name-based registry of execution backends.

The registry is what makes the backend layer pluggable the same way the
signalling policies, executors, schedulers and the problem catalogue are:
the harness (:func:`repro.harness.saturation.make_backend`), the service
tier and ``--backend`` / ``--list-backends`` on ``python -m
repro.experiments`` all resolve backend names through it instead of
hard-coding a mode tuple.  Registering a new backend immediately makes it
selectable everywhere a backend name is accepted.

The registration/lookup contract (decorator registration, ``replace=True``
shadow guard, list-on-unknown-name errors) is the shared
:class:`~repro.core.plugin_registry.PluginRegistry` idiom; this module is
the backend-flavoured face of it.  The three standard backends —
``threading``, ``simulation``, ``asyncio`` — are registered lazily on
first use so importing this module never drags in the whole simulation
kernel.

Unlike policies, backends are constructed through the classmethod
:meth:`~repro.runtime.api.Backend.build` (not bare ``cls()``) so the
harness can pass ``seed`` / ``run_timeout`` uniformly and each backend
keeps what it understands.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.core.plugin_registry import PluginRegistry
from repro.runtime.api import Backend

__all__ = [
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "describe_backend",
    "create_backend",
]

#: The shared plugin registry holding every backend class, in registration
#: order (the populate hook registers the standard three first, so
#: ``available_backends`` leads with ``simulation`` — the default).
_REGISTRY = PluginRegistry(kind="backend", base=Backend, noun="backend")


def _register_builtin_backends() -> None:
    from repro.runtime.asyncio_backend import AsyncioBackend
    from repro.runtime.simulation import SimulationBackend
    from repro.runtime.threads import ThreadingBackend

    for backend_cls in (SimulationBackend, ThreadingBackend, AsyncioBackend):
        # Never clobber a name a user claimed before first lookup.
        if backend_cls.name not in _REGISTRY:
            _REGISTRY.register(backend_cls)


_REGISTRY.set_populate(_register_builtin_backends)


def register_backend(
    backend_cls: Type[Backend], replace: bool = False
) -> Type[Backend]:
    """Register *backend_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True`` (guards against accidental shadowing of the
    standard backends).
    """
    return _REGISTRY.register(backend_cls, replace=replace)


def unregister_backend(name: str) -> None:
    """Remove a registered backend by name.

    Exists for tests that register throwaway backends and must restore the
    registry afterwards.  Unknown names raise the same error as
    :func:`get_backend`.
    """
    _REGISTRY.unregister(name)


def get_backend(name: str) -> Type[Backend]:
    """Look up a backend class by registry name."""
    return _REGISTRY.get(name)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return _REGISTRY.names()


def describe_backend(name: str) -> str:
    """The one-line human-readable label of a registered backend."""
    return _REGISTRY.describe(name)


def create_backend(
    name: str, seed: int = 0, run_timeout: Optional[float] = None
) -> Backend:
    """Create a ready backend instance by registry name.

    Construction goes through :meth:`Backend.build` so every backend
    receives the harness's ``seed`` and ``run_timeout`` knobs uniformly;
    backends that have no use for them (threading, asyncio) ignore them.
    """
    return get_backend(name).build(seed=seed, run_timeout=run_timeout)
