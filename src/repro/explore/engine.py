"""The schedule-exploration engine: run, classify, and enumerate schedules.

A *schedule* is fully determined by the sequence of decisions the kernel's
scheduler makes (see :meth:`~repro.runtime.simulation.schedulers.ScheduleTrace.choices`:
one index into the sorted runnable set per decision point).  The engine runs
one schedule at a time with a fresh backend and monitor, evaluates the
problem's oracles at every decision point, and classifies the result:

================  ==============================================================
kind              meaning
================  ==============================================================
``ok``            the run finished and the post-run ``verify()`` passed
``oracle:<name>`` a safety/liveness oracle reported a violation mid-run
``missed_signal`` all threads deadlocked *while some waiter's predicate was
                  true* — the automatic-signal property the paper proves
``deadlock``      all threads deadlocked with no eligible waiter
``postcondition`` the run finished but the problem's ``verify()`` failed
``step_limit``    the per-run scheduling-step budget was exhausted
``divergence``    a replayed/prefixed schedule no longer matches the program
``error:<Type>``  any other exception escaping the run
================  ==============================================================

Exhaustive DFS and random swarm exploration are thin loops over this
primitive; both report an :class:`ExplorationReport`.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from functools import cached_property
from time import perf_counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import MonitorError, RelayInvarianceError, WaitTimeout
from repro.core.monitor import MonitorBase
from repro.harness.execution import FrozenMapping, create_executor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems import get_problem
from repro.runtime.simulation import (
    DeadlockError,
    MonitorAbandonedError,
    PrefixScheduler,
    ScheduleDivergenceError,
    ScheduleTrace,
    Scheduler,
    SimulationBackend,
    SimulationError,
    SimulationHangError,
    SimulationLimitError,
)
from repro.runtime.simulation.schedulers import RandomScheduler, SchedulePoint

__all__ = [
    "OracleViolationError",
    "StarvationBudgetWatcher",
    "ExploreTask",
    "TaskRuntime",
    "ScheduleOutcome",
    "ExplorationFailure",
    "ExplorationReport",
    "task_runtime",
    "clear_runtime_cache",
    "run_schedule",
    "run_prefix",
    "explore_dfs",
    "explore_swarm",
]

#: Default per-run scheduling-step budget (a guard against livelock; far
#: above anything the explorer's small workloads need).
DEFAULT_MAX_STEPS = 100_000


class OracleViolationError(Exception):
    """An oracle reported a violation at a scheduling decision point."""

    def __init__(self, oracle_name: str, message: str, kind: str = "safety") -> None:
        super().__init__(f"oracle {oracle_name!r} violated: {message}")
        self.oracle_name = oracle_name
        self.oracle_kind = kind
        self.detail = message


class StarvationBudgetWatcher:
    """Liveness oracle: no thread may stay blocked for too many decisions.

    A thread that remains blocked while the run makes *budget* consecutive
    scheduling decisions is starved: other threads kept entering and leaving
    the monitor without its predicate ever being satisfied and signalled.
    This is meaningful under fair-ish schedulers (the swarm's random
    scheduler); under adversarial DFS prefixes short budgets misfire, which
    is why the budget is opt-in per task.
    """

    def __init__(self, backend: SimulationBackend, budget: int) -> None:
        if budget < 1:
            raise ValueError(f"starvation budget must be >= 1, got {budget}")
        self._backend = backend
        self._budget = budget
        self._streaks: Dict[int, int] = {}

    def observe(self, point: SchedulePoint) -> None:
        blocked = self._backend.blocked_threads()
        blocked_tids = set()
        for tid, name, reason in blocked:
            blocked_tids.add(tid)
            streak = self._streaks.get(tid, 0) + 1
            self._streaks[tid] = streak
            if streak > self._budget:
                raise OracleViolationError(
                    "starvation_budget",
                    f"thread {name} stayed blocked ({reason}) for {streak} "
                    f"consecutive scheduling decisions (budget {self._budget})",
                    kind="liveness",
                )
        for tid in list(self._streaks):
            if tid not in blocked_tids:
                del self._streaks[tid]


@dataclass(frozen=True)
class ExploreTask:
    """One exploration target: a (problem, mechanism, size) configuration.

    Frozen and fully picklable, so swarm probes can be shipped to worker
    processes through the executor registry.
    """

    problem: str
    mechanism: str
    threads: int = 2
    total_ops: int = 4
    seed: int = 0
    eval_engine: str = DEFAULT_ENGINE
    validate: bool = False
    max_steps: Optional[int] = DEFAULT_MAX_STEPS
    #: Liveness budget (see :class:`StarvationBudgetWatcher`); ``None``
    #: defers to the problem's own ``starvation_budget`` declaration.
    starvation_budget: Optional[int] = None
    problem_params: Mapping[str, object] = field(default_factory=dict)
    #: For problems compiled from a declarative scenario registered at
    #: runtime (fuzz-generated or ``--scenario``-loaded): the spec as a
    #: plain dict.  Makes the task self-contained — a worker process that
    #: never saw the parent's registration (``spawn`` start method) or a
    #: fresh replay process re-registers the scenario before resolving the
    #: problem name.
    scenario: Optional[dict] = None
    #: Fault plan injected into every run of this task: a registered plan
    #: name or an embedded plan dictionary (see :mod:`repro.faults.plan`).
    #: Carried in repro files so chaos failures replay with their faults.
    fault_plan: Optional[object] = None
    #: Install the monitor's self-healing deadlock-recovery hook
    #: (:meth:`AutoSynchMonitor.try_self_heal`) on the kernel.
    self_heal: bool = False
    #: Wall-clock safety net per run, in seconds (None: the kernel default).
    #: When it fires, the run is classified ``hang`` with a full autopsy.
    run_timeout: Optional[float] = None
    #: Default ``wait_until`` timeout in scheduling steps (None: waits are
    #: unbounded); an expiry classifies the run as ``timeout``.
    wait_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem_params, FrozenMapping):
            object.__setattr__(
                self, "problem_params", FrozenMapping(self.problem_params)
            )

    def resolve_problem(self):
        """Resolve the task's problem, registering its scenario if carried.

        The common path (the scenario is already registered — every probe
        after a worker's first) is a dict comparison against the registered
        spec's serialized form; the full parse + validate + monitor
        compilation only happens when the spec is new to this process.
        """
        if self.scenario is not None:
            from repro.scenarios import ScenarioSpec, register_scenario, scenario_for

            current = scenario_for(self.problem)
            if current is None or current.to_dict() != self.scenario:
                register_scenario(
                    ScenarioSpec.from_dict(self.scenario), replace=True
                )
        return get_problem(self.problem)

    def to_dict(self) -> dict:
        data = {
            "problem": self.problem,
            "mechanism": self.mechanism,
            "threads": self.threads,
            "total_ops": self.total_ops,
            "seed": self.seed,
            "eval_engine": self.eval_engine,
            "validate": self.validate,
            "max_steps": self.max_steps,
            "starvation_budget": self.starvation_budget,
            "problem_params": dict(self.problem_params),
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan
        if self.self_heal:
            data["self_heal"] = True
        if self.run_timeout is not None:
            data["run_timeout"] = self.run_timeout
        if self.wait_timeout is not None:
            data["wait_timeout"] = self.wait_timeout
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreTask":
        return cls(**data)


@dataclass(frozen=True)
class ScheduleOutcome:
    """The classified result of running one schedule."""

    status: str  # "ok" | "failure"
    kind: str  # see the module docstring's table
    message: str
    trace: ScheduleTrace
    backend_metrics: dict
    #: Monitor counters after the run (quarantines, demotions, self-heal
    #: recoveries, faults injected, ...) — what chaos oracles assert on.
    monitor_stats: dict = field(default_factory=dict)
    #: Fault firings recorded by the injector, in order (empty without one).
    fault_events: Tuple[dict, ...] = ()
    #: Per-stage wall-clock seconds for this run: ``build`` (problem/monitor
    #: construction up to the workload start), ``run`` (workload execution +
    #: verify), ``classify`` (verdict classification and outcome assembly)
    #: and ``oracle`` (per-decision oracle checks, a sub-bucket of ``run``).
    timings: Mapping[str, float] = field(default_factory=dict)

    @cached_property
    def digest(self) -> str:
        """Stable hex digest of the executed schedule.

        Lazy: DFS/DPOR only read digests on failing runs, so clean
        exhaustive sweeps skip the hash entirely; swarm/chaos dedup still
        computes it on first access.  (``cached_property`` writes the
        instance ``__dict__`` directly, so it works on a frozen dataclass.)
        """
        return self.trace.digest()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def steps(self) -> int:
        return len(self.trace)


@dataclass(frozen=True)
class ExplorationFailure:
    """One failing schedule, in replayable form."""

    kind: str
    message: str
    #: Decision sequence (sorted-runnable indices) reproducing the failure
    #: through :class:`~repro.runtime.simulation.schedulers.PrefixScheduler`.
    prefix: Tuple[int, ...]
    trace: ScheduleTrace
    digest: str
    #: The swarm seed that found it (None for DFS failures).
    seed: Optional[int] = None


@dataclass
class ExplorationReport:
    """Aggregate result of one DFS or swarm exploration."""

    task: ExploreTask
    mode: str  # "dfs" | "swarm"
    schedules_visited: int = 0
    #: DFS only: the decision tree was exhausted (no schedule cap was hit),
    #: so the absence of failures is a proof at this problem size — over
    #: every schedule when ``depth_capped`` is 0, otherwise over every
    #: schedule whose forced decisions fit the depth bound.
    complete: bool = False
    failures: List[ExplorationFailure] = field(default_factory=list)
    #: Total failing schedules seen (``failures`` is capped; this is not).
    failures_total: int = 0
    #: Longest recorded trace, in scheduling steps (every hand-off counts,
    #: including forced ones with a single runnable thread).
    max_trace_steps: int = 0
    #: Deepest *decision* reached: the most decision points with >= 2
    #: runnable threads seen in any single run.  This — not the step count —
    #: is what ``max_depth`` bounds during DFS branching.
    max_decision_depth: int = 0
    #: DFS only: how many runs kept making decisions beyond the depth bound
    #: (their deeper alternatives were not branched on).
    depth_capped: int = 0
    #: Mode-specific counters (the DPOR explorer reports its pruning stats
    #: here); empty for plain DFS/swarm.
    stats: Dict[str, int] = field(default_factory=dict)
    #: Per-stage wall-clock seconds summed over every run (see
    #: :attr:`ScheduleOutcome.timings`) — the profile future perf work aims
    #: at.  Excluded from serial-vs-parallel equivalence comparisons.
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def max_depth(self) -> int:
        """Deprecated alias for :attr:`max_trace_steps` (the historical
        field conflated trace steps with decision depth; both are now
        reported distinctly)."""
        return self.max_trace_steps

    @property
    def ok(self) -> bool:
        return self.failures_total == 0

    def failure_kinds(self) -> Dict[str, int]:
        kinds: Dict[str, int] = {}
        for failure in self.failures:
            kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        return kinds

    def summary(self) -> str:
        if not self.complete:
            shape = "sampled"
        elif self.depth_capped:
            shape = f"exhaustive within depth bound; {self.depth_capped} runs capped"
        else:
            shape = "exhaustive"
        lines = [
            f"{self.mode} exploration of {self.task.problem} "
            f"[{self.task.mechanism}] threads={self.task.threads} "
            f"ops={self.task.total_ops}: {self.schedules_visited} schedules "
            f"({shape}), max {self.max_trace_steps} steps / "
            f"{self.max_decision_depth} decisions, "
            f"{self.failures_total} failing"
        ]
        for kind, count in sorted(self.failure_kinds().items()):
            lines.append(f"  {kind}: {count} collected")
        return "\n".join(lines)


class _MissedSignalProbe:
    """Deadlock inspector distinguishing missed signals from true deadlocks.

    Runs at the instant the kernel detects the deadlock — while waiting
    threads still hold their predicate entries — and records whether some
    waiter's predicate was actually *true*: in that case a thread should
    have been signalled and was not, which is exactly the property
    ("automatic monitors never miss a signal") the paper argues.
    """

    def __init__(self, monitor: MonitorBase) -> None:
        self._monitor = monitor
        self.missed: Optional[str] = None

    def __call__(self) -> Optional[str]:
        manager = getattr(self._monitor, "condition_manager", None)
        if manager is None:
            return None
        entry = manager.find_missed_waiter()
        if entry is None:
            return None
        self.missed = entry.canonical
        return (
            f"missed signal: predicate {entry.canonical!r} is true with "
            f"{entry.unsignalled_waiters} un-signalled waiter(s)"
        )

    @property
    def kind(self) -> str:
        return "missed_signal" if self.missed is not None else "deadlock"


def _waiter_autopsy(monitor: MonitorBase) -> Callable[[], Optional[str]]:
    """Hang-inspector closure over *monitor*'s predicate table.

    When the kernel's wall-clock safety net fires, this contributes the
    monitor-level half of the autopsy: which predicates threads are parked
    on, how many waiters each has, and how many signals were promised but
    never consumed.
    """

    def inspect() -> Optional[str]:
        manager = getattr(monitor, "condition_manager", None)
        if manager is None:
            return None
        parts = []
        for canonical in manager.known_predicates():
            entry = manager.entry_for(canonical)
            if entry is None or entry.waiters == 0:
                continue
            parts.append(
                f"{canonical!r}: {entry.waiters} waiter(s), "
                f"{entry.pending_signals} promised signal(s)"
            )
        return "; ".join(parts) if parts else None

    return inspect


class TaskRuntime:
    """Run-invariant artifacts of one :class:`ExploreTask`.

    Exploring a task runs the same configuration thousands of times; the
    resolved problem, the parsed fault plan and — most importantly — a
    recyclable :class:`SimulationBackend` with its warm carrier-thread pool
    are identical across those runs.  A ``TaskRuntime`` holds them so a run
    only pays backend reset + workload execution instead of a cold build.

    Normally obtained through the process-wide seed-normalized cache
    (:func:`task_runtime`); tests construct one directly to compare cached
    against uncached behaviour.
    """

    def __init__(self, task: ExploreTask, problem: object = None) -> None:
        self.task = task
        self.problem = problem if problem is not None else task.resolve_problem()
        self.params = dict(task.problem_params)
        self._fault_plan = None
        if task.fault_plan is not None:
            from repro.faults import create_fault_plan

            self._fault_plan = create_fault_plan(task.fault_plan)
        self._backend: Optional[SimulationBackend] = None

    def build_injector(self):
        """A fresh fault injector from the (pre-parsed) plan, or None."""
        return self._fault_plan.build() if self._fault_plan is not None else None

    def acquire_backend(
        self,
        scheduler: Scheduler,
        seed: int,
        record_footprints: bool,
        footprints_from: int = 0,
    ) -> SimulationBackend:
        """The pooled backend, recycled for this run — or a fresh one.

        Recycling resets the backend to fresh-construction state (see
        :meth:`SimulationBackend.recycle`), so traces and digests compare
        bit-for-bit with an uncached run's.  A backend tainted by a hung
        run refuses to recycle and is silently replaced.
        """
        backend, self._backend = self._backend, None
        if backend is not None:
            try:
                backend.recycle(
                    seed=seed,
                    policy=scheduler,
                    record_footprints=record_footprints,
                    footprints_from=footprints_from,
                )
                return backend
            except SimulationError:
                # Tainted by a hung run: retire what's retirable and fall
                # through to a fresh build.
                backend.shutdown()
        kwargs = {}
        if self.task.run_timeout is not None:
            kwargs["run_timeout"] = self.task.run_timeout
        return SimulationBackend(
            seed=seed,
            policy=scheduler,
            max_steps=self.task.max_steps,
            record_trace=True,
            record_footprints=record_footprints,
            footprints_from=footprints_from,
            **kwargs,
        )

    def release_backend(self, backend: SimulationBackend) -> None:
        """Park *backend* for the next run of this task."""
        self._backend = backend

    def close(self) -> None:
        """Retire the parked backend's carrier threads immediately.

        Without this a discarded runtime's carriers linger for the kernel's
        idle timeout; a workload that churns through runtimes (cache
        eviction, cold benchmark legs) would pile up idle OS threads.
        """
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.shutdown()


#: Process-wide TaskRuntime cache, keyed by the task's serialized form with
#: the seed normalized out (swarm/chaos probes differ only by seed and share
#: one runtime; the per-run seed is applied at backend recycle time).  Small
#: LRU: exploration focuses on a handful of tasks at a time.
_RUNTIME_CACHE: "OrderedDict[str, TaskRuntime]" = OrderedDict()
_RUNTIME_CACHE_LIMIT = 8


def _runtime_key(task: ExploreTask) -> str:
    data = task.to_dict()
    data["seed"] = 0
    return json.dumps(data, sort_keys=True, default=str)


def task_runtime(task: ExploreTask) -> TaskRuntime:
    """The cached :class:`TaskRuntime` for *task* (building it on a miss).

    Re-resolves the problem on every call — a registry lookup, plus a spec
    comparison for scenario tasks — so a scenario re-registered under the
    same name since the runtime was cached invalidates it instead of
    serving a stale problem object.
    """
    key = _runtime_key(task)
    runtime = _RUNTIME_CACHE.get(key)
    current = task.resolve_problem()
    if runtime is None or runtime.problem is not current:
        if runtime is not None:
            runtime.close()  # stale scenario: retire its carriers now
        runtime = TaskRuntime(task, problem=current)
        _RUNTIME_CACHE[key] = runtime
        while len(_RUNTIME_CACHE) > _RUNTIME_CACHE_LIMIT:
            _RUNTIME_CACHE.popitem(last=False)[1].close()
    _RUNTIME_CACHE.move_to_end(key)
    return runtime


def clear_runtime_cache() -> None:
    """Drop every cached :class:`TaskRuntime` (benchmarking/test hook),
    retiring their carrier threads."""
    while _RUNTIME_CACHE:
        _RUNTIME_CACHE.popitem()[1].close()


def run_schedule(
    task: ExploreTask,
    scheduler: Scheduler,
    instrument: Optional[Callable[[SimulationBackend, "WorkloadSpec"], object]] = None,
    record_footprints: bool = False,
    runtime: Optional[TaskRuntime] = None,
    verified_depth: int = 0,
    footprints_from: int = 0,
) -> ScheduleOutcome:
    """Run one schedule of *task* under *scheduler* and classify the result.

    Builds a fresh monitor on a recycled backend (schedules are only
    comparable when nothing leaks between runs; recycling is
    bit-equivalent to a fresh backend), records the decision trace, and
    checks the problem's oracles at every decision point.

    ``instrument``, when given, is called with the fresh backend and built
    workload before the run; the object it returns may expose ``observe(point)``
    (chained after the oracles at every decision) and ``finish()`` (called
    once after the run, however it ended).  The DPOR explorer uses this to
    snapshot abstract configurations at every decision point.

    ``record_footprints`` makes the kernel record per-decision read/write/
    lock/condition footprints and attaches them to the returned trace
    (``outcome.trace.footprints``) for independence analysis.

    ``runtime`` supplies the task's cached build artifacts; None uses the
    process-wide cache (:func:`task_runtime`).

    ``verified_depth`` marks the first *verified_depth* decisions as a
    shared prefix whose states the parent run already oracle-checked:
    stateless oracle checks are skipped inside it (the fast
    replay-to-depth path).  Callers must only pass depths whose prefix
    decisions come from a parent run that checked those very states.

    ``footprints_from`` likewise suppresses footprint recording for the
    first N slices (their entries come out as None — the parent run
    recorded them); only meaningful with ``record_footprints=True``.
    """
    t_start = perf_counter()
    if runtime is None:
        runtime = task_runtime(task)
    problem = runtime.problem
    backend = runtime.acquire_backend(
        scheduler, task.seed, record_footprints, footprints_from=footprints_from
    )
    spec = problem.build(
        task.mechanism,
        backend,
        threads=task.threads,
        total_ops=task.total_ops,
        seed=task.seed,
        validate=task.validate,
        eval_engine=task.eval_engine,
        **runtime.params,
    )
    if task.wait_timeout is not None:
        spec.monitor._wait_timeout = task.wait_timeout
    injector = runtime.build_injector()
    if injector is not None:
        injector.attach(backend, spec.monitor)
    if task.self_heal:
        heal = getattr(spec.monitor, "try_self_heal", None)
        if heal is not None:
            backend.set_deadlock_recovery(heal)
    backend.set_hang_inspector(_waiter_autopsy(spec.monitor))
    oracles = problem.oracles(spec.monitor)
    budget = task.starvation_budget
    if budget is None:
        budget = problem.starvation_budget
    # `is not None` (not truthiness): a budget of 0 must hit the watcher's
    # >= 1 validation rather than silently disable liveness checking.
    watcher = (
        StarvationBudgetWatcher(backend, budget) if budget is not None else None
    )
    if watcher is not None:
        # Starvation streak counters cross the prefix boundary; the watcher
        # must observe every decision, so prefix sharing cannot skip it.
        verified_depth = 0
    probe_observe = None
    probe_finish = None
    if instrument is not None:
        instrument_probe = instrument(backend, spec)
        probe_observe = getattr(instrument_probe, "observe", None)
        probe_finish = getattr(instrument_probe, "finish", None)

    oracle_seconds = 0.0

    def observer(point: SchedulePoint) -> None:
        nonlocal oracle_seconds
        if point.step >= verified_depth:
            t_oracle = perf_counter()
            for oracle in oracles:
                message = oracle.check()
                if message is not None:
                    raise OracleViolationError(oracle.name, message, kind=oracle.kind)
            if watcher is not None:
                watcher.observe(point)
            oracle_seconds += perf_counter() - t_oracle
        if probe_observe is not None:
            probe_observe(point)

    backend.set_observer(observer)
    probe = _MissedSignalProbe(spec.monitor)
    backend.set_deadlock_inspector(probe)

    t_built = perf_counter()
    status, kind, message = "ok", "ok", ""
    try:
        backend.run(spec.targets, spec.names)
        spec.verify()
    except OracleViolationError as exc:
        status, kind, message = "failure", f"oracle:{exc.oracle_name}", str(exc)
    except DeadlockError as exc:
        status, kind, message = "failure", probe.kind, str(exc)
    except RelayInvarianceError as exc:
        # Validate mode caught a relay step losing a signal mid-run.
        status, kind, message = "failure", "missed_signal", str(exc)
    except WaitTimeout as exc:
        # Before MonitorError: WaitTimeout is a MonitorError, but an expired
        # timed wait is a bounded, classified verdict — not a generic error.
        status, kind, message = "failure", "timeout", str(exc)
    except MonitorAbandonedError as exc:
        status, kind, message = "failure", "abandonment", str(exc)
    except MonitorError as exc:
        status, kind, message = "failure", f"error:{type(exc).__name__}", str(exc)
    except SimulationHangError as exc:
        # The wall-clock safety net fired; the message carries the autopsy.
        status, kind, message = "failure", "hang", str(exc)
    except SimulationLimitError as exc:
        status, kind, message = "failure", "step_limit", str(exc)
    except ScheduleDivergenceError as exc:
        status, kind, message = "failure", "divergence", str(exc)
    except AssertionError as exc:
        status, kind, message = "failure", "postcondition", str(exc)
    except Exception as exc:
        status, kind, message = "failure", f"error:{type(exc).__name__}", str(exc)
    t_ran = perf_counter()
    if probe_finish is not None:
        probe_finish()
    trace = backend.schedule_trace
    if record_footprints:
        trace.footprints = backend.schedule_footprints
    stats = getattr(spec.monitor, "stats", None)
    outcome = ScheduleOutcome(
        status=status,
        kind=kind,
        message=message,
        trace=trace,
        backend_metrics=backend.metrics.snapshot(),
        monitor_stats=stats.snapshot() if stats is not None else {},
        fault_events=tuple(injector.events) if injector is not None else (),
        timings={
            "build": t_built - t_start,
            "run": t_ran - t_built,
            "classify": perf_counter() - t_ran,
            "oracle": oracle_seconds,
        },
    )
    runtime.release_backend(backend)
    return outcome


def run_prefix(
    task: ExploreTask,
    prefix: Sequence[int],
    instrument: Optional[Callable[[SimulationBackend, "WorkloadSpec"], object]] = None,
    record_footprints: bool = False,
    runtime: Optional[TaskRuntime] = None,
    verified_depth: int = 0,
    footprints_from: int = 0,
) -> ScheduleOutcome:
    """Run the schedule identified by a decision *prefix* (DFS coordinates)."""
    return run_schedule(
        task,
        PrefixScheduler(prefix),
        instrument=instrument,
        record_footprints=record_footprints,
        runtime=runtime,
        verified_depth=verified_depth,
        footprints_from=footprints_from,
    )


#: Keep at most this many failures in a report by default (every failing
#: schedule is still *counted*; this caps memory, not detection).
DEFAULT_FAILURE_LIMIT = 25


def _merge_timings(report: ExplorationReport, outcome: ScheduleOutcome) -> None:
    timings = outcome.timings
    if timings:
        aggregate = report.timings
        for stage, seconds in timings.items():
            aggregate[stage] = aggregate.get(stage, 0.0) + seconds


def _pool_worker(payload: tuple) -> ScheduleOutcome:
    """Top-level (hence picklable) frontier worker entry point.

    Runs one frontier entry exactly as the serial reduction loop would;
    worker processes warm their own TaskRuntime cache on first use.
    """
    task_data, prefix, verified_depth, record_footprints = payload
    return run_prefix(
        ExploreTask.from_dict(task_data),
        prefix,
        record_footprints=record_footprints,
        verified_depth=verified_depth,
    )


class _OutcomePool:
    """Speculative outcome prefetcher for the work-sharing parallel frontier.

    The reduction loop (DFS child generation, DPOR sleep sets and cache
    skips) stays strictly serial, which makes the report bit-identical to a
    serial run by construction; what parallelizes is the pure function
    ``outcome = f(task, prefix, verified_depth)``.  Each ``refill`` takes a
    wave of not-yet-computed entries from the top of the frontier stack —
    the entries the serial loop pops next — and computes their outcomes
    through the executor registry; ``fetch`` hands a precomputed outcome to
    the serial loop at pop time (falling back to an inline run on a miss).
    Speculative results for entries the loop later skips are simply
    discarded, so speculation never changes the search.
    """

    def __init__(
        self,
        task: ExploreTask,
        executor: str,
        jobs: Optional[int],
        worker: Callable = None,
        payload_fn: Callable = None,
    ) -> None:
        task_data = task.to_dict()
        self._worker = worker if worker is not None else _pool_worker
        self._payload_fn = (
            payload_fn
            if payload_fn is not None
            else lambda entry: (task_data, tuple(entry[0]), entry[1], False)
        )
        self._executor = create_executor(executor, jobs=jobs)
        self._wave = max(2 * (jobs or 2), 4)
        self._results: Dict[Tuple[int, ...], object] = {}

    def fetch(self, prefix: Tuple[int, ...]) -> Optional[object]:
        return self._results.pop(prefix, None)

    def refill(self, frontier: Sequence) -> None:
        """Prefetch results for the top-of-stack frontier entries.

        Frontier entries lead with the prefix tuple (``entry[0]``); the
        payload function turns a full entry into the worker's picklable
        argument.  The stack is popped from the end, so the wave is taken
        from there.
        """
        batch = []
        for entry in reversed(frontier):
            if entry[0] not in self._results:
                batch.append(entry)
                if len(batch) >= self._wave:
                    break
        if not batch:
            return
        payloads = [self._payload_fn(entry) for entry in batch]
        results = self._executor.run_tasks(self._worker, payloads)
        for entry, result in zip(batch, results):
            if result is not None:
                self._results[tuple(entry[0])] = result


def _make_pool(
    task: ExploreTask,
    executor: str,
    jobs: Optional[int],
    worker: Callable = None,
    payload_fn: Callable = None,
) -> Optional[_OutcomePool]:
    """An :class:`_OutcomePool` when parallelism was requested, else None
    (the serial loop then runs with zero pool overhead)."""
    if (jobs is None or jobs <= 1) and executor in (None, "serial"):
        return None
    return _OutcomePool(task, executor, jobs, worker=worker, payload_fn=payload_fn)


def explore_dfs(
    task: ExploreTask,
    max_schedules: Optional[int] = None,
    max_depth: Optional[int] = None,
    failure_limit: int = DEFAULT_FAILURE_LIMIT,
    stop_on_failure: bool = False,
    progress: Optional[Callable[[int, ScheduleOutcome], None]] = None,
    executor: str = "serial",
    jobs: Optional[int] = None,
) -> ExplorationReport:
    """Bounded exhaustive DFS over the scheduling-decision tree of *task*.

    Every run's trace exposes, at each decision point, how many runnable
    threads there were; each untried alternative becomes a new prefix to
    explore.  With ``max_schedules=None`` the search runs until the tree is
    exhausted and the report's ``complete`` flag is set — at which point a
    clean report is a proof over *every* schedule of this configuration
    (every schedule within the depth bound when one was needed).

    ``max_depth`` bounds the decision depth at which new branches are taken.
    It exists because some policies have *infinite* schedule trees: under
    the broadcast baseline, two waiters with false predicates can wake each
    other forever, so an adversarial schedule can always be extended.  Runs
    still continue past the bound (with the default continuation) so their
    verdicts are real; only their deeper alternatives are pruned, and
    ``report.depth_capped`` counts how often that happened.

    ``executor``/``jobs`` shard frontier runs through the executor registry
    (see :class:`_OutcomePool`); the report stays bit-identical to a serial
    run because every reduction decision is made by this loop, in this
    order, whatever computed the outcomes.
    """
    report = ExplorationReport(task=task, mode="dfs")
    runtime = task_runtime(task)
    # Frontier entries are (prefix, verified_depth): the states reached by
    # the first verified_depth decisions were already oracle-checked by the
    # parent run that enqueued the entry, so the child's replay of that
    # prefix skips the stateless oracle checks.
    pending: List[Tuple[Tuple[int, ...], int]] = [((), 0)]
    # Two different prefixes can identify the same *executed* schedule (a
    # shorter prefix whose forced continuation happens to make the same
    # choices), and sibling branches at different depths can enqueue one
    # prefix twice; keying the frontier by the prefix tuple keeps each
    # schedule to a single run.
    seen_prefixes = {()}
    pool = _make_pool(task, executor, jobs)
    while pending:
        if max_schedules is not None and report.schedules_visited >= max_schedules:
            return report
        prefix, verified_depth = pending.pop()
        outcome = pool.fetch(prefix) if pool is not None else None
        if outcome is None:
            outcome = run_prefix(
                task, prefix, runtime=runtime, verified_depth=verified_depth
            )
        report.schedules_visited += 1
        report.max_trace_steps = max(report.max_trace_steps, outcome.steps)
        report.max_decision_depth = max(
            report.max_decision_depth,
            sum(1 for point in outcome.trace.points if point.branching > 1),
        )
        _merge_timings(report, outcome)
        if progress is not None:
            progress(report.schedules_visited, outcome)
        choices = outcome.trace.choices()
        # Branch: alternatives not taken at every decision at or beyond the
        # prefix (decisions inside the prefix were enumerated by its parent).
        # ``max_depth`` is an inclusive decision index: alternatives at
        # exactly that depth are still branched (hence the ``+ 1``).
        branch_until = len(choices)
        if max_depth is not None and branch_until > max_depth + 1:
            branch_until = max_depth + 1
            report.depth_capped += 1
        # A child shares this run's states up to its own prefix length; all
        # of them passed this run's oracle checks except, on a failing run,
        # the final recorded state (the one a mid-run oracle fired on).
        child_cap = len(choices) if outcome.ok else max(len(choices) - 1, 0)
        for depth in range(len(prefix), branch_until):
            for alt in range(1, outcome.trace[depth].branching):
                child = choices[:depth] + (alt,)
                if child not in seen_prefixes:
                    seen_prefixes.add(child)
                    pending.append((child, min(len(child), child_cap)))
        if not outcome.ok:
            report.failures_total += 1
            if len(report.failures) < failure_limit:
                report.failures.append(
                    ExplorationFailure(
                        kind=outcome.kind,
                        message=outcome.message,
                        prefix=choices,
                        trace=outcome.trace,
                        digest=outcome.digest,
                    )
                )
            if stop_on_failure:
                return report
        if pool is not None:
            pool.refill(pending)
    report.complete = True
    return report


@dataclass(frozen=True)
class _SwarmProbe:
    """One random schedule to try: picklable unit of swarm work."""

    task: ExploreTask
    seed: int


def _run_swarm_probe(probe: _SwarmProbe) -> ScheduleOutcome:
    """Top-level (hence picklable) swarm worker entry point."""
    task = replace(probe.task, seed=probe.seed)
    return run_schedule(task, RandomScheduler(probe.seed))


def explore_swarm(
    task: ExploreTask,
    schedules: int,
    base_seed: int = 0,
    executor: str = "serial",
    jobs: Optional[int] = None,
    failure_limit: int = DEFAULT_FAILURE_LIMIT,
    progress: Optional[Callable[[int, ScheduleOutcome], None]] = None,
) -> ExplorationReport:
    """Seeded random swarm exploration, sharded through the executor registry.

    Runs *schedules* independent probes with seeds ``base_seed ..
    base_seed + schedules - 1``; each probe reseeds both the random
    scheduler and the workload, so distinct seeds genuinely explore distinct
    schedules.  ``executor``/``jobs`` resolve through
    :mod:`repro.harness.execution` exactly like experiment sweeps
    (``"process"`` shards probes across worker processes).
    """
    if schedules < 1:
        raise ValueError(f"swarm exploration needs >= 1 schedule, got {schedules}")
    report = ExplorationReport(task=task, mode="swarm")
    probes = [_SwarmProbe(task, base_seed + offset) for offset in range(schedules)]
    seen_digests: set = set()

    def on_probe(index: int, probe: _SwarmProbe, outcome: ScheduleOutcome) -> None:
        report.schedules_visited += 1
        report.max_trace_steps = max(report.max_trace_steps, outcome.steps)
        report.max_decision_depth = max(
            report.max_decision_depth,
            sum(1 for point in outcome.trace.points if point.branching > 1),
        )
        _merge_timings(report, outcome)
        if progress is not None:
            progress(report.schedules_visited, outcome)
        if outcome.ok:
            return
        report.failures_total += 1
        # The same failing schedule can be found by many seeds; keep each
        # distinct schedule once.
        if outcome.digest in seen_digests or len(report.failures) >= failure_limit:
            return
        seen_digests.add(outcome.digest)
        report.failures.append(
            ExplorationFailure(
                kind=outcome.kind,
                message=outcome.message,
                prefix=outcome.trace.choices(),
                trace=outcome.trace,
                digest=outcome.digest,
                seed=probe.seed,
            )
        )

    create_executor(executor, jobs=jobs).run_tasks(
        _run_swarm_probe, probes, progress=on_probe
    )
    return report
