"""JSON repro files: persist a failing schedule, replay it bit-identically.

A repro file is self-contained: the full :class:`ExploreTask` (problem,
mechanism, sizes, seed, params), the failure classification, the shrunk
decision prefix, and the complete recorded
:class:`~repro.runtime.simulation.schedulers.ScheduleTrace` with its digest.
Replay re-drives the trace through the ``replay`` scheduler — which verifies
the runnable set at every decision — and then checks both the failure kind
and the re-recorded trace digest, so a successful replay means the original
run was reproduced decision-for-decision, not merely "it failed again".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.explore.engine import (
    ExplorationFailure,
    ExploreTask,
    ScheduleOutcome,
    run_schedule,
)
from repro.runtime.simulation import ReplayScheduler, ScheduleTrace

__all__ = [
    "REPRO_FORMAT",
    "ReplayResult",
    "repro_payload",
    "write_repro",
    "load_repro",
    "replay_repro",
]

REPRO_FORMAT = "autosynch-explore-repro/1"


def repro_payload(
    task: ExploreTask,
    failure: ExplorationFailure,
    mode: str,
    shrunk_from: Optional[int] = None,
) -> dict:
    """Build the JSON-serialisable payload for one failing schedule.

    When the task's problem was compiled from a declarative scenario spec
    (registered at runtime — e.g. a fuzz-generated or ``--scenario``-loaded
    workload), the spec itself is embedded, so the repro file stays
    self-contained: replay re-registers the scenario in a fresh process
    before resolving the problem name.
    """
    from repro.scenarios import scenario_for

    payload = {
        "format": REPRO_FORMAT,
        "mode": mode,
        # Provenance: found by reduced (DPOR) exploration.  Replay is
        # unaffected — the full trace is recorded and re-driven either way,
        # so a reduced-exploration repro replays bit-identically — but the
        # flag tells a reader that the *absence* of sibling repros may be a
        # reduction artefact rather than a clean bill of health.
        "reduced": mode.endswith("+dpor"),
        "task": task.to_dict(),
        "failure": {
            "kind": failure.kind,
            "message": failure.message,
            "seed": failure.seed,
        },
        "prefix": list(failure.prefix),
        "shrunk_from": shrunk_from,
        "trace": failure.trace.to_dict(),
        "trace_digest": failure.digest,
    }
    spec = scenario_for(task.problem)
    if spec is not None:
        payload["scenario"] = spec.to_dict()
    return payload


def write_repro(path: Union[str, Path], payload: dict) -> Path:
    """Write a repro payload to *path* (parent directories created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> dict:
    """Load and structurally validate a repro file."""
    payload = json.loads(Path(path).read_text())
    fmt = payload.get("format")
    if fmt != REPRO_FORMAT:
        raise ValueError(
            f"{path}: unsupported repro format {fmt!r} (expected {REPRO_FORMAT!r})"
        )
    for key in ("task", "failure", "trace", "trace_digest"):
        if key not in payload:
            raise ValueError(f"{path}: repro file is missing the {key!r} field")
    return payload


@dataclass(frozen=True)
class ReplayResult:
    """The verdict of replaying a repro file."""

    outcome: ScheduleOutcome
    expected_kind: str
    expected_digest: str

    @property
    def kind_matches(self) -> bool:
        return self.outcome.kind == self.expected_kind

    @property
    def digest_matches(self) -> bool:
        return self.outcome.digest == self.expected_digest

    @property
    def reproduced(self) -> bool:
        """Bit-identical reproduction: same schedule, same failure."""
        return self.kind_matches and self.digest_matches

    def describe(self) -> str:
        if self.reproduced:
            return (
                f"reproduced: {self.outcome.kind} after "
                f"{self.outcome.steps} decisions (digest "
                f"{self.outcome.digest[:12]} matches)"
            )
        parts = []
        if not self.kind_matches:
            parts.append(
                f"kind {self.outcome.kind!r} != expected {self.expected_kind!r}"
            )
        if not self.digest_matches:
            parts.append("trace digest differs")
        return "NOT reproduced: " + "; ".join(parts)


def replay_repro(source: Union[str, Path, dict]) -> ReplayResult:
    """Re-execute a repro file's schedule and verify it reproduces.

    *source* is a path or an already-loaded payload.  The recorded trace is
    re-driven through the ``replay`` scheduler; divergence surfaces as a
    ``divergence`` outcome (and therefore a failed reproduction) rather than
    an exception.
    """
    payload = source if isinstance(source, dict) else load_repro(source)
    if "scenario" in payload:
        # The failing problem was a runtime-registered scenario: rebuild it
        # from the embedded spec so the task's problem name resolves.
        from repro.scenarios import ScenarioSpec, register_scenario

        register_scenario(
            ScenarioSpec.from_dict(payload["scenario"]), replace=True
        )
    task = ExploreTask.from_dict(payload["task"])
    trace = ScheduleTrace.from_dict(payload["trace"])
    outcome = run_schedule(task, ReplayScheduler(trace))
    return ReplayResult(
        outcome=outcome,
        expected_kind=payload["failure"]["kind"],
        expected_digest=payload["trace_digest"],
    )
