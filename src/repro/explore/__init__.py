"""Systematic schedule exploration for the simulation backend.

The deterministic simulation kernel makes every run a pure function of its
scheduling decisions, which turns correctness checking into a search problem:
instead of hoping a handful of seeds happens to hit a buggy interleaving,
this package *manufactures* interleavings systematically and checks
per-problem safety/liveness oracles at every scheduling decision point.

Two exploration modes, both built on the scheduler registry of
:mod:`repro.runtime.simulation.schedulers`:

* **DFS** (:func:`explore_dfs`) — bounded exhaustive depth-first search over
  the tree of scheduling decisions.  Feasible for small thread/op counts and
  *complete*: if no schedule violates an oracle, none exists at that size.
  :func:`explore_dpor` is the same search under dynamic partial-order
  reduction (:mod:`repro.explore.dpor`): the identical violation set,
  reached in exponentially fewer runs.
* **Swarm** (:func:`explore_swarm`) — many independent seeded-random
  schedules for configurations too large to exhaust, sharded across worker
  processes through the existing harness executor registry.

Fuzz mode (:mod:`repro.explore.fuzz`, ``python -m repro.explore --mode
fuzz``) feeds the swarm with *generated* workloads: seeded
valid-by-construction scenario specs from :mod:`repro.scenarios.generate`,
each compiled and registered on the fly with its invariants enforced as
oracles, so exploration sweeps policy × scheduler × scenario instead of
only the paper's seven problems.

Chaos mode (:mod:`repro.explore.chaos`, ``python -m repro.explore --mode
chaos``) sweeps :mod:`repro.faults` fault plans across problems and
signalling policies and holds every run to the recovery-or-classified
contract: an injected fault must either be absorbed/self-healed (the run
completes, with degradation counters as evidence) or end in a bounded
verdict the plan declares acceptable — never a silent hang.

Every failing schedule is shrunk to a near-minimal decision prefix
(:mod:`repro.explore.shrink`) and can be written to a JSON repro file that
``python -m repro.explore --replay FILE`` re-executes bit-identically
(:mod:`repro.explore.repro_files`).
"""

from repro.explore.chaos import (
    ChaosFailure,
    ChaosReport,
    chaos_sweep,
    kind_is_acceptable,
)
from repro.explore.dpor import DPOR_MODE, explore_dpor
from repro.explore.engine import (
    ExplorationFailure,
    ExplorationReport,
    ExploreTask,
    OracleViolationError,
    ScheduleOutcome,
    StarvationBudgetWatcher,
    explore_dfs,
    explore_swarm,
    run_schedule,
)
from repro.explore.fuzz import FuzzReport, ScenarioFuzzResult, fuzz_scenarios
from repro.explore.repro_files import (
    REPRO_FORMAT,
    load_repro,
    replay_repro,
    repro_payload,
    write_repro,
)
from repro.explore.shrink import ShrinkResult, shrink_failure

__all__ = [
    "ChaosFailure",
    "ChaosReport",
    "DPOR_MODE",
    "ExplorationFailure",
    "ExplorationReport",
    "ExploreTask",
    "FuzzReport",
    "OracleViolationError",
    "REPRO_FORMAT",
    "ScenarioFuzzResult",
    "ScheduleOutcome",
    "ShrinkResult",
    "StarvationBudgetWatcher",
    "chaos_sweep",
    "explore_dfs",
    "explore_dpor",
    "explore_swarm",
    "fuzz_scenarios",
    "kind_is_acceptable",
    "load_repro",
    "replay_repro",
    "repro_payload",
    "run_schedule",
    "shrink_failure",
    "write_repro",
]
