"""Greedy minimisation of failing schedules.

A failure found by DFS or swarm exploration comes with the full decision
sequence of the failing run.  Most of those decisions are incidental: the
default continuation (index 0 — smallest thread id) would have produced the
same failure.  The shrinker exploits exactly that structure:

* a trailing run of zeros *is* the default continuation, so it can be
  dropped outright (same schedule, shorter prefix);
* any single decision can be tried at the default (0) or at a smaller
  alternative, and the candidate kept whenever the re-run still fails with
  the same *identity* — the same kind, and for kinds whose name does not
  already pin the culprit (``postcondition``, ``error:<Type>``) the same
  failure message modulo numbers.  Kind alone is not enough: a workload
  with several assertions can be over-shrunk onto a *different* broken
  invariant, silently swapping the bug the repro documents.

The loop is greedy to a fixpoint, so the result is near-minimal (no single
decision can be defaulted or lowered without losing the failure) rather than
globally minimal — the classic delta-debugging trade-off, bought at a
bounded number of re-runs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.explore.engine import ExploreTask, ScheduleOutcome, run_prefix

__all__ = ["ShrinkResult", "shrink_failure", "failure_identity"]

#: Upper bound on shrink re-runs (each re-run is a full, if tiny, simulation).
DEFAULT_SHRINK_BUDGET = 2_000


@dataclass(frozen=True)
class ShrinkResult:
    """A minimised failing schedule."""

    #: The shrunk decision prefix (still failing with the original kind).
    prefix: Tuple[int, ...]
    #: The outcome of running the shrunk prefix (its trace is the repro).
    outcome: ScheduleOutcome
    #: Length of the prefix the shrink started from.
    original_length: int
    #: Non-default decisions before/after (the real size of the repro).
    original_forced: int
    forced: int
    #: How many candidate re-runs the shrink performed.
    attempts: int

    def describe(self) -> str:
        return (
            f"shrank {self.original_length} decisions "
            f"({self.original_forced} forced) to {len(self.prefix)} "
            f"({self.forced} forced) in {self.attempts} re-runs"
        )


def _trim(prefix: Tuple[int, ...]) -> Tuple[int, ...]:
    """Drop trailing zeros: they equal the default continuation."""
    end = len(prefix)
    while end and prefix[end - 1] == 0:
        end -= 1
    return prefix[:end]


def _forced(prefix: Tuple[int, ...]) -> int:
    return sum(1 for choice in prefix if choice != 0)


def failure_identity(kind: str, message: Optional[str]) -> Tuple[str, Optional[str]]:
    """What must stay fixed while shrinking: which failure *is* this?

    Oracle violations and classified verdicts already name the culprit in
    the kind itself (``oracle:<name>``, ``missed_signal``, ``deadlock``, ...),
    so the kind suffices.  ``postcondition`` and ``error:<Type>`` do not —
    one workload can fail several distinct assertions, all classified
    ``postcondition`` — so the message joins the identity, with digit runs
    masked (counters legitimately differ between the original failure and a
    shorter schedule exhibiting the same broken invariant).
    """
    if message is not None and (kind == "postcondition" or kind.startswith("error:")):
        return kind, re.sub(r"\d+", "N", message)
    return kind, None


def shrink_failure(
    task: ExploreTask,
    prefix: Tuple[int, ...],
    kind: str,
    budget: int = DEFAULT_SHRINK_BUDGET,
    message: Optional[str] = None,
) -> ShrinkResult:
    """Shrink *prefix* while the re-run keeps failing with *kind*.

    *message* is the original failure's message; when given, candidates must
    preserve the full :func:`failure_identity`, not merely the kind — see
    the module docstring for why kind alone over-shrinks.

    *prefix* must actually fail (the function re-runs it first and raises
    ``ValueError`` if it does not — shrinking a non-failure is always a bug
    in the caller).
    """
    attempts = 0
    identity = failure_identity(kind, message)

    def attempt(candidate: Tuple[int, ...]) -> Optional[ScheduleOutcome]:
        nonlocal attempts
        attempts += 1
        outcome = run_prefix(task, candidate)
        if outcome.kind != kind:
            return None
        # Only constrain the message when the caller supplied one (legacy
        # callers shrink on kind alone).
        if identity[1] is not None:
            if failure_identity(outcome.kind, outcome.message) != identity:
                return None
        return outcome

    original = tuple(int(choice) for choice in prefix)
    current = _trim(original)
    best = attempt(current)
    if best is None:
        raise ValueError(
            f"cannot shrink: prefix {original!r} does not fail with kind {kind!r}"
        )

    improved = True
    while improved and attempts < budget:
        improved = False
        # Right-to-left: late decisions are the likeliest to be incidental
        # (they happen after the failure's cause is already committed).
        for index in reversed(range(len(current))):
            if attempts >= budget:
                break
            if current[index] == 0:
                continue
            # Try the default first (removes the decision entirely), then a
            # one-smaller alternative (keeps a forced decision but simpler);
            # for a decision of 1 those coincide, so try it only once.
            candidates = (0,) if current[index] == 1 else (0, current[index] - 1)
            for value in candidates:
                candidate = _trim(
                    current[:index] + (value,) + current[index + 1 :]
                )
                outcome = attempt(candidate)
                if outcome is not None:
                    current, best = candidate, outcome
                    improved = True
                    break
            if improved:
                break

    return ShrinkResult(
        prefix=current,
        outcome=best,
        original_length=len(original),
        original_forced=_forced(original),
        forced=_forced(current),
        attempts=attempts,
    )
