"""Command-line entry point for schedule exploration.

Examples
--------
Exhaustively explore every schedule of a tiny bounded buffer::

    python -m repro.explore --problem bounded_buffer --mechanism autosynch \
        --mode dfs --threads 2 --ops 4 --param capacity=1

Swarm-explore a larger configuration across 4 worker processes::

    python -m repro.explore --problem h2o --mechanism autosynch --mode swarm \
        --threads 4 --ops 12 --schedules 500 --executor process --jobs 4

Replay a failure repro file bit-identically::

    python -m repro.explore --replay repros/bounded_buffer_....json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.explore.engine import (
    DEFAULT_MAX_STEPS,
    ExplorationFailure,
    ExplorationReport,
    ExploreTask,
    explore_dfs,
    explore_swarm,
)
from repro.explore.repro_files import replay_repro, repro_payload, write_repro
from repro.explore.shrink import shrink_failure
from repro.harness.execution import available_executors
from repro.problems import PROBLEMS, get_problem
from repro.runtime.simulation import available_schedulers, describe_scheduler

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosynch-explore",
        description=(
            "Systematically explore simulation schedules, check per-problem "
            "oracles at every scheduling decision, shrink failures and write "
            "replayable JSON repro files."
        ),
    )
    parser.add_argument(
        "--problem",
        choices=sorted(PROBLEMS),
        help="which synchronization problem to explore",
    )
    parser.add_argument(
        "--mechanism",
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "mechanism(s) to explore: 'explicit', any registered signalling "
            "policy, or 'all' for every mechanism the problem supports"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("dfs", "swarm"),
        default="dfs",
        help="dfs = bounded exhaustive search, swarm = seeded random sampling",
    )
    parser.add_argument("--threads", type=int, default=2,
                        help="the problem's x-axis value (default 2)")
    parser.add_argument("--ops", type=int, default=4,
                        help="total operation budget (default 4; keep tiny for dfs)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the workload (and swarm probes)")
    parser.add_argument(
        "--schedules",
        type=int,
        default=None,
        metavar="N",
        help=(
            "dfs: max schedules to visit (default: unlimited, run to "
            "exhaustion); swarm: number of random schedules (default 200)"
        ),
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "dfs: only branch on decisions shallower than N (needed for "
            "policies like 'baseline' whose schedule trees are infinite)"
        ),
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_MAX_STEPS,
        metavar="N",
        help="per-run scheduling-step budget (default %(default)s)",
    )
    parser.add_argument(
        "--executor",
        choices=available_executors(),
        default="serial",
        help="swarm only: how probes are executed ('process' shards over a pool)",
    )
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="swarm only: worker count for parallel executors")
    parser.add_argument(
        "--starvation-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "liveness oracle: fail if a thread stays blocked for N consecutive "
            "scheduling decisions (recommended for swarm mode only; DFS "
            "schedules are deliberately unfair)"
        ),
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also run the monitor's relay-invariance checking during each run",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="problem parameter (repeatable), e.g. --param capacity=1",
    )
    parser.add_argument(
        "--out",
        default="repros",
        metavar="DIR",
        help="directory for failure repro files (default: %(default)s)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="write raw failing schedules without greedy minimisation",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-execute a repro file bit-identically and report the verdict",
    )
    parser.add_argument(
        "--list-schedulers",
        action="store_true",
        help="list the scheduler registry contents and exit",
    )
    return parser


def _parse_params(raw: Optional[Sequence[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in raw or ():
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _resolve_mechanisms(problem_name: str, raw: Optional[str]) -> List[str]:
    problem = get_problem(problem_name)
    supported = problem.supported_mechanisms()
    if raw is None or raw == "all":
        return list(supported)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in supported]
    if unknown:
        raise SystemExit(
            f"unknown mechanism(s) {unknown} for problem {problem_name!r}; "
            f"supported: {', '.join(supported)}"
        )
    return names


def _write_failures(
    report: ExplorationReport,
    out_dir: Path,
    shrink: bool,
) -> List[Path]:
    written: List[Path] = []
    for failure in report.failures:
        # Swarm probes re-seed the workload with the probe seed; shrink and
        # replay must run against that exact seed or the schedule diverges.
        task = report.task
        if failure.seed is not None:
            task = replace(task, seed=failure.seed)
        shrunk_from: Optional[int] = None
        if shrink:
            try:
                result = shrink_failure(task, failure.prefix, failure.kind)
            except ValueError:
                # Defensive: a prefix re-run that no longer fails (the trace
                # itself still replays); keep the raw failure in that case.
                result = None
            if result is not None:
                shrunk_from = len(failure.prefix)
                failure = ExplorationFailure(
                    kind=failure.kind,
                    message=result.outcome.message,
                    prefix=result.prefix,
                    trace=result.outcome.trace,
                    digest=result.outcome.digest,
                    seed=failure.seed,
                )
                print(f"  shrink: {result.describe()}")
        name = (
            f"{task.problem}_{task.mechanism}_"
            f"{failure.kind.replace(':', '-')}_{failure.digest[:12]}.json"
        )
        path = write_repro(
            out_dir / name, repro_payload(task, failure, report.mode, shrunk_from)
        )
        written.append(path)
        print(f"  repro written: {path}")
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_schedulers:
        width = max(len(name) for name in available_schedulers())
        for name in available_schedulers():
            print(f"{name:{width}s}  {describe_scheduler(name)}")
        return 0
    if args.replay is not None:
        result = replay_repro(args.replay)
        print(result.describe())
        return 0 if result.reproduced else 1
    if args.problem is None:
        raise SystemExit("--problem is required (unless --replay/--list-schedulers)")

    params = _parse_params(args.param)
    mechanisms = _resolve_mechanisms(args.problem, args.mechanism)
    out_dir = Path(args.out)
    any_failures = False
    for mechanism in mechanisms:
        task = ExploreTask(
            problem=args.problem,
            mechanism=mechanism,
            threads=args.threads,
            total_ops=args.ops,
            seed=args.seed,
            validate=args.validate,
            max_steps=args.max_steps,
            starvation_budget=args.starvation_budget,
            problem_params=params,
        )
        try:
            if args.mode == "dfs":
                report = explore_dfs(
                    task, max_schedules=args.schedules, max_depth=args.max_depth
                )
            else:
                report = explore_swarm(
                    task,
                    schedules=args.schedules if args.schedules is not None else 200,
                    base_seed=args.seed,
                    executor=args.executor,
                    jobs=args.jobs,
                )
        except ValueError as error:
            # Workload construction rejected the configuration (bad problem
            # parameter, invalid thread/op count, ...): a usage error, not a
            # finding — report it like any other bad CLI input.
            raise SystemExit(f"cannot explore {args.problem!r}: {error}") from None
        print(report.summary())
        if not report.ok:
            any_failures = True
            _write_failures(report, out_dir, shrink=not args.no_shrink)
        print()
    return 1 if any_failures else 0


if __name__ == "__main__":
    sys.exit(main())
