"""Command-line entry point for schedule exploration.

Examples
--------
Exhaustively explore every schedule of a tiny bounded buffer::

    python -m repro.explore --problem bounded_buffer --mechanism autosynch \
        --mode dfs --threads 2 --ops 4 --param capacity=1

Swarm-explore a larger configuration across 4 worker processes::

    python -m repro.explore --problem h2o --mechanism autosynch --mode swarm \
        --threads 4 --ops 12 --schedules 500 --executor process --jobs 4

Fuzz: sweep policy x scheduler x *generated* scenario (specs come from the
seeded generator, invariants are enforced as oracles)::

    python -m repro.explore --mode fuzz --count 5 --schedules 100

Explore a declarative scenario loaded from a JSON spec file::

    python -m repro.explore --scenario scenarios/ping_pong.json --mode dfs --ops 4

Chaos sweep: every registered fault plan across two problems, with
self-healing recovery on, asserting the recovery-or-classified contract::

    python -m repro.explore --mode chaos --problem bounded_buffer,h2o \
        --mechanism all --schedules 10

Replay a failure repro file bit-identically (fault plans embedded in a
chaos repro are re-injected automatically)::

    python -m repro.explore --replay repros/bounded_buffer_....json
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.explore.engine import (
    DEFAULT_MAX_STEPS,
    ExplorationFailure,
    ExplorationReport,
    ExploreTask,
    explore_dfs,
    explore_swarm,
)
from repro.explore.chaos import DEFAULT_SCHEDULES_PER_CONFIG, chaos_sweep
from repro.explore.dpor import explore_dpor
from repro.explore.fuzz import (
    DEFAULT_SCENARIO_COUNT,
    DEFAULT_SCHEDULES,
    fuzz_scenarios,
)
from repro.explore.repro_files import replay_repro, repro_payload, write_repro
from repro.explore.shrink import shrink_failure
from repro.harness.execution import available_executors, describe_executor
from repro.problems import available_problems, describe_problem, get_problem
from repro.runtime.simulation import available_schedulers, describe_scheduler
from repro.scenarios import ScenarioError, load_scenario_file, register_scenario

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosynch-explore",
        description=(
            "Systematically explore simulation schedules, check per-problem "
            "oracles at every scheduling decision, shrink failures and write "
            "replayable JSON repro files."
        ),
    )
    parser.add_argument(
        "--problem",
        default=None,
        metavar="NAME",
        help=(
            "which registered problem to explore (see --list-problems; "
            "includes the built-in declarative scenarios)"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help=(
            "load a declarative scenario spec (JSON), register it as a "
            "problem and explore it (implies --problem <its name>)"
        ),
    )
    parser.add_argument(
        "--mechanism",
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "mechanism(s) to explore: 'explicit', any registered signalling "
            "policy, or 'all' for every mechanism the problem supports"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("dfs", "swarm", "fuzz", "chaos"),
        default="dfs",
        help=(
            "dfs = bounded exhaustive search, swarm = seeded random "
            "sampling, fuzz = swarm over seeded *generated* scenarios, "
            "chaos = fault-injection sweep under the recovery oracle"
        ),
    )
    parser.add_argument(
        "--dpor",
        action="store_true",
        help=(
            "dfs only: prune schedules with dynamic partial-order reduction "
            "(sleep/persistent sets over per-decision footprints plus "
            "configuration merging); finds the identical violation set in "
            "far fewer runs, but is refused with --fault"
        ),
    )
    parser.add_argument(
        "--count",
        type=int,
        default=DEFAULT_SCENARIO_COUNT,
        metavar="N",
        help="fuzz only: number of generated scenarios (default %(default)s)",
    )
    parser.add_argument("--threads", type=int, default=2,
                        help="the problem's x-axis value (default 2)")
    parser.add_argument("--ops", type=int, default=4,
                        help="total operation budget (default 4; keep tiny for dfs)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the workload (and swarm probes)")
    parser.add_argument(
        "--schedules",
        type=int,
        default=None,
        metavar="N",
        help=(
            "dfs: max schedules to visit (default: unlimited, run to "
            "exhaustion); swarm: number of random schedules (default 200); "
            f"fuzz: schedules per scenario x mechanism (default {DEFAULT_SCHEDULES})"
        ),
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "dfs: only branch on decisions shallower than N (needed for "
            "policies like 'baseline' whose schedule trees are infinite)"
        ),
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=DEFAULT_MAX_STEPS,
        metavar="N",
        help="per-run scheduling-step budget (default %(default)s)",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        metavar="NAME",
        help=(
            "how runs are executed (see --list-executors; 'process' shards "
            "over a worker pool): swarm/fuzz probes, and dfs/dpor frontier "
            "runs — the dfs/dpor report stays bit-identical to a serial run"
        ),
    )
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count for parallel executors")
    parser.add_argument(
        "--starvation-budget",
        type=int,
        default=None,
        metavar="N",
        help=(
            "liveness oracle: fail if a thread stays blocked for N consecutive "
            "scheduling decisions (recommended for swarm mode only; DFS "
            "schedules are deliberately unfair)"
        ),
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also run the monitor's relay-invariance checking during each run",
    )
    parser.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="problem parameter (repeatable), e.g. --param capacity=1",
    )
    parser.add_argument(
        "--out",
        default="repros",
        metavar="DIR",
        help="directory for failure repro files (default: %(default)s)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="write raw failing schedules without greedy minimisation",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="re-execute a repro file bit-identically and report the verdict",
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=None,
        metavar="PLAN",
        help=(
            "chaos: fault plan(s) to inject (repeatable; see --list-faults; "
            "default: every registered plan)"
        ),
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock safety net per run; when it fires the run is "
            "classified 'hang' with a parked-thread autopsy "
            "(default: the kernel's 600s)"
        ),
    )
    parser.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="STEPS",
        help=(
            "default wait_until timeout in scheduling steps; expiry "
            "classifies the run as 'timeout' (default: unbounded waits)"
        ),
    )
    parser.add_argument(
        "--no-self-heal",
        action="store_true",
        help="chaos: run without the monitor's self-healing recovery hook",
    )
    parser.add_argument(
        "--list-faults",
        action="store_true",
        help="list registered fault types and fault plans and exit",
    )
    parser.add_argument(
        "--list-schedulers",
        action="store_true",
        help="list the scheduler registry contents and exit",
    )
    parser.add_argument(
        "--list-problems",
        action="store_true",
        help="list the problem registry contents (incl. scenarios) and exit",
    )
    parser.add_argument(
        "--list-modes",
        action="store_true",
        help="list the exploration modes (incl. dfs + --dpor) and exit",
    )
    parser.add_argument(
        "--list-executors",
        action="store_true",
        help="list the executor registry contents and exit",
    )
    return parser


#: ``--list-modes`` output: mode name -> one-line description.
EXPLORATION_MODES = {
    "dfs": "bounded exhaustive depth-first search over scheduling decisions",
    "dfs --dpor": (
        "dfs with dynamic partial-order reduction: identical violation set, "
        "exponentially fewer schedules (refused with --fault)"
    ),
    "swarm": "seeded random schedule sampling, shardable across processes",
    "fuzz": "swarm over seeded *generated* scenarios with derived oracles",
    "chaos": "fault-injection sweep under the recovery-or-classified oracle",
}


def _parse_params(raw: Optional[Sequence[str]]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in raw or ():
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {item!r}")
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    return params


def _resolve_mechanisms(problem_name: str, raw: Optional[str]) -> List[str]:
    try:
        problem = get_problem(problem_name)
    except ValueError as error:
        # Unknown problem names are a usage error; the message already
        # lists every registered problem.
        raise SystemExit(str(error)) from None
    supported = problem.supported_mechanisms()
    if raw is None or raw == "all":
        return list(supported)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in supported]
    if unknown:
        raise SystemExit(
            f"unknown mechanism(s) {unknown} for problem {problem_name!r}; "
            f"supported: {', '.join(supported)}"
        )
    return names


def _resolve_executor(name: str, jobs: Optional[int]) -> str:
    """Validate --executor/--jobs up front, with the registry-listing UX of
    --mechanism/--scheduler, instead of a mid-exploration traceback."""
    if name not in available_executors():
        raise SystemExit(
            f"unknown executor {name!r}; "
            f"registered executors: {', '.join(available_executors())}"
        )
    if jobs is not None and jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    return name


def _write_failures(
    report: ExplorationReport,
    out_dir: Path,
    shrink: bool,
) -> List[Path]:
    written: List[Path] = []
    for failure in report.failures:
        # Swarm probes re-seed the workload with the probe seed; shrink and
        # replay must run against that exact seed or the schedule diverges.
        task = report.task
        if failure.seed is not None:
            task = replace(task, seed=failure.seed)
        shrunk_from: Optional[int] = None
        if shrink:
            try:
                result = shrink_failure(
                    task, failure.prefix, failure.kind, message=failure.message
                )
            except ValueError:
                # Defensive: a prefix re-run that no longer fails (the trace
                # itself still replays); keep the raw failure in that case.
                result = None
            if result is not None:
                shrunk_from = len(failure.prefix)
                failure = ExplorationFailure(
                    kind=failure.kind,
                    message=result.outcome.message,
                    prefix=result.prefix,
                    trace=result.outcome.trace,
                    digest=result.outcome.digest,
                    seed=failure.seed,
                )
                print(f"  shrink: {result.describe()}")
        name = (
            f"{task.problem}_{task.mechanism}_"
            f"{failure.kind.replace(':', '-')}_{failure.digest[:12]}.json"
        )
        path = write_repro(
            out_dir / name, repro_payload(task, failure, report.mode, shrunk_from)
        )
        written.append(path)
        print(f"  repro written: {path}")
    return written


def _run_fuzz(args: argparse.Namespace, specs=None) -> int:
    out_dir = Path(args.out)
    mechanisms = None
    if args.mechanism is not None and args.mechanism != "all":
        from repro.core.signalling import available_policies

        mechanisms = [name.strip() for name in args.mechanism.split(",") if name.strip()]
        # Fuzzed scenarios run under signalling policies only (no explicit
        # twin exists); reject bad names up front with the same UX as
        # dfs/swarm instead of a mid-exploration traceback.
        unknown = [name for name in mechanisms if name not in available_policies()]
        if unknown:
            raise SystemExit(
                f"fuzz mode explores registered signalling policies; "
                f"unsupported mechanism(s) {unknown}; "
                f"registered policies: {', '.join(available_policies())}"
            )
    any_failures = False

    def on_scenario(result) -> None:
        nonlocal any_failures
        verdict = "clean" if result.ok else f"{result.failures_total} FAILING"
        print(
            f"fuzz seed {result.seed}: {result.spec.name} — "
            f"{result.schedules_visited} schedules, {verdict}",
            flush=True,
        )
        if result.ok:
            return
        any_failures = True
        for report in result.reports:
            if not report.ok:
                _write_failures(report, out_dir, shrink=not args.no_shrink)

    try:
        report = fuzz_scenarios(
            count=args.count,
            base_seed=args.seed,
            schedules=args.schedules if args.schedules is not None else DEFAULT_SCHEDULES,
            mechanisms=mechanisms,
            threads=args.threads,
            total_ops=args.ops,
            executor=args.executor,
            jobs=args.jobs,
            validate=args.validate,
            starvation_budget=args.starvation_budget,
            spec_dir=out_dir,
            specs=specs,
            problem_params=_parse_params(args.param),
            progress=on_scenario,
        )
    except ValueError as error:
        # Bad configuration (e.g. --param for a parameter no scenario
        # declares): a usage error, same UX as dfs/swarm.
        raise SystemExit(f"cannot fuzz: {error}") from None
    print()
    print(report.summary())
    return 1 if any_failures else 0


def _run_chaos(args: argparse.Namespace) -> int:
    problems = [
        name.strip()
        for name in (args.problem or "bounded_buffer").split(",")
        if name.strip()
    ]
    out_dir = Path(args.out)
    any_failures = False
    for problem in problems:
        mechanisms = [
            name
            for name in _resolve_mechanisms(problem, args.mechanism)
            # Fault scheduling is defined on the monitor's signalling
            # machinery; the hand-written explicit twin has none to degrade.
            if name != "explicit"
        ]
        try:
            report = chaos_sweep(
                problems=[problem],
                mechanisms=mechanisms,
                plans=args.fault,
                schedules_per_config=(
                    args.schedules
                    if args.schedules is not None
                    else DEFAULT_SCHEDULES_PER_CONFIG
                ),
                base_seed=args.seed,
                threads=args.threads,
                total_ops=args.ops,
                self_heal=not args.no_self_heal,
                wait_timeout=args.wait_timeout,
                run_timeout=args.run_timeout,
                max_steps=args.max_steps,
                problem_params=_parse_params(args.param),
                repro_dir=out_dir,
                shrink=not args.no_shrink,
            )
        except ValueError as error:
            # Unknown fault plan / bad problem parameter: a usage error; the
            # plan registry's message already lists every registered plan.
            raise SystemExit(f"cannot run chaos sweep: {error}") from None
        print(report.summary())
        for failure in report.failures:
            if failure.repro_path is not None:
                print(f"  repro written: {failure.repro_path}")
        print()
        if not report.ok:
            any_failures = True
    return 1 if any_failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_faults:
        from repro.faults import (
            available_fault_plans,
            available_faults,
            describe_fault,
            describe_fault_plan,
        )

        print("fault types:")
        width = max(len(name) for name in available_faults())
        for name in available_faults():
            print(f"  {name:{width}s}  {describe_fault(name)}")
        print("fault plans:")
        width = max(len(name) for name in available_fault_plans())
        for name in available_fault_plans():
            print(f"  {name:{width}s}  {describe_fault_plan(name)}")
        return 0
    if args.list_schedulers:
        width = max(len(name) for name in available_schedulers())
        for name in available_schedulers():
            print(f"{name:{width}s}  {describe_scheduler(name)}")
        return 0
    if args.list_problems:
        width = max(len(name) for name in available_problems())
        for name in available_problems():
            print(f"{name:{width}s}  {describe_problem(name)}")
        return 0
    if args.list_modes:
        width = max(len(name) for name in EXPLORATION_MODES)
        for name, description in EXPLORATION_MODES.items():
            print(f"{name:{width}s}  {description}")
        return 0
    if args.list_executors:
        width = max(len(name) for name in available_executors())
        for name in available_executors():
            print(f"{name:{width}s}  {describe_executor(name)}")
        return 0
    _resolve_executor(args.executor, args.jobs)
    if args.dpor and args.mode != "dfs":
        raise SystemExit("--dpor requires --mode dfs (see --list-modes)")
    if args.dpor and args.fault:
        raise SystemExit(
            "--dpor cannot be combined with --fault: fault injection "
            "suppresses notifications by event count, which breaks the "
            "commutativity every reduction step relies on; run plain dfs "
            "or --mode chaos for fault exploration"
        )
    if args.replay is not None:
        result = replay_repro(args.replay)
        print(result.describe())
        return 0 if result.reproduced else 1
    spec = None
    if args.scenario is not None:
        try:
            spec = load_scenario_file(args.scenario)
            register_scenario(spec, replace=True)
        except ScenarioError as error:
            raise SystemExit(str(error)) from None
        if args.problem is not None and args.problem != spec.name:
            raise SystemExit(
                f"--scenario registered {spec.name!r} but --problem asks for "
                f"{args.problem!r}; drop --problem or make them agree"
            )
        args.problem = spec.name
    if args.mode == "chaos":
        if spec is not None:
            raise SystemExit("--scenario is not supported with --mode chaos")
        return _run_chaos(args)
    if args.mode == "fuzz":
        # With --scenario, fuzz the loaded spec; otherwise fuzz generated ones.
        return _run_fuzz(args, specs=[spec] if spec is not None else None)
    if args.problem is None:
        raise SystemExit(
            "--problem is required (unless --scenario/--replay/--mode fuzz/"
            "--list-schedulers/--list-problems)"
        )

    params = _parse_params(args.param)
    mechanisms = _resolve_mechanisms(args.problem, args.mechanism)
    out_dir = Path(args.out)
    fault_plan = None
    if args.fault:
        if len(args.fault) > 1:
            raise SystemExit(
                "dfs/swarm explore one fault plan at a time; use --mode "
                "chaos to sweep several"
            )
        from repro.faults import create_fault_plan

        try:
            fault_plan = create_fault_plan(args.fault[0]).to_dict()
        except ValueError as error:
            raise SystemExit(str(error)) from None
    any_failures = False
    for mechanism in mechanisms:
        task = ExploreTask(
            problem=args.problem,
            mechanism=mechanism,
            threads=args.threads,
            total_ops=args.ops,
            seed=args.seed,
            validate=args.validate,
            max_steps=args.max_steps,
            starvation_budget=args.starvation_budget,
            problem_params=params,
            # A --scenario-loaded problem exists only in this process's
            # registry; carry the spec so pool workers (and repro replays)
            # are self-contained.
            scenario=spec.to_dict() if spec is not None else None,
            fault_plan=fault_plan,
            self_heal=fault_plan is not None and not args.no_self_heal,
            run_timeout=args.run_timeout,
            wait_timeout=args.wait_timeout,
        )
        try:
            if args.mode == "dfs" and args.dpor:
                report = explore_dpor(
                    task,
                    max_schedules=args.schedules,
                    max_depth=args.max_depth,
                    executor=args.executor,
                    jobs=args.jobs,
                )
            elif args.mode == "dfs":
                report = explore_dfs(
                    task,
                    max_schedules=args.schedules,
                    max_depth=args.max_depth,
                    executor=args.executor,
                    jobs=args.jobs,
                )
            else:
                report = explore_swarm(
                    task,
                    schedules=args.schedules if args.schedules is not None else 200,
                    base_seed=args.seed,
                    executor=args.executor,
                    jobs=args.jobs,
                )
        except ValueError as error:
            # Workload construction rejected the configuration (bad problem
            # parameter, invalid thread/op count, ...): a usage error, not a
            # finding — report it like any other bad CLI input.
            raise SystemExit(f"cannot explore {args.problem!r}: {error}") from None
        print(report.summary())
        if report.stats:
            print(
                "  reduction: "
                + ", ".join(f"{k}={v}" for k, v in sorted(report.stats.items()))
            )
        if report.timings:
            # `oracle` is a sub-bucket of `run`; print it last so the first
            # three stages read as an (approximate) wall-clock partition.
            order = ("build", "run", "classify", "oracle")
            stages = sorted(
                report.timings.items(),
                key=lambda kv: order.index(kv[0]) if kv[0] in order else len(order),
            )
            print(
                "  stages: "
                + ", ".join(f"{stage}={seconds:.3f}s" for stage, seconds in stages)
            )
        if not report.ok:
            any_failures = True
            _write_failures(report, out_dir, shrink=not args.no_shrink)
        print()
    return 1 if any_failures else 0


if __name__ == "__main__":
    sys.exit(main())
