"""Scenario fuzzing: swarm exploration over *generated* workloads.

PR 4's explorer could only check schedules of problems somebody had already
hand-coded.  Fuzz mode closes the loop: seeded, valid-by-construction
scenario specs come out of :mod:`repro.scenarios.generate`, each is
compiled and registered as a problem on the fly, and the swarm explorer
sweeps signalling policy × random schedule over it with the scenario's own
invariants enforced as oracles.  A failure therefore implicates the
synchronization machinery (or the scenario compiler), not the workload —
and it ships as a shrunk, replayable repro file with the generating spec
embedded, plus the spec as a standalone ``.scenario.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.explore.engine import ExplorationReport, ExploreTask, explore_swarm
from repro.scenarios.compile import register_scenario
from repro.scenarios.generate import generate_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ScenarioFuzzResult", "FuzzReport", "fuzz_scenarios"]

#: Default number of generated scenarios per fuzz run.
DEFAULT_SCENARIO_COUNT = 5
#: Default random schedules per (scenario, mechanism) pair.
DEFAULT_SCHEDULES = 100


@dataclass
class ScenarioFuzzResult:
    """All exploration reports for one generated scenario."""

    spec: ScenarioSpec
    seed: int
    reports: List[ExplorationReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def schedules_visited(self) -> int:
        return sum(report.schedules_visited for report in self.reports)

    @property
    def failures_total(self) -> int:
        return sum(report.failures_total for report in self.reports)


@dataclass
class FuzzReport:
    """Aggregate result of one fuzz run."""

    results: List[ScenarioFuzzResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> str:
        lines = []
        for result in self.results:
            mechanisms = len(result.reports)
            verdict = "clean" if result.ok else f"{result.failures_total} failing"
            lines.append(
                f"fuzz {result.spec.name}: {result.spec.description} — "
                f"{result.schedules_visited} schedules over {mechanisms} "
                f"mechanism(s), {verdict}"
            )
        total = sum(result.schedules_visited for result in self.results)
        failing = sum(result.failures_total for result in self.results)
        lines.append(
            f"fuzz total: {len(self.results)} scenario(s), {total} schedules, "
            f"{failing} failing"
        )
        return "\n".join(lines)


def fuzz_scenarios(
    count: int = DEFAULT_SCENARIO_COUNT,
    base_seed: int = 0,
    schedules: int = DEFAULT_SCHEDULES,
    mechanisms: Optional[Sequence[str]] = None,
    threads: int = 3,
    total_ops: int = 12,
    executor: str = "serial",
    jobs: Optional[int] = None,
    validate: bool = False,
    starvation_budget: Optional[int] = None,
    spec_dir: Optional[Path] = None,
    specs: Optional[Sequence[ScenarioSpec]] = None,
    problem_params: Optional[Mapping[str, object]] = None,
    progress=None,
) -> FuzzReport:
    """Swarm-explore *count* generated scenarios (or explicit *specs*).

    Scenario ``i`` is generated from seed ``base_seed + i`` and registered
    (replacing any previous registration of the same name); passing *specs*
    skips generation and fuzzes those instead (the ``--scenario file.json
    --mode fuzz`` path).  *mechanisms* defaults to every mechanism the
    problem supports — i.e. every registered signalling policy.
    ``executor``/``jobs`` shard each swarm through the executor registry
    exactly like plain swarm mode; each task carries the spec itself, so
    worker processes resolve it without relying on the parent's registry.

    When *spec_dir* is given, the spec of every scenario that produced a
    failure is written there as ``<name>.scenario.json`` so the workload
    that provoked the failure is preserved verbatim alongside the repro
    files.
    """
    if specs is None:
        specs = [generate_scenario(base_seed + offset) for offset in range(count)]
    problem_params = dict(problem_params or {})
    report = FuzzReport()
    for offset, spec in enumerate(specs):
        seed = base_seed + offset
        unknown = sorted(set(problem_params) - set(spec.params))
        if unknown:
            # Fail fast with the builder's own UX rather than classifying
            # every probe of the swarm as a usage-error "failure".
            raise ValueError(
                f"scenario {spec.name!r} has no parameter(s) {unknown}; "
                f"declared parameters: {sorted(spec.params)}"
            )
        problem = register_scenario(spec, replace=True)
        result = ScenarioFuzzResult(spec=spec, seed=seed)
        sweep: Tuple[str, ...] = (
            tuple(mechanisms) if mechanisms else problem.supported_mechanisms()
        )
        for mechanism in sweep:
            task = ExploreTask(
                problem=spec.name,
                mechanism=mechanism,
                threads=threads,
                total_ops=total_ops,
                seed=seed,
                validate=validate,
                starvation_budget=starvation_budget,
                problem_params=problem_params,
                scenario=spec.to_dict(),
            )
            result.reports.append(
                explore_swarm(
                    task,
                    schedules=schedules,
                    base_seed=seed,
                    executor=executor,
                    jobs=jobs,
                )
            )
        if progress is not None:
            progress(result)
        if spec_dir is not None and not result.ok:
            spec_dir = Path(spec_dir)
            spec_dir.mkdir(parents=True, exist_ok=True)
            (spec_dir / f"{spec.name}.scenario.json").write_text(
                spec.to_json() + "\n"
            )
        report.results.append(result)
    return report
