"""Chaos sweeps: fault plans x problems x mechanisms under a recovery oracle.

A chaos sweep runs seeded-random schedules of each configuration with a
:class:`~repro.faults.FaultPlan` attached and holds every run to the
robustness contract of the fault-injection subsystem:

    every injected fault is either *recovered* (the run completes ``ok``,
    with the degradation counters showing how) or *classified* (a bounded
    verdict the plan declares acceptable — ``timeout``, ``abandonment``,
    ``missed_signal``, ...).  A silent hang is never acceptable.

Acceptability comes from the plan itself
(:attr:`~repro.faults.FaultPlan.acceptable_kinds`, the union over its fault
types): a run whose classification falls outside that set is a chaos
*failure*, shrunk with the standard greedy minimiser and written to a repro
file that replays bit-identically — the fault plan is embedded in the
task, so the replay re-injects the same faults at the same steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.explore.engine import (
    DEFAULT_MAX_STEPS,
    ExplorationFailure,
    ExploreTask,
    ScheduleOutcome,
    run_schedule,
)
from repro.explore.repro_files import repro_payload, write_repro
from repro.explore.shrink import shrink_failure
from repro.faults import FaultPlan, available_fault_plans, create_fault_plan
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.runtime.simulation import RandomScheduler

__all__ = [
    "DEFAULT_SCHEDULES_PER_CONFIG",
    "ChaosFailure",
    "ChaosReport",
    "chaos_sweep",
    "kind_is_acceptable",
]

DEFAULT_SCHEDULES_PER_CONFIG = 10

#: Degradation counters that constitute evidence of *recovery* (as opposed
#: to the fault simply not firing) when a faulted run still completes "ok".
RECOVERY_COUNTERS = (
    "self_heal_recoveries",
    "predicate_quarantines",
    "incremental_demotions",
    "wait_timeouts",
)


def kind_is_acceptable(kind: str, acceptable: FrozenSet[str]) -> bool:
    """Does classification *kind* satisfy the plan's acceptable set?

    A set entry either names a kind exactly or names a ``:``-prefixed
    family (``"error"`` covers ``"error:ValueError"``, ``"oracle"`` covers
    ``"oracle:fifo"``).  ``"hang"`` never appears in a plan's set, so a
    hang always fails the sweep.
    """
    return kind in acceptable or kind.split(":", 1)[0] in acceptable


@dataclass(frozen=True)
class ChaosFailure:
    """One run that violated the recovery-or-classified contract."""

    plan: str
    task: ExploreTask
    kind: str
    message: str
    acceptable: FrozenSet[str]
    prefix: Tuple[int, ...]
    digest: str
    repro_path: Optional[Path] = None

    def describe(self) -> str:
        return (
            f"{self.task.problem} [{self.task.mechanism}] seed "
            f"{self.task.seed} under plan {self.plan!r}: {self.kind} "
            f"(acceptable: {', '.join(sorted(self.acceptable))})"
        )


@dataclass
class ChaosReport:
    """Aggregate result of one chaos sweep."""

    configs: int = 0
    runs: int = 0
    #: Runs in which at least one fault actually fired.
    runs_faulted: int = 0
    #: Faulted runs that still completed "ok" (absorbed or recovered).
    runs_recovered: int = 0
    #: Faulted runs that ended with an acceptable classified verdict.
    runs_classified: int = 0
    #: Aggregate degradation counters across all runs (see RECOVERY_COUNTERS,
    #: plus "faults_injected").
    recovery_counts: Dict[str, int] = field(default_factory=dict)
    #: kind histogram per plan name.
    kind_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failures: List[ChaosFailure] = field(default_factory=list)
    failures_total: int = 0

    @property
    def ok(self) -> bool:
        return self.failures_total == 0

    def summary(self) -> str:
        lines = [
            f"chaos sweep: {self.runs} runs over {self.configs} "
            f"configurations — {self.runs_faulted} faulted "
            f"({self.runs_recovered} recovered, {self.runs_classified} "
            f"classified), {self.failures_total} contract violations"
        ]
        counters = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.recovery_counts.items())
            if count
        )
        if counters:
            lines.append(f"  degradation: {counters}")
        for plan, kinds in sorted(self.kind_counts.items()):
            spread = ", ".join(
                f"{kind}: {count}" for kind, count in sorted(kinds.items())
            )
            lines.append(f"  {plan}: {spread}")
        for failure in self.failures:
            lines.append(f"  FAIL {failure.describe()}")
        return "\n".join(lines)


#: Cap on failures retained (and shrunk/written) per sweep; every violation
#: is still counted in ``failures_total``.
DEFAULT_FAILURE_LIMIT = 25

PlanInput = Union[str, dict, FaultPlan]


def chaos_sweep(
    problems: Sequence[str],
    mechanisms: Sequence[str],
    plans: Optional[Sequence[PlanInput]] = None,
    schedules_per_config: int = DEFAULT_SCHEDULES_PER_CONFIG,
    base_seed: int = 0,
    threads: int = 3,
    total_ops: int = 6,
    self_heal: bool = True,
    wait_timeout: Optional[float] = None,
    run_timeout: Optional[float] = None,
    eval_engine: str = DEFAULT_ENGINE,
    max_steps: Optional[int] = DEFAULT_MAX_STEPS,
    problem_params: Optional[dict] = None,
    repro_dir: Optional[Union[str, Path]] = None,
    shrink: bool = True,
    failure_limit: int = DEFAULT_FAILURE_LIMIT,
    progress: Optional[Callable[[ExploreTask, str, ScheduleOutcome], None]] = None,
) -> ChaosReport:
    """Sweep fault plans across problems x mechanisms x seeds.

    Each configuration (plan, problem, mechanism) runs
    *schedules_per_config* seeded-random schedules.  A run whose
    classification is outside the plan's acceptable set is a contract
    violation: it is shrunk (when *shrink*) and written as a replayable
    repro file under *repro_dir* (when given) with the fault plan embedded.

    *plans* accepts registered plan names, plan dicts, or built plans;
    ``None`` sweeps every registered plan.
    """
    if plans is None:
        plans = available_fault_plans()
    resolved = [create_fault_plan(plan) for plan in plans]
    report = ChaosReport()
    for plan in resolved:
        acceptable = plan.acceptable_kinds
        kinds = report.kind_counts.setdefault(plan.name, {})
        for problem in problems:
            for mechanism in mechanisms:
                report.configs += 1
                for offset in range(schedules_per_config):
                    seed = base_seed + offset
                    task = ExploreTask(
                        problem=problem,
                        mechanism=mechanism,
                        threads=threads,
                        total_ops=total_ops,
                        seed=seed,
                        eval_engine=eval_engine,
                        max_steps=max_steps,
                        problem_params=problem_params or {},
                        fault_plan=plan.to_dict(),
                        self_heal=self_heal,
                        run_timeout=run_timeout,
                        wait_timeout=wait_timeout,
                    )
                    outcome = run_schedule(task, RandomScheduler(seed=seed))
                    report.runs += 1
                    kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
                    stats = outcome.monitor_stats
                    for name in RECOVERY_COUNTERS + ("faults_injected",):
                        count = int(stats.get(name, 0))
                        if count:
                            report.recovery_counts[name] = (
                                report.recovery_counts.get(name, 0) + count
                            )
                    if outcome.fault_events:
                        report.runs_faulted += 1
                        if outcome.ok:
                            report.runs_recovered += 1
                        elif kind_is_acceptable(outcome.kind, acceptable):
                            report.runs_classified += 1
                    if progress is not None:
                        progress(task, plan.name, outcome)
                    if kind_is_acceptable(outcome.kind, acceptable):
                        continue
                    report.failures_total += 1
                    if len(report.failures) >= failure_limit:
                        continue
                    report.failures.append(
                        _collect_failure(
                            task, plan, acceptable, outcome, repro_dir, shrink
                        )
                    )
    return report


def _collect_failure(
    task: ExploreTask,
    plan: FaultPlan,
    acceptable: FrozenSet[str],
    outcome: ScheduleOutcome,
    repro_dir: Optional[Union[str, Path]],
    shrink: bool,
) -> ChaosFailure:
    """Shrink one contract violation and persist its repro file."""
    prefix = tuple(outcome.trace.choices())
    digest = outcome.digest
    message = outcome.message
    shrunk_from: Optional[int] = None
    if shrink:
        try:
            result = shrink_failure(task, prefix, outcome.kind)
        except ValueError:
            # The prefix re-run no longer fails (the full trace still
            # replays); keep the raw schedule in that case.
            result = None
        if result is not None:
            shrunk_from = len(prefix)
            prefix = result.prefix
            digest = result.outcome.digest
            message = result.outcome.message
            trace = result.outcome.trace
        else:
            trace = outcome.trace
    else:
        trace = outcome.trace
    repro_path: Optional[Path] = None
    if repro_dir is not None:
        failure = ExplorationFailure(
            kind=outcome.kind,
            message=message,
            prefix=prefix,
            trace=trace,
            digest=digest,
            seed=task.seed,
        )
        name = (
            f"chaos_{task.problem}_{task.mechanism}_{plan.name}_"
            f"{outcome.kind.replace(':', '-')}_{digest[:12]}.json"
        )
        repro_path = write_repro(
            Path(repro_dir) / name,
            repro_payload(task, failure, "chaos", shrunk_from),
        )
    return ChaosFailure(
        plan=plan.name,
        task=task,
        kind=outcome.kind,
        message=message,
        acceptable=acceptable,
        prefix=prefix,
        digest=digest,
        repro_path=repro_path,
    )
