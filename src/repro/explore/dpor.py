"""Dynamic partial-order reduction over the prefix-scheduler decision tree.

Plain DFS (:func:`repro.explore.engine.explore_dfs`) branches on *every*
untried alternative at every decision point, so it re-executes schedules
that differ only in ways no oracle, verdict or monitor can observe.  This
module prunes those redundant schedules while preserving the invariant that
matters: **on every configuration both explorers can exhaust, DPOR reports
the identical violation set** (same failure kinds, reachable through the
same replayable prefixes).

Four reductions compose, each justified by a commutation argument:

1. **Configuration merging.**  Two exploration nodes with equal *abstract
   configurations* — the monitor's public variables (optionally projected by
   :meth:`Problem.state_projection`), every kernel thread's scheduling state
   plus a per-thread progress fingerprint, and all lock/condition queues —
   root isomorphic schedule subtrees, because every simulated thread is a
   deterministic function of that state.  The subtree is explored once.
2. **Symmetry.**  Threads declared interchangeable by
   :meth:`Problem.symmetry_classes` are canonically renamed before configs
   are compared, and alternatives that are automorphic images of an
   already-branched sibling are skipped.
3. **Sleep sets.**  An alternative whose subtree was already explored at a
   sibling stays "asleep" along the sibling's other branches until some
   executed slice is *dependent* with it (per-decision footprints from
   :mod:`repro.runtime.simulation.footprints`); selecting it earlier would
   only commute into the explored subtree.
4. **Persistent singletons.**  A slice whose footprint is empty (no reads,
   writes, locks or condition operations — e.g. a bare thread exit) commutes
   with everything, so ``{chosen}`` is a valid persistent set at that
   decision and no alternative needs branching at all.

Reduction is refused under fault injection: a suppressed ``on_notify`` makes
two otherwise-independent slices non-commuting (the fault fires by event
*count*, not by state), which breaks every argument above.  Run plain DFS
for chaos exploration.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.engine import (
    DEFAULT_FAILURE_LIMIT,
    ExplorationFailure,
    ExplorationReport,
    ExploreTask,
    ScheduleOutcome,
    run_prefix,
)
from repro.runtime.simulation.footprints import DecisionFootprint, independent

__all__ = ["explore_dpor", "abstract_value", "DPOR_MODE"]

#: The mode string DPOR reports (and repro files carry as provenance).
DPOR_MODE = "dfs+dpor"

_SCALARS = (int, float, str, bool, bytes, type(None))


def abstract_value(value: object) -> object:
    """A hashable, run-stable key for one monitor variable's value.

    Scalars stay themselves, containers recurse, and everything else
    collapses to its type name — monitors hold backend objects (condition
    handles, profilers) whose identities differ between the fresh backends
    of two runs even when the runs are equivalent.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(abstract_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(item) for item in value))
    if isinstance(value, dict):
        return tuple(sorted((key, abstract_value(item)) for key, item in value.items()))
    return ("obj", type(value).__name__)


class _ConfigProbe:
    """``run_schedule`` instrument: snapshot the abstract state everywhere.

    One snapshot per scheduling decision (via ``observe``) plus one after
    the run ended (via ``finish``), each capturing the monitor's public
    variables twice — in full and through the problem's projection — and
    the kernel's thread/lock/condition state.
    """

    def __init__(self, backend, monitor, project) -> None:
        self._backend = backend
        self._monitor = monitor
        self._project = project
        self.snapshots: List[tuple] = []

    def _snap(self) -> None:
        items = [
            (name, value)
            for name, value in sorted(vars(self._monitor).items())
            if not name.startswith("_")
        ]
        vars_full = tuple((name, abstract_value(value)) for name, value in items)
        project = self._project
        if project is None:
            vars_proj = vars_full
        else:
            # Re-abstract the projected value: projections concern themselves
            # with *what detail to keep*, not with hashability or run
            # stability, so an identity projection of an unhashable value
            # still needs the conservative collapse.
            vars_proj = tuple(
                (name, abstract_value(project(name, value))) for name, value in items
            )
        threads, locks, conds = self._backend.sync_state()
        self.snapshots.append((vars_full, vars_proj, threads, locks, conds))

    def observe(self, point) -> None:
        self._snap()

    def finish(self) -> None:
        self._snap()


def _build_configs(trace, raw: Sequence[tuple]) -> List[tuple]:
    """Per-decision abstract configurations from a run's raw snapshots.

    ``configs[d]`` describes the state *at* decision ``d``:
    ``(projected monitor vars, per-thread (tid, state, block_reason,
    fingerprint), locks, conds)``.

    The fingerprint is the crux.  Thread state alone cannot distinguish "a
    runnable producer that has put 1 item" from "a runnable producer that
    has put 2": both look identical to the kernel, yet their futures differ.
    Each thread's fingerprint counts its *effectful* slices — those that
    changed some monitor variable or netted the thread a lock it did not
    hold before.  Because every workload thread is a deterministic program
    whose thread-local data feeds back only through monitor and kernel
    state, that count pins the thread's position in its own program, which
    is exactly what makes equal configurations root isomorphic subtrees.
    Slices that wake up, find their predicate false, and re-park (the
    futile-wakeup cascades of the broadcast baseline) net nothing and
    advance nothing — which is what lets those cascades merge.
    """
    decisions = min(len(trace), max(len(raw) - 1, 0))
    fingerprints: Dict[int, int] = defaultdict(int)
    configs: List[tuple] = []
    for d in range(decisions):
        _vars_full, vars_proj, threads, locks, conds = raw[d]
        entries = tuple(
            (tid, state, reason, fingerprints[tid]) for tid, state, reason in threads
        )
        configs.append((vars_proj, entries, locks, conds))
        # Advance the chosen thread's fingerprint across slice d
        # (the span between snapshot d and snapshot d+1).
        chosen = trace[d].chosen
        pre, post = raw[d], raw[d + 1]
        wrote = pre[0] != post[0]
        pre_owned = {i for i, owner, _q in pre[3] if owner == chosen}
        post_owned = {i for i, owner, _q in post[3] if owner == chosen}
        if wrote or (post_owned - pre_owned):
            fingerprints[chosen] += 1
    return configs


def _canonicalize(
    config: tuple, sym_classes: Tuple[Tuple[int, ...], ...]
) -> Tuple[tuple, Dict[int, int]]:
    """The lexicographically-least renaming of *config* under the symmetry.

    Tries every per-class thread permutation (classes are tiny — the
    problems declare 2-4 interchangeable threads per group) and returns the
    smallest resulting key plus the renaming that produced it, so callers
    can translate this run's raw tids into canonical ones.
    """
    vars_proj, threads, locks, conds = config
    best: Optional[tuple] = None
    best_rename: Dict[int, int] = {}
    perms_per_class = [list(itertools.permutations(cls)) for cls in sym_classes]
    for combo in itertools.product(*perms_per_class):
        rename: Dict[int, int] = {}
        for cls, perm in zip(sym_classes, combo):
            for original, renamed in zip(cls, perm):
                rename[original] = renamed
        r = rename.get
        t2 = tuple(sorted((r(t, t), s, br, fp) for t, s, br, fp in threads))
        l2 = tuple(
            (i, r(o, o) if o is not None else None, tuple(r(x, x) for x in q))
            for i, o, q in locks
        )
        c2 = tuple((i, tuple(r(x, x) for x in q)) for i, q in conds)
        key = (vars_proj, t2, l2, c2)
        if best is None or key < best:
            best = key
            best_rename = dict(rename)
    return best, best_rename


def _automorphic_reps(
    config: tuple,
    alternatives: Sequence[int],
    sym_classes: Tuple[Tuple[int, ...], ...],
) -> List[int]:
    """One representative per automorphism orbit of *alternatives*.

    An alternative ``t`` is dropped when swapping it with an already-kept
    same-class alternative ``u`` fixes the configuration: scheduling ``t``
    then reaches a state that is the symmetric image of scheduling ``u``.
    """
    keep: List[int] = []
    _vars_proj, threads, locks, conds = config
    base = (
        tuple(sorted(threads)),
        tuple((i, o, tuple(q)) for i, o, q in locks),
        tuple((i, tuple(q)) for i, q in conds),
    )
    for t in alternatives:
        redundant = False
        for u in keep:
            if not any(t in cls and u in cls for cls in sym_classes):
                continue
            swap = {t: u, u: t}
            r = swap.get
            t2 = tuple(sorted((r(a, a), s, br, fp) for a, s, br, fp in threads))
            l2 = tuple(
                (i, r(o, o) if o is not None else None, tuple(r(x, x) for x in q))
                for i, o, q in locks
            )
            c2 = tuple((i, tuple(r(x, x) for x in q)) for i, q in conds)
            if (t2, l2, c2) == base:
                redundant = True
                break
        if not redundant:
            keep.append(t)
    return keep


#: A sleeping alternative: (raw tid, footprint of its first slice or None).
_SleepEntry = Tuple[int, Optional[DecisionFootprint]]

_STAT_KEYS = (
    "merged_configs",
    "cache_skips",
    "symmetry_skips",
    "sleep_skips",
    "persistent_singletons",
    "frontier_dedup",
    "unmerged_decisions",
)


def explore_dpor(
    task: ExploreTask,
    max_schedules: Optional[int] = None,
    max_depth: Optional[int] = None,
    failure_limit: int = DEFAULT_FAILURE_LIMIT,
    stop_on_failure: bool = False,
    progress: Optional[Callable[[int, ScheduleOutcome], None]] = None,
) -> ExplorationReport:
    """Exhaustive DFS with dynamic partial-order reduction.

    Drop-in for :func:`~repro.explore.engine.explore_dfs`: same signature,
    same :class:`ExplorationReport`, same replayable failure prefixes —
    only ``report.mode`` (``"dfs+dpor"``) and ``report.stats`` (pruning
    counters) differ.  On any configuration both explorers exhaust, the
    violation sets are identical; DPOR just reaches every inequivalent
    schedule once instead of many times.

    Raises ``ValueError`` for tasks with a fault plan — see the module
    docstring for why reduction is unsound under injected faults.
    """
    if task.fault_plan is not None:
        raise ValueError(
            "partial-order reduction is unsound under fault injection "
            "(suppressed notifications break slice commutativity); "
            "run plain DFS for chaos exploration"
        )
    problem = task.resolve_problem()
    params = dict(task.problem_params)
    sym = tuple(
        tuple(cls)
        for cls in problem.symmetry_classes(task.threads, task.total_ops, **params)
    )
    project = problem.state_projection(task.threads, task.total_ops, **params)

    report = ExplorationReport(task=task, mode=DPOR_MODE)
    stats = report.stats
    for key in _STAT_KEYS:
        stats[key] = 0

    seen_configs: set = set()
    #: (canonical config key, canonical tid) -> (canonical child config key,
    #: footprint of that slice).  Lets a frontier entry whose destination was
    #: reached by some other run since it was pushed be skipped at pop time,
    #: and gives sleeping alternatives their footprints.
    cache: Dict[tuple, Tuple[tuple, Optional[DecisionFootprint]]] = {}
    #: (prefix, the cache edge that produced it, sleep entries).
    frontier: List[Tuple[Tuple[int, ...], Optional[tuple], Tuple[_SleepEntry, ...]]] = [
        ((), None, ())
    ]
    seen_prefixes = {()}

    while frontier:
        if max_schedules is not None and report.schedules_visited >= max_schedules:
            return report
        prefix, edge, sleep = frontier.pop()
        if edge is not None:
            cached = cache.get(edge)
            if cached is not None and cached[0] in seen_configs:
                stats["cache_skips"] += 1
                continue

        probes: List[_ConfigProbe] = []

        def instrument(backend, spec, _probes=probes):
            probe = _ConfigProbe(backend, spec.monitor, project)
            _probes.append(probe)
            return probe

        outcome = run_prefix(
            task, prefix, instrument=instrument, record_footprints=True
        )
        report.schedules_visited += 1
        report.max_trace_steps = max(report.max_trace_steps, outcome.steps)
        report.max_decision_depth = max(
            report.max_decision_depth,
            sum(1 for point in outcome.trace.points if point.branching > 1),
        )
        if progress is not None:
            progress(report.schedules_visited, outcome)

        trace = outcome.trace
        footprints = trace.footprints or []
        raw = probes[0].snapshots if probes else []
        configs = _build_configs(trace, raw)
        choices = trace.choices()
        branch_until = len(choices)
        if max_depth is not None and branch_until > max_depth + 1:
            branch_until = max_depth + 1
            report.depth_capped += 1

        # Canonicalize every decision's config along the executed path (one
        # past the branching horizon, for the cache's child keys).
        canon = [
            _canonicalize(configs[d], sym)
            for d in range(min(len(configs), branch_until + 1))
        ]
        for d in range(min(branch_until, len(canon) - 1)):
            key, rename = canon[d]
            chosen = trace[d].chosen
            fp = footprints[d] if d < len(footprints) else None
            cache[(key, rename.get(chosen, chosen))] = (canon[d + 1][0], fp)

        # Walk the executed path: maintain this branch's sleep set slice by
        # slice and branch untried alternatives at every decision at or
        # beyond the prefix.  (Decisions inside the prefix were enumerated
        # by the ancestors that forced them; their slices still wake
        # sleeping entries — the sleep set was created at the last forced
        # decision.)
        active_sleep: List[_SleepEntry] = list(sleep)
        walk_from = len(prefix) - 1 if prefix else 0
        for d in range(walk_from, branch_until):
            fp_d = footprints[d] if d < len(footprints) else None
            if d >= len(prefix):
                if d >= len(canon):
                    # The run aborted (observer exception) before this
                    # decision was snapshotted: no config to merge on, so
                    # branch every alternative unreduced — correctness
                    # before reduction.
                    stats["unmerged_decisions"] += 1
                    for alt in range(1, trace[d].branching):
                        child_prefix = choices[:d] + (alt,)
                        if child_prefix not in seen_prefixes:
                            seen_prefixes.add(child_prefix)
                            frontier.append((child_prefix, None, ()))
                    continue
                key, rename = canon[d]
                if key in seen_configs:
                    stats["merged_configs"] += 1
                else:
                    seen_configs.add(key)
                    point = trace[d]
                    runnable = sorted(point.runnable)
                    chosen = point.chosen
                    if fp_d is not None and fp_d.empty:
                        # The executed slice touched nothing shared: it
                        # commutes with every alternative, so {chosen} is a
                        # persistent set here and nothing else needs trying.
                        stats["persistent_singletons"] += 1
                    else:
                        reps = _automorphic_reps(configs[d], runnable, sym)
                        emitted: List[_SleepEntry] = []
                        for t in runnable:
                            if t == chosen:
                                continue
                            if t not in reps:
                                stats["symmetry_skips"] += 1
                                continue
                            if any(entry[0] == t for entry in active_sleep):
                                stats["sleep_skips"] += 1
                                continue
                            tc = rename.get(t, t)
                            cached = cache.get((key, tc))
                            if cached is not None and cached[0] in seen_configs:
                                stats["cache_skips"] += 1
                                continue
                            child_prefix = choices[:d] + (runnable.index(t),)
                            if child_prefix in seen_prefixes:
                                stats["frontier_dedup"] += 1
                                continue
                            seen_prefixes.add(child_prefix)
                            # The child falls asleep on everything explored
                            # before it at this node: the surviving inherited
                            # entries, the executed continuation, and its
                            # earlier siblings.
                            child_sleep = (
                                tuple(active_sleep)
                                + ((chosen, fp_d),)
                                + tuple(emitted)
                            )
                            frontier.append((child_prefix, (key, tc), child_sleep))
                            emitted.append(
                                (t, cached[1] if cached is not None else None)
                            )
            if active_sleep:
                # Slice d wakes every sleeping alternative it does not
                # provably commute with (unknown footprints are dependent).
                active_sleep = [
                    entry
                    for entry in active_sleep
                    if independent(fp_d, entry[1])
                ]

        if not outcome.ok:
            report.failures_total += 1
            if len(report.failures) < failure_limit:
                report.failures.append(
                    ExplorationFailure(
                        kind=outcome.kind,
                        message=outcome.message,
                        prefix=choices,
                        trace=trace,
                        digest=outcome.digest,
                    )
                )
            if stop_on_failure:
                return report

    report.complete = True
    return report
