"""Dynamic partial-order reduction over the prefix-scheduler decision tree.

Plain DFS (:func:`repro.explore.engine.explore_dfs`) branches on *every*
untried alternative at every decision point, so it re-executes schedules
that differ only in ways no oracle, verdict or monitor can observe.  This
module prunes those redundant schedules while preserving the invariant that
matters: **on every configuration both explorers can exhaust, DPOR reports
the identical violation set** (same failure kinds, reachable through the
same replayable prefixes).

Four reductions compose, each justified by a commutation argument:

1. **Configuration merging.**  Two exploration nodes with equal *abstract
   configurations* — the monitor's public variables (optionally projected by
   :meth:`Problem.state_projection`), every kernel thread's scheduling state
   plus a per-thread progress fingerprint, and all lock/condition queues —
   root isomorphic schedule subtrees, because every simulated thread is a
   deterministic function of that state.  The subtree is explored once.
2. **Symmetry.**  Threads declared interchangeable by
   :meth:`Problem.symmetry_classes` are canonically renamed before configs
   are compared, and alternatives that are automorphic images of an
   already-branched sibling are skipped.
3. **Sleep sets.**  An alternative whose subtree was already explored at a
   sibling stays "asleep" along the sibling's other branches until some
   executed slice is *dependent* with it (per-decision footprints from
   :mod:`repro.runtime.simulation.footprints`); selecting it earlier would
   only commute into the explored subtree.
4. **Persistent singletons.**  A slice whose footprint is empty (no reads,
   writes, locks or condition operations — e.g. a bare thread exit) commutes
   with everything, so ``{chosen}`` is a valid persistent set at that
   decision and no alternative needs branching at all.

Reduction is refused under fault injection: a suppressed ``on_notify`` makes
two otherwise-independent slices non-commuting (the fault fires by event
*count*, not by state), which breaks every argument above.  Run plain DFS
for chaos exploration.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.engine import (
    DEFAULT_FAILURE_LIMIT,
    ExplorationFailure,
    ExplorationReport,
    ExploreTask,
    ScheduleOutcome,
    _make_pool,
    _merge_timings,
    run_prefix,
    task_runtime,
)
from repro.runtime.simulation.footprints import DecisionFootprint, independent

__all__ = ["explore_dpor", "abstract_value", "DPOR_MODE"]

#: The mode string DPOR reports (and repro files carry as provenance).
DPOR_MODE = "dfs+dpor"

_SCALARS = (int, float, str, bool, bytes, type(None))


def abstract_value(value: object) -> object:
    """A hashable, run-stable key for one monitor variable's value.

    Scalars stay themselves, containers recurse, and everything else
    collapses to its type name — monitors hold backend objects (condition
    handles, profilers) whose identities differ between the fresh backends
    of two runs even when the runs are equivalent.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(abstract_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(item) for item in value))
    if isinstance(value, dict):
        return tuple(sorted((key, abstract_value(item)) for key, item in value.items()))
    return ("obj", type(value).__name__)


class _ConfigProbe:
    """``run_schedule`` instrument: snapshot the abstract state everywhere.

    One snapshot per scheduling decision (via ``observe``) plus one after
    the run ended (via ``finish``), each capturing the monitor's public
    variables twice — in full and through the problem's projection — and
    the kernel's thread/lock/condition state.

    ``skip`` suppresses the first *skip* decision snapshots: on a
    shared-prefix re-execution the parent run already snapshotted (and
    merged on) those decisions, so the replay skips the abstraction work
    and ``snapshots[i]`` describes decision ``skip + i``.
    """

    def __init__(self, backend, monitor, project, skip: int = 0) -> None:
        self._backend = backend
        self._monitor = monitor
        self._project = project
        self._to_skip = skip
        self.snapshots: List[tuple] = []

    def _snap(self) -> None:
        items = [
            (name, value)
            for name, value in sorted(vars(self._monitor).items())
            if not name.startswith("_")
        ]
        vars_full = tuple((name, abstract_value(value)) for name, value in items)
        project = self._project
        if project is None:
            vars_proj = vars_full
        else:
            # Re-abstract the projected value: projections concern themselves
            # with *what detail to keep*, not with hashability or run
            # stability, so an identity projection of an unhashable value
            # still needs the conservative collapse.
            vars_proj = tuple(
                (name, abstract_value(project(name, value))) for name, value in items
            )
        threads, locks, conds = self._backend.sync_state()
        self.snapshots.append((vars_full, vars_proj, threads, locks, conds))

    def observe(self, point) -> None:
        if self._to_skip:
            self._to_skip -= 1
            return
        self._snap()

    def finish(self) -> None:
        self._snap()


def _build_configs(
    trace,
    raw: Sequence[tuple],
    start: int = 0,
    fingerprints: Optional[Dict[int, int]] = None,
) -> List[Optional[tuple]]:
    """Per-decision abstract configurations from a run's raw snapshots.

    ``configs[d]`` describes the state *at* decision ``d``:
    ``(projected monitor vars, per-thread (tid, state, block_reason,
    fingerprint), locks, conds)``.

    ``start``/``fingerprints`` resume the construction mid-run for a
    shared-prefix re-execution: ``raw[i]`` then describes decision
    ``start + i``, per-thread fingerprint counting resumes from the
    *fingerprints* mapping (extracted from the parent run's configuration
    at that decision), and ``configs[d]`` is ``None`` for ``d < start`` —
    the parent already merged on those decisions.

    The fingerprint is the crux.  Thread state alone cannot distinguish "a
    runnable producer that has put 1 item" from "a runnable producer that
    has put 2": both look identical to the kernel, yet their futures differ.
    Each thread's fingerprint counts its *effectful* slices — those that
    changed some monitor variable or netted the thread a lock it did not
    hold before.  Because every workload thread is a deterministic program
    whose thread-local data feeds back only through monitor and kernel
    state, that count pins the thread's position in its own program, which
    is exactly what makes equal configurations root isomorphic subtrees.
    Slices that wake up, find their predicate false, and re-park (the
    futile-wakeup cascades of the broadcast baseline) net nothing and
    advance nothing — which is what lets those cascades merge.
    """
    decisions = min(len(trace), start + max(len(raw) - 1, 0))
    fps: Dict[int, int] = defaultdict(int)
    if fingerprints:
        fps.update(fingerprints)
    configs: List[Optional[tuple]] = [None] * start
    for d in range(start, decisions):
        _vars_full, vars_proj, threads, locks, conds = raw[d - start]
        entries = tuple(
            (tid, state, reason, fps[tid]) for tid, state, reason in threads
        )
        configs.append((vars_proj, entries, locks, conds))
        # Advance the chosen thread's fingerprint across slice d
        # (the span between snapshot d and snapshot d+1).
        chosen = trace[d].chosen
        pre, post = raw[d - start], raw[d - start + 1]
        wrote = pre[0] != post[0]
        pre_owned = {i for i, owner, _q in pre[3] if owner == chosen}
        post_owned = {i for i, owner, _q in post[3] if owner == chosen}
        if wrote or (post_owned - pre_owned):
            fps[chosen] += 1
    return configs


def _canonicalize(
    config: tuple, sym_classes: Tuple[Tuple[int, ...], ...]
) -> Tuple[tuple, Dict[int, int]]:
    """The lexicographically-least renaming of *config* under the symmetry.

    Tries every per-class thread permutation (classes are tiny — the
    problems declare 2-4 interchangeable threads per group) and returns the
    smallest resulting key plus the renaming that produced it, so callers
    can translate this run's raw tids into canonical ones.
    """
    vars_proj, threads, locks, conds = config
    best: Optional[tuple] = None
    best_rename: Dict[int, int] = {}
    perms_per_class = [list(itertools.permutations(cls)) for cls in sym_classes]
    for combo in itertools.product(*perms_per_class):
        rename: Dict[int, int] = {}
        for cls, perm in zip(sym_classes, combo):
            for original, renamed in zip(cls, perm):
                rename[original] = renamed
        r = rename.get
        t2 = tuple(sorted((r(t, t), s, br, fp) for t, s, br, fp in threads))
        l2 = tuple(
            (i, r(o, o) if o is not None else None, tuple(r(x, x) for x in q))
            for i, o, q in locks
        )
        c2 = tuple((i, tuple(r(x, x) for x in q)) for i, q in conds)
        key = (vars_proj, t2, l2, c2)
        if best is None or key < best:
            best = key
            best_rename = dict(rename)
    return best, best_rename


def _automorphic_reps(
    config: tuple,
    alternatives: Sequence[int],
    sym_classes: Tuple[Tuple[int, ...], ...],
) -> List[int]:
    """One representative per automorphism orbit of *alternatives*.

    An alternative ``t`` is dropped when swapping it with an already-kept
    same-class alternative ``u`` fixes the configuration: scheduling ``t``
    then reaches a state that is the symmetric image of scheduling ``u``.
    """
    keep: List[int] = []
    _vars_proj, threads, locks, conds = config
    base = (
        tuple(sorted(threads)),
        tuple((i, o, tuple(q)) for i, o, q in locks),
        tuple((i, tuple(q)) for i, q in conds),
    )
    for t in alternatives:
        redundant = False
        for u in keep:
            if not any(t in cls and u in cls for cls in sym_classes):
                continue
            swap = {t: u, u: t}
            r = swap.get
            t2 = tuple(sorted((r(a, a), s, br, fp) for a, s, br, fp in threads))
            l2 = tuple(
                (i, r(o, o) if o is not None else None, tuple(r(x, x) for x in q))
                for i, o, q in locks
            )
            c2 = tuple((i, tuple(r(x, x) for x in q)) for i, q in conds)
            if (t2, l2, c2) == base:
                redundant = True
                break
        if not redundant:
            keep.append(t)
    return keep


#: A sleeping alternative: (raw tid, footprint of its first slice or None).
_SleepEntry = Tuple[int, Optional[DecisionFootprint]]


def _dpor_worker(payload: tuple) -> tuple:
    """Top-level (hence picklable) DPOR frontier worker entry point.

    Computes the pure, expensive half of one frontier entry — the run plus
    its raw abstract-state snapshots.  Everything order-sensitive
    (configuration merging, sleep sets, the caches) stays in the serial
    reduction loop, which is what keeps parallel reports bit-identical to
    serial ones.
    """
    task_data, prefix, verified_depth, start = payload
    task = ExploreTask.from_dict(task_data)
    problem = task.resolve_problem()
    project = problem.state_projection(
        task.threads, task.total_ops, **dict(task.problem_params)
    )
    probes: List[_ConfigProbe] = []

    def instrument(backend, spec):
        probe = _ConfigProbe(backend, spec.monitor, project, skip=start)
        probes.append(probe)
        return probe

    outcome = run_prefix(
        task,
        prefix,
        instrument=instrument,
        record_footprints=True,
        verified_depth=verified_depth,
        footprints_from=start,
    )
    return outcome, (probes[0].snapshots if probes else [])


def _dpor_payload_fn(task_data: dict):
    """Payload extractor for DPOR frontier entries (see :func:`_dpor_worker`)."""

    def payload(entry: tuple) -> tuple:
        prefix, _edge, _sleep, verified_depth, inherited = entry
        start = len(prefix) - 1 if (prefix and inherited is not None) else 0
        return (task_data, tuple(prefix), verified_depth, start)

    return payload

_STAT_KEYS = (
    "merged_configs",
    "cache_skips",
    "symmetry_skips",
    "sleep_skips",
    "persistent_singletons",
    "frontier_dedup",
    "unmerged_decisions",
)


def explore_dpor(
    task: ExploreTask,
    max_schedules: Optional[int] = None,
    max_depth: Optional[int] = None,
    failure_limit: int = DEFAULT_FAILURE_LIMIT,
    stop_on_failure: bool = False,
    progress: Optional[Callable[[int, ScheduleOutcome], None]] = None,
    executor: str = "serial",
    jobs: Optional[int] = None,
) -> ExplorationReport:
    """Exhaustive DFS with dynamic partial-order reduction.

    Drop-in for :func:`~repro.explore.engine.explore_dfs`: same signature,
    same :class:`ExplorationReport`, same replayable failure prefixes —
    only ``report.mode`` (``"dfs+dpor"``) and ``report.stats`` (pruning
    counters) differ.  On any configuration both explorers exhaust, the
    violation sets are identical; DPOR just reaches every inequivalent
    schedule once instead of many times.

    Frontier entries re-execute their parent's decision prefix on the
    fast replay path: oracle checks, footprint recording and abstract-state
    snapshotting are all skipped inside the already-verified prefix, with
    per-thread fingerprints inherited from the parent's configuration at
    the divergence point, so a child run costs O(suffix) abstraction work.

    ``executor``/``jobs`` shard the frontier runs (run + raw snapshots)
    through the executor registry; every reduction decision — merging,
    sleep sets, caches — is made by this loop in its serial order, so the
    report stays bit-identical to a serial run.

    Raises ``ValueError`` for tasks with a fault plan — see the module
    docstring for why reduction is unsound under injected faults.
    """
    if task.fault_plan is not None:
        raise ValueError(
            "partial-order reduction is unsound under fault injection "
            "(suppressed notifications break slice commutativity); "
            "run plain DFS for chaos exploration"
        )
    problem = task.resolve_problem()
    params = dict(task.problem_params)
    sym = tuple(
        tuple(cls)
        for cls in problem.symmetry_classes(task.threads, task.total_ops, **params)
    )
    project = problem.state_projection(task.threads, task.total_ops, **params)

    report = ExplorationReport(task=task, mode=DPOR_MODE)
    stats = report.stats
    for key in _STAT_KEYS:
        stats[key] = 0

    runtime = task_runtime(task)
    pool = _make_pool(
        task,
        executor,
        jobs,
        worker=_dpor_worker,
        payload_fn=_dpor_payload_fn(task.to_dict()),
    )
    seen_configs: set = set()
    #: (canonical config key, canonical tid) -> (canonical child config key,
    #: footprint of that slice).  Lets a frontier entry whose destination was
    #: reached by some other run since it was pushed be skipped at pop time,
    #: and gives sleeping alternatives their footprints.
    cache: Dict[tuple, Tuple[tuple, Optional[DecisionFootprint]]] = {}
    #: (prefix, the cache edge that produced it, sleep entries, the verified
    #: depth for the fast replay path, and the parent's per-thread
    #: fingerprints at the divergence point — None for entries that must
    #: re-record their whole run, i.e. the root and unmerged children).
    frontier: List[
        Tuple[
            Tuple[int, ...],
            Optional[tuple],
            Tuple[_SleepEntry, ...],
            int,
            Optional[Dict[int, int]],
        ]
    ] = [((), None, (), 0, None)]
    seen_prefixes = {()}

    while frontier:
        if max_schedules is not None and report.schedules_visited >= max_schedules:
            return report
        prefix, edge, sleep, verified_depth, inherited = frontier.pop()
        if edge is not None:
            cached = cache.get(edge)
            if cached is not None and cached[0] in seen_configs:
                stats["cache_skips"] += 1
                continue

        # Decisions below `start` were snapshotted, merged on and
        # edge-cached by the runs that forced them; this run skips their
        # abstraction work entirely (snapshots, footprints, fingerprints).
        start = len(prefix) - 1 if (prefix and inherited is not None) else 0
        result = pool.fetch(prefix) if pool is not None else None
        if result is not None:
            outcome, raw = result
        else:
            probes: List[_ConfigProbe] = []

            def instrument(backend, spec, _probes=probes):
                probe = _ConfigProbe(backend, spec.monitor, project, skip=start)
                _probes.append(probe)
                return probe

            outcome = run_prefix(
                task,
                prefix,
                instrument=instrument,
                record_footprints=True,
                runtime=runtime,
                verified_depth=verified_depth,
                footprints_from=start,
            )
            raw = probes[0].snapshots if probes else []
        report.schedules_visited += 1
        report.max_trace_steps = max(report.max_trace_steps, outcome.steps)
        report.max_decision_depth = max(
            report.max_decision_depth,
            sum(1 for point in outcome.trace.points if point.branching > 1),
        )
        _merge_timings(report, outcome)
        if progress is not None:
            progress(report.schedules_visited, outcome)

        trace = outcome.trace
        footprints = trace.footprints or []
        configs = _build_configs(trace, raw, start=start, fingerprints=inherited)
        choices = trace.choices()
        branch_until = len(choices)
        if max_depth is not None and branch_until > max_depth + 1:
            branch_until = max_depth + 1
            report.depth_capped += 1
        # A child shares this run's states up to its own prefix length; all
        # of them passed this run's oracle checks except, on a failing run,
        # the final recorded state (the one a mid-run oracle fired on).
        child_cap = len(choices) if outcome.ok else max(len(choices) - 1, 0)

        # Canonicalize every decision's config along the executed path (one
        # past the branching horizon, for the cache's child keys).  Below
        # ``start`` the ancestors already cached identical edges (the replay
        # is deterministic), so the loops resume from there.
        canon = [None] * start + [
            _canonicalize(configs[d], sym)
            for d in range(start, min(len(configs), branch_until + 1))
        ]
        for d in range(start, min(branch_until, len(canon) - 1)):
            key, rename = canon[d]
            chosen = trace[d].chosen
            fp = footprints[d] if d < len(footprints) else None
            cache[(key, rename.get(chosen, chosen))] = (canon[d + 1][0], fp)

        # Walk the executed path: maintain this branch's sleep set slice by
        # slice and branch untried alternatives at every decision at or
        # beyond the prefix.  (Decisions inside the prefix were enumerated
        # by the ancestors that forced them; their slices still wake
        # sleeping entries — the sleep set was created at the last forced
        # decision.)
        active_sleep: List[_SleepEntry] = list(sleep)
        walk_from = len(prefix) - 1 if prefix else 0
        for d in range(walk_from, branch_until):
            fp_d = footprints[d] if d < len(footprints) else None
            if d >= len(prefix):
                if d >= len(canon):
                    # The run aborted (observer exception) before this
                    # decision was snapshotted: no config to merge on, so
                    # branch every alternative unreduced — correctness
                    # before reduction.
                    stats["unmerged_decisions"] += 1
                    for alt in range(1, trace[d].branching):
                        child_prefix = choices[:d] + (alt,)
                        if child_prefix not in seen_prefixes:
                            seen_prefixes.add(child_prefix)
                            frontier.append(
                                (
                                    child_prefix,
                                    None,
                                    (),
                                    min(len(child_prefix), child_cap),
                                    None,
                                )
                            )
                    continue
                key, rename = canon[d]
                if key in seen_configs:
                    stats["merged_configs"] += 1
                else:
                    seen_configs.add(key)
                    point = trace[d]
                    runnable = sorted(point.runnable)
                    chosen = point.chosen
                    #: This configuration's per-thread fingerprints — what a
                    #: child diverging here resumes its own counting from.
                    fps_here = {t: fp for t, _s, _br, fp in configs[d][1]}
                    if fp_d is not None and fp_d.empty:
                        # The executed slice touched nothing shared: it
                        # commutes with every alternative, so {chosen} is a
                        # persistent set here and nothing else needs trying.
                        stats["persistent_singletons"] += 1
                    else:
                        reps = _automorphic_reps(configs[d], runnable, sym)
                        emitted: List[_SleepEntry] = []
                        for t in runnable:
                            if t == chosen:
                                continue
                            if t not in reps:
                                stats["symmetry_skips"] += 1
                                continue
                            if any(entry[0] == t for entry in active_sleep):
                                stats["sleep_skips"] += 1
                                continue
                            tc = rename.get(t, t)
                            cached = cache.get((key, tc))
                            if cached is not None and cached[0] in seen_configs:
                                stats["cache_skips"] += 1
                                continue
                            child_prefix = choices[:d] + (runnable.index(t),)
                            if child_prefix in seen_prefixes:
                                stats["frontier_dedup"] += 1
                                continue
                            seen_prefixes.add(child_prefix)
                            # The child falls asleep on everything explored
                            # before it at this node: the surviving inherited
                            # entries, the executed continuation, and its
                            # earlier siblings.
                            child_sleep = (
                                tuple(active_sleep)
                                + ((chosen, fp_d),)
                                + tuple(emitted)
                            )
                            frontier.append(
                                (
                                    child_prefix,
                                    (key, tc),
                                    child_sleep,
                                    min(len(child_prefix), child_cap),
                                    fps_here,
                                )
                            )
                            emitted.append(
                                (t, cached[1] if cached is not None else None)
                            )
            if active_sleep:
                # Slice d wakes every sleeping alternative it does not
                # provably commute with (unknown footprints are dependent).
                active_sleep = [
                    entry
                    for entry in active_sleep
                    if independent(fp_d, entry[1])
                ]

        if not outcome.ok:
            report.failures_total += 1
            if len(report.failures) < failure_limit:
                report.failures.append(
                    ExplorationFailure(
                        kind=outcome.kind,
                        message=outcome.message,
                        prefix=choices,
                        trace=trace,
                        digest=outcome.digest,
                    )
                )
            if stop_on_failure:
                return report
        if pool is not None:
            pool.refill(frontier)

    report.complete = True
    return report
