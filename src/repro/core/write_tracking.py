"""Per-variable write tracking for incremental relay signalling.

The relay rule re-evaluates waiting predicates on every monitor exit, but a
predicate that evaluated to false can only have *become* true if one of the
shared variables it reads was written since.  A :class:`WriteTracker`
records, per shared-variable name, the logical time of its last write (a
monotonically increasing *version*), letting the condition manager skip any
entry whose read set intersects no variable written since the entry's last
false evaluation — the dirty-set search of the incremental relay path.

Writes are observed by :class:`~repro.core.monitor.AutoSynchMonitor`'s
``__setattr__`` (every assignment to a public field) and by the scenario
runtime's compiled assignments (including subscript stores, which plain
``setattr`` interception cannot see).  In-place container mutation
(``self.items.append(...)``) is invisible to both, which is why the
condition manager additionally requires a skipped entry's shared reads to
be immutable scalars — or names declared in the monitor's
``_tracked_write_names`` (scenario monitors, where *every* mutation goes
through a compiled assignment) — before trusting the version vector.

The module-level toggle (:func:`set_incremental_enabled`) exists for the
equivalence property suite: it flips new monitors between the incremental
and the exhaustive search without touching any other configuration, so the
two can be compared observationally on otherwise identical runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

__all__ = [
    "SCALAR_TYPES",
    "WriteTracker",
    "incremental_enabled",
    "set_incremental_enabled",
]

#: Value types whose reads are safe to version-track: immutable scalars that
#: cannot change behind ``__setattr__``'s back.  Deliberately excludes
#: immutable *containers* (tuple, frozenset): their elements may be mutable,
#: so a predicate reading ``self.pair[0]`` could still change invisibly.
SCALAR_TYPES = frozenset(
    {int, float, bool, str, bytes, complex, type(None)}
)

#: Process-wide default for whether new monitors create a write tracker.
_INCREMENTAL_DEFAULT = True


def incremental_enabled() -> bool:
    """Whether newly constructed monitors default to incremental relay."""
    return _INCREMENTAL_DEFAULT


def set_incremental_enabled(enabled: bool) -> bool:
    """Set the process-wide incremental-relay default; returns the previous
    value (so tests can restore it in a ``finally``)."""
    global _INCREMENTAL_DEFAULT
    previous = _INCREMENTAL_DEFAULT
    _INCREMENTAL_DEFAULT = bool(enabled)
    return previous


class WriteTracker:
    """Version vector over one monitor's shared-variable writes.

    ``clock`` is the logical write time: it advances by one on every
    tracked write, and ``versions[name]`` is the clock value of *name*'s
    most recent write.  A predicate entry evaluated false at clock ``c``
    can be skipped while ``versions[name] <= c`` for every name it reads.

    ``drain`` additionally hands out the set of names written since the
    last drain — the dirty set the condition manager's untagged search uses
    to find affected entries in time proportional to the writes, not the
    waiters.  It is single-consumer by design: one tracker belongs to one
    monitor, whose (single) condition manager is the only drainer.

    All mutation happens while the monitor lock is held (entry methods and
    relay passes alike), so no extra synchronization is needed.
    """

    __slots__ = ("clock", "versions", "_dirty", "suppressed")

    def __init__(self) -> None:
        self.clock: int = 0
        self.versions: Dict[str, int] = {}
        self._dirty: Set[str] = set()
        #: Fault-injection switch: a suppressed tracker silently drops every
        #: write (the ``tracker_amnesia`` fault), modelling a tracker whose
        #: view of the monitor's writes has diverged from reality.
        self.suppressed: bool = False

    def bump(self, name: str) -> None:
        """Record a write to *name* at a fresh logical time."""
        if self.suppressed:
            return
        self.clock += 1
        self.versions[name] = self.clock
        self._dirty.add(name)

    def version(self, name: str) -> int:
        """Clock value of *name*'s last write (0 when never written)."""
        return self.versions.get(name, 0)

    def written_since(self, names, clock: Optional[int]) -> bool:
        """True when any of *names* was written after logical time *clock*
        (a ``None`` clock means "never evaluated" and is always stale)."""
        if clock is None:
            return True
        versions = self.versions
        for name in names:
            if versions.get(name, 0) > clock:
                return True
        return False

    def drain(self) -> Set[str]:
        """Return and clear the set of names written since the last drain."""
        dirty = self._dirty
        if not dirty:
            return dirty
        self._dirty = set()
        return dirty

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WriteTracker clock={self.clock} tracked={len(self.versions)}>"
