"""Coroutine drivers for monitor entry: ``await`` instead of blocking.

Monitor code is synchronous — entry methods block in ``wait_until`` through
``ConditionAPI.wait``.  A coroutine waiter on the asyncio backend must
suspend instead of blocking the event loop, so this module re-drives the
exact entry protocol with ``await``-able primitives:

* :func:`monitor_entry` — async context manager mirroring
  ``MonitorBase._enter`` / ``_leave`` (stats, owner bookkeeping, traces,
  and the policy's ``on_monitor_exit`` relay on the way out);
* :func:`wait_until_async` — ``AutoSynchMonitor.wait_until`` driven over
  the signalling policy's :meth:`~repro.core.signalling.SignallingPolicy.
  wait_steps` generator, awaiting ``condition.wait_async`` at each park;
* :func:`run_action` — one compiled scenario action (binds → pre → guard
  → effects), the coroutine twin of the generated entry methods.

Because the wait loop itself lives in ``wait_steps`` — shared verbatim with
the blocking ``on_wait`` driver — relay ordering, spurious-wakeup handling,
timeout deadlines and validate-mode checks cannot diverge between sync and
coroutine waiters.  Requires a backend whose primitives expose
``acquire_async`` / ``wait_async`` (the asyncio backend); anything else
fails fast with :class:`~repro.core.errors.MonitorUsageError`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import MonitorUsageError
from repro.predicates.evaluator import evaluate

__all__ = ["monitor_entry", "wait_until_async", "run_action"]


def _require_async_backend(monitor, primitive: object, operation: str) -> None:
    if not hasattr(primitive, f"{operation}"):
        raise MonitorUsageError(
            f"backend {monitor.backend.name!r} does not support coroutine "
            f"waiters (its primitives have no {operation!r}); run coroutine "
            "workloads on the 'asyncio' backend"
        )


class monitor_entry:
    """``async with monitor_entry(monitor, "name"):`` — one monitor entry.

    The coroutine twin of ``MonitorBase._enter`` / ``_leave``: acquires the
    monitor mutex with ``await``, sets the owner to the current task, and on
    exit — raising or not — runs the policy's monitor-exit relay before
    releasing, exactly like a synchronous entry method return.
    """

    def __init__(self, monitor, method_name: str = "coroutine-entry") -> None:
        self._monitor = monitor
        self._method_name = method_name

    async def __aenter__(self):
        monitor = self._monitor
        mutex = monitor._mutex
        _require_async_backend(monitor, mutex, "acquire_async")
        monitor.stats.entries += 1
        with monitor.stats.time_bucket("lock_time"):
            await mutex.acquire_async()
        monitor._owner_id = monitor.backend.current_id()
        monitor._trace("enter", detail=self._method_name)
        return monitor

    async def __aexit__(self, *exc_info: object) -> bool:
        monitor = self._monitor
        try:
            monitor._before_release()
        finally:
            monitor._trace("exit", detail=self._method_name)
            monitor._owner_id = None
            monitor._mutex.release()
        return False


async def _park(monitor, condition, remaining: Optional[float]) -> bool:
    """Await one park request: the coroutine twin of ``_block_on``."""
    _require_async_backend(monitor, condition, "wait_async")
    monitor._owner_id = None
    try:
        with monitor.stats.time_bucket("await_time"):
            return await condition.wait_async(remaining)
    finally:
        monitor._owner_id = monitor.backend.current_id()


async def wait_until_async(
    monitor, predicate: str, timeout: Optional[float] = None, **local_values: object
) -> None:
    """``monitor.wait_until(...)`` for a coroutine holding the monitor.

    Must be called inside :func:`monitor_entry` (the monitor lock held by
    the current task).  Semantics — globalization, relay-before-wait,
    spurious wakeups, ``WaitTimeout`` in the backend's time units — are the
    signalling policy's own ``wait_steps`` generator, so they are identical
    to the blocking path by construction.
    """
    monitor._require_monitor_held("wait_until")
    compiled = monitor._compiled(predicate, local_values)
    if monitor._evaluate_predicate(compiled, local_values):
        return
    if timeout is None:
        timeout = monitor._wait_timeout
    steps = monitor.signalling_policy.wait_steps(
        compiled, local_values, timeout=timeout
    )
    try:
        try:
            condition, remaining = next(steps)
        except StopIteration:
            return
        while True:
            notified = await _park(monitor, condition, remaining)
            try:
                condition, remaining = steps.send(notified)
            except StopIteration:
                return
    finally:
        steps.close()


async def run_action(monitor, action: str, **local_values: object) -> None:
    """Run one compiled scenario action as a coroutine.

    The coroutine twin of the entry methods ``compile_scenario_monitor``
    generates: one monitor entry running binds → pre-effects → guard (via
    :func:`wait_until_async`) → effects, against the same precompiled
    ``_ActionRuntime`` table, so a coroutine workload exercises exactly the
    predicate pipeline a threaded workload does.
    """
    runtimes = getattr(type(monitor), "_action_runtimes", None)
    if not runtimes:
        raise MonitorUsageError(
            f"{type(monitor).__name__} is not a scenario-compiled monitor; "
            "run_action only drives compiled scenario actions"
        )
    runtime = runtimes.get(action)
    if runtime is None:
        raise MonitorUsageError(
            f"scenario monitor {type(monitor).__name__} has no action "
            f"{action!r}; actions: {sorted(runtimes)}"
        )
    if monitor._holds_monitor():
        raise MonitorUsageError(
            "run_action may not be nested inside a monitor entry"
        )
    async with monitor_entry(monitor, action):
        for name, expr in runtime.binds:
            local_values[name] = evaluate(expr, monitor, local_values)
        for assignment in runtime.pre:
            assignment.apply(monitor, local_values)
        if runtime.guard is not None:
            await wait_until_async(monitor, runtime.guard, **local_values)
        for assignment in runtime.effect:
            assignment.apply(monitor, local_values)
