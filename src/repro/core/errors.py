"""Exception types raised by the monitor runtime."""


class MonitorError(Exception):
    """Base class for monitor runtime errors."""


class MonitorUsageError(MonitorError):
    """Raised when the monitor API is used incorrectly, e.g. calling
    ``wait_until`` outside an entry method or signalling a condition without
    holding the monitor lock."""
