"""Exception types raised by the monitor runtime."""


class MonitorError(Exception):
    """Base class for monitor runtime errors."""


class MonitorUsageError(MonitorError):
    """Raised when the monitor API is used incorrectly, e.g. calling
    ``wait_until`` outside an entry method or signalling a condition without
    holding the monitor lock."""


class RelayInvarianceError(MonitorError):
    """Raised by validate mode when a relay step misses a signal: a waiting
    predicate is true, has un-signalled waiters, yet ``relay_signal`` found
    nothing to wake.  A dedicated type so tooling (e.g. the schedule
    explorer's failure classification) need not match message text."""


class WaitTimeout(MonitorError):
    """Raised by ``wait_until(..., timeout=...)`` when the deadline expires
    with the predicate still false.

    A timed wait that gives up is a *classified* outcome, not a hang: the
    waiter leaves the predicate table cleanly (its entry is deactivated when
    it was the last waiter) and the exception carries the predicate so the
    schedule explorer can report which wait starved.
    """

    def __init__(self, predicate: str, timeout: float) -> None:
        super().__init__(
            f"wait_until({predicate!r}) timed out after {timeout} time unit(s) "
            "with the predicate still false"
        )
        self.predicate = predicate
        self.timeout = timeout
