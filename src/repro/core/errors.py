"""Exception types raised by the monitor runtime."""


class MonitorError(Exception):
    """Base class for monitor runtime errors."""


class MonitorUsageError(MonitorError):
    """Raised when the monitor API is used incorrectly, e.g. calling
    ``wait_until`` outside an entry method or signalling a condition without
    holding the monitor lock."""


class RelayInvarianceError(MonitorError):
    """Raised by validate mode when a relay step misses a signal: a waiting
    predicate is true, has un-signalled waiters, yet ``relay_signal`` found
    nothing to wake.  A dedicated type so tooling (e.g. the schedule
    explorer's failure classification) need not match message text."""
