"""Min/max heaps for threshold tags (§4.3.2 of the paper).

All threshold tags that talk about the same shared expression and use a
"lower bound" operator (``>``, ``>=``) are kept in a *min*-heap: if the
weakest bound (smallest key) is not satisfied by the current value of the
shared expression, no other bound can be, so the search stops after one
check.  Tags with ``<``/``<=`` go into a *max*-heap for the symmetric reason.
For equal keys the inclusive operator (``>=`` / ``<=``) is considered weaker
and is checked first, exactly as the paper prescribes.

Each heap node groups every predicate entry that shares the same
``(key, op)`` tag.  Nodes are removed lazily when their last predicate is
discarded.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

__all__ = ["ThresholdNode", "ThresholdHeap"]

#: Operators handled by a min-heap (lower bounds on the shared expression).
LOWER_BOUND_OPS = (">", ">=")
#: Operators handled by a max-heap (upper bounds on the shared expression).
UPPER_BOUND_OPS = ("<", "<=")


@dataclass
class ThresholdNode:
    """One heap node: all predicate entries tagged ``(key, op)``."""

    key: object
    op: str
    entries: List[object] = field(default_factory=list)
    alive: bool = True

    def satisfied_by(self, value: object) -> bool:
        """True when ``value op key`` holds, i.e. the tag is true."""
        if self.op == ">":
            return value > self.key
        if self.op == ">=":
            return value >= self.key
        if self.op == "<":
            return value < self.key
        if self.op == "<=":
            return value <= self.key
        raise ValueError(f"unknown threshold operator {self.op!r}")


class ThresholdHeap:
    """A heap of :class:`ThresholdNode` ordered weakest-bound-first."""

    def __init__(self, direction: str) -> None:
        if direction not in ("min", "max"):
            raise ValueError("direction must be 'min' or 'max'")
        self.direction = direction
        self._heap: List[Tuple[Tuple[float, int], int, ThresholdNode]] = []
        self._nodes: dict[Tuple[object, str], ThresholdNode] = {}
        self._counter = itertools.count()

    def _sort_key(self, key: object, op: str) -> Tuple[float, int]:
        # Inclusive operators are weaker, so they sort first for equal keys.
        inclusive_rank = 0 if op in (">=", "<=") else 1
        if self.direction == "min":
            return (key, inclusive_rank)
        return (-key, inclusive_rank)

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return bool(self._nodes)

    def nodes(self) -> Iterator[ThresholdNode]:
        """Iterate over live nodes (order unspecified); used by tests."""
        return iter(self._nodes.values())

    def add(self, key: object, op: str, entry: object) -> ThresholdNode:
        """Add *entry* under the tag ``(key, op)``, creating the node if needed."""
        expected = LOWER_BOUND_OPS if self.direction == "min" else UPPER_BOUND_OPS
        if op not in expected:
            raise ValueError(
                f"operator {op!r} does not belong in a {self.direction}-heap"
            )
        node = self._nodes.get((key, op))
        if node is None or not node.alive:
            node = ThresholdNode(key=key, op=op)
            self._nodes[(key, op)] = node
            heapq.heappush(self._heap, (self._sort_key(key, op), next(self._counter), node))
        node.entries.append(entry)
        return node

    def discard(self, key: object, op: str, entry: object) -> None:
        """Remove *entry* from its node; an empty node dies lazily."""
        node = self._nodes.get((key, op))
        if node is None:
            return
        try:
            node.entries.remove(entry)
        except ValueError:
            return
        if not node.entries:
            node.alive = False
            del self._nodes[(key, op)]

    def peek(self) -> Optional[ThresholdNode]:
        """Return the weakest live node without removing it."""
        self._prune()
        if not self._heap:
            return None
        return self._heap[0][2]

    def poll(self) -> Optional[ThresholdNode]:
        """Remove and return the weakest live node (for Fig. 4's temporary
        removal); reinsert it later with :meth:`push_node`."""
        self._prune()
        if not self._heap:
            return None
        _, _, node = heapq.heappop(self._heap)
        return node

    def push_node(self, node: ThresholdNode) -> None:
        """Reinsert a node previously removed with :meth:`poll`."""
        if not node.alive:
            return
        heapq.heappush(
            self._heap, (self._sort_key(node.key, node.op), next(self._counter), node)
        )

    def _prune(self) -> None:
        while self._heap and not self._heap[0][2].alive:
            heapq.heappop(self._heap)
