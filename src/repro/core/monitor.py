"""Monitor base classes: the AutoSynch automatic-signal monitor and the
explicit-signal monitor used as the paper's comparison baseline.

Usage sketch (the automatic-signal bounded buffer from Fig. 1)::

    class BoundedBuffer(AutoSynchMonitor):
        def __init__(self, capacity, **monitor_kwargs):
            super().__init__(**monitor_kwargs)
            self.buffer = []
            self.capacity = capacity

        def put(self, item):
            self.wait_until("len(buffer) < capacity")
            self.buffer.append(item)

        def take(self):
            self.wait_until("len(buffer) > 0")
            return self.buffer.pop(0)

Every public method of a monitor subclass is an *entry method*: it runs under
the monitor lock, and when it leaves the monitor (returns or blocks in
``wait_until``) the signalling strategy decides which waiting thread to wake.
There are no condition variables and no ``signal`` calls in user code.

The ``signalling`` constructor argument selects the signalling policy.  It
resolves through the policy registry (:mod:`repro.core.signalling`), so it
accepts any registered name — including the three mechanisms compared in the
paper's evaluation:

* ``"autosynch"`` — relay signalling guided by predicate tags (the paper's
  contribution),
* ``"autosynch_t"`` — relay signalling with exhaustive predicate search
  (AutoSynch without tagging),
* ``"baseline"`` — a single condition variable and ``notify_all`` on every
  monitor exit; each woken thread re-evaluates its own predicate,

as well as the extension policies (``"relay_batched"``, ``"relay_fifo"``,
...), a :class:`~repro.core.signalling.SignallingPolicy` subclass, or a
configured policy instance.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.core.condition_manager import DEFAULT_INACTIVE_CAPACITY, ConditionManager
from repro.core.errors import MonitorUsageError
from repro.predicates.evaluator import EvaluationError
from repro.core.instrumentation import MonitorStats
from repro.core.signalling import SignallingPolicy, create_policy
from repro.core.write_tracking import WriteTracker, incremental_enabled
from repro.predicates.classify import ClassificationError
from repro.predicates.codegen import DEFAULT_ENGINE, validate_engine
from repro.predicates.evaluator import _EMPTY_LOCALS, read_shared
from repro.predicates.predicate import (
    CompiledPredicate,
    GlobalizedPredicate,
    compile_predicate,
)
from repro.runtime.api import Backend, ConditionAPI
from repro.runtime.threads import ThreadingBackend

__all__ = [
    "AUTOMATIC_MODES",
    "MonitorBase",
    "AutoSynchMonitor",
    "ExplicitMonitor",
    "entry_method",
    "query_method",
]

#: The automatic signalling mechanisms of §6.2 (the paper's legacy modes;
#: the full, extensible list lives in the signalling-policy registry — see
#: :func:`repro.core.signalling.available_policies`).
AUTOMATIC_MODES = ("autosynch", "autosynch_t", "baseline")


def query_method(func: Callable) -> Callable:
    """Mark a method as a side-effect-free query usable inside predicates.

    Query methods are *not* wrapped as entry methods: they are called by the
    condition manager (and by entry methods) while the monitor lock is
    already held.
    """
    func._monitor_query = True
    return func


def entry_method(func: Callable) -> Callable:
    """Explicitly mark a method as a monitor entry method.

    Public methods are wrapped automatically; this decorator exists for
    wrapping a method whose name starts with an underscore, or simply for
    documentation.
    """
    func._monitor_entry = True
    return func


def _wrap_entry(func: Callable) -> Callable:
    @functools.wraps(func)
    def wrapper(self: "MonitorBase", *args: object, **kwargs: object):
        return self._run_entry(func, args, kwargs)

    wrapper._monitor_entry_wrapped = True
    return wrapper


class MonitorBase:
    """Common machinery: the monitor lock, entry-method wrapping and stats."""

    # Class-level defaults so the footprint bridge reads cleanly before (and
    # without) __init__ binding backend methods over them.
    _fp_note_write = None
    _fp_note_reads = None

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        for name, attribute in list(vars(cls).items()):
            if not callable(attribute):
                continue
            if getattr(attribute, "_monitor_entry_wrapped", False):
                continue
            if getattr(attribute, "_monitor_query", False):
                continue
            explicit = getattr(attribute, "_monitor_entry", False)
            if name.startswith("_") and not explicit:
                continue
            if not explicit and name in _NEVER_WRAPPED:
                continue
            setattr(cls, name, _wrap_entry(attribute))

    def __init__(
        self,
        backend: Optional[Backend] = None,
        profile: bool = False,
        tracer: Optional[object] = None,
    ) -> None:
        self._backend = backend if backend is not None else ThreadingBackend()
        self._stats = MonitorStats(profiling=profile)
        self._tracer = tracer
        self._mutex = self._backend.create_lock()
        self._owner_id: Optional[object] = None
        # Footprint bridge for schedule exploration: when the simulation
        # backend records per-decision footprints, shared-variable writes
        # (the __setattr__ hook) and predicate read sets flow into it.  Bound
        # once here so the common no-recording path costs one None check.
        if getattr(self._backend, "records_footprints", False):
            self._fp_note_write = self._backend.note_write
            self._fp_note_reads = self._backend.note_reads

    # -- public introspection ------------------------------------------------

    @property
    def stats(self) -> MonitorStats:
        """Event counters and (optional) time buckets for this monitor."""
        return self._stats

    @property
    def backend(self) -> Backend:
        """The execution backend this monitor runs on."""
        return self._backend

    @property
    def tracer(self) -> Optional[object]:
        """The attached :class:`repro.core.trace.Tracer`, if any."""
        return self._tracer

    # -- entry-method machinery -----------------------------------------------

    def _holds_monitor(self) -> bool:
        return self._owner_id is not None and self._owner_id == self._backend.current_id()

    def _run_entry(self, func: Callable, args: tuple, kwargs: dict):
        if not hasattr(self, "_mutex"):
            raise MonitorUsageError(
                f"{type(self).__name__}.__init__ must call super().__init__() "
                "before any entry method is used"
            )
        if self._holds_monitor():
            # Nested call from another entry method: already inside the monitor.
            return func(self, *args, **kwargs)
        self._enter(func.__name__)
        try:
            return func(self, *args, **kwargs)
        finally:
            self._leave(func.__name__)

    def _trace(self, kind: str, predicate: Optional[str] = None, detail: Optional[str] = None) -> None:
        if self._tracer is not None:
            self._tracer.record(kind, self._backend.current_id(), predicate, detail)

    def _enter(self, method_name: str = "") -> None:
        self._stats.entries += 1
        with self._stats.time_bucket("lock_time"):
            self._mutex.acquire()
        self._owner_id = self._backend.current_id()
        self._trace("enter", detail=method_name)

    def _leave(self, method_name: str = "") -> None:
        try:
            self._before_release()
        finally:
            self._trace("exit", detail=method_name)
            self._owner_id = None
            self._mutex.release()

    def _before_release(self) -> None:
        """Hook invoked, with the lock held, every time a thread leaves the
        monitor through an entry method return."""

    def _require_monitor_held(self, operation: str) -> None:
        if not self._holds_monitor():
            raise MonitorUsageError(
                f"{operation} may only be used from inside a monitor entry method"
            )


#: Names on monitor base classes that must never be treated as entry methods.
_NEVER_WRAPPED = frozenset(
    {
        "stats",
        "backend",
        "wait_until",
        "new_condition",
        "wait_on",
        "signal",
        "signal_all",
        "condition_manager",
        "try_self_heal",
    }
)


class AutoSynchMonitor(MonitorBase):
    """Automatic-signal monitor: ``wait_until`` instead of condition variables.

    Parameters
    ----------
    backend:
        Execution backend (defaults to a private :class:`ThreadingBackend`).
    signalling:
        A registered policy name (``"autosynch"`` — the default —,
        ``"autosynch_t"``, ``"baseline"``, ``"relay_batched"``,
        ``"relay_fifo"``, ...), a :class:`SignallingPolicy` subclass, or a
        configured policy instance.
    profile:
        Enable wall-clock time buckets (Table 1 measurements).
    inactive_capacity:
        How many inactive complex predicates to keep cached for reuse.
    validate:
        Check the relay-invariance property after every relay step that
        signalled nobody (slow; used by the validation sweeps).
    eval_engine:
        Predicate-evaluation engine: ``"compiled"`` (the default — each
        predicate is lowered to a native Python closure, with transparent
        fallback to the interpreter for anything codegen declines) or
        ``"interpreted"`` (the tree-walking evaluator; the ablation
        baseline).
    incremental_relay:
        Whether relay passes may use dirty-set search (skip re-evaluating
        predicates none of whose shared variables were written since their
        last false evaluation).  ``None`` — the default — defers to the
        process-wide toggle
        (:func:`repro.core.write_tracking.incremental_enabled`).  Either
        way the monitor silently falls back to exhaustive search whenever
        write tracking cannot be trusted (a subclass overriding
        ``__setattr__``, preprocessor-transformed classes, the interpreted
        engine) — incremental relay is a pure optimisation, never a
        behaviour change.
    """

    #: The monitor's write tracker (None when incremental relay is off or
    #: write tracking is unsupported for this class).  A class-level default
    #: so ``__setattr__`` works during ``__init__`` itself.
    _write_tracker: Optional[WriteTracker] = None

    #: Fault-injection hook (a :class:`repro.faults.FaultInjector`), consulted
    #: before every compiled predicate evaluation.  Class-level default so
    #: monitors without fault injection pay one attribute read, nothing more.
    _fault_hook: Optional[object] = None

    def __init__(
        self,
        backend: Optional[Backend] = None,
        signalling: object = "autosynch",
        profile: bool = False,
        inactive_capacity: int = DEFAULT_INACTIVE_CAPACITY,
        tracer: Optional[object] = None,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        incremental_relay: Optional[bool] = None,
        wait_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(backend, profile, tracer)
        self._validate = validate
        #: Default timeout applied to every ``wait_until`` that does not pass
        #: its own (None: wait forever).  Measured in the backend's time
        #: units — seconds on real threads, scheduling steps under simulation.
        self._wait_timeout = wait_timeout
        self._eval_engine = validate_engine(eval_engine)
        self._inactive_capacity = inactive_capacity
        self._predicate_cache: Dict[Tuple[str, frozenset], CompiledPredicate] = {}
        self._shared_name_cache: Optional[frozenset] = None
        wants_tracking = (
            incremental_relay
            if incremental_relay is not None
            else incremental_enabled()
        )
        if wants_tracking and self._write_tracking_supported():
            self._write_tracker = WriteTracker()
        if isinstance(signalling, str):
            try:
                self._policy = create_policy(signalling)
            except ValueError as error:
                raise ValueError(f"unknown signalling mode: {error}") from None
        else:
            # Class/instance specs: construction errors (e.g. a bad
            # batch_limit) are the policy's own and must surface verbatim.
            self._policy = create_policy(signalling)
        self._policy.bind(self)
        self._cond_mgr: Optional[ConditionManager] = self._policy.condition_manager

    # -- write tracking ---------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        # Every assignment to a public field is a shared-variable write the
        # incremental relay path must see.  In-place container mutation does
        # not come through here — which is why the condition manager only
        # trusts the version vector for scalar-valued (or declared-tracked)
        # reads.
        object.__setattr__(self, name, value)
        if not name.startswith("_"):
            tracker = self._write_tracker
            if tracker is not None:
                tracker.bump(name)
                self._stats.tracked_writes += 1
            note = self._fp_note_write
            if note is not None:
                note(name)

    def _write_tracking_supported(self) -> bool:
        """Whether this class's shared-variable writes all reach our
        ``__setattr__`` hook.

        A subclass overriding ``__setattr__`` and classes produced by the
        source-to-source preprocessor (markers ``__autosynch_source__`` /
        ``_autosynch_options``) may assign state in ways the hook never
        sees, so they get the exhaustive fallback.
        """
        cls = type(self)
        if cls.__setattr__ is not AutoSynchMonitor.__setattr__:
            return False
        if getattr(cls, "__autosynch_source__", None) is not None:
            return False
        if getattr(cls, "_autosynch_options", None) is not None:
            return False
        return True

    def _bump_write(self, name: str) -> None:
        """Record a shared-variable write that bypassed ``__setattr__``.

        The scenario runtime calls this for compiled subscript stores
        (``container[i] = value`` mutates in place); anything else that
        mutates a tracked field without assigning it must do the same.
        """
        tracker = self._write_tracker
        if tracker is not None:
            tracker.bump(name)
            self._stats.tracked_writes += 1

    # -- public API ------------------------------------------------------------

    @property
    def write_tracker(self) -> Optional[WriteTracker]:
        """The monitor's shared-variable write tracker (None when the
        incremental relay path is disabled or unsupported)."""
        return self._write_tracker

    @property
    def signalling(self) -> str:
        """Name of the signalling policy this monitor instance uses."""
        return self._policy.name

    @property
    def eval_engine(self) -> str:
        """The predicate-evaluation engine (``"compiled"``/``"interpreted"``)."""
        return self._eval_engine

    @property
    def signalling_policy(self) -> SignallingPolicy:
        """The bound :class:`SignallingPolicy` strategy object."""
        return self._policy

    @property
    def condition_manager(self) -> Optional[ConditionManager]:
        """The policy's condition manager (None for broadcast policies)."""
        return self._cond_mgr

    def wait_until(
        self,
        predicate: str,
        timeout: Optional[float] = None,
        **local_values: object,
    ) -> None:
        """Block until *predicate* holds (the paper's ``waituntil`` statement).

        *predicate* is a Python boolean expression over the monitor's public
        fields (written either bare or as ``self.field``) and over the
        keyword arguments, which play the role of the calling thread's local
        variables and are frozen to their current values (globalization).

        *timeout* bounds the wait, in the backend's time units (seconds on
        real threads, scheduling steps under simulation — see
        :meth:`Backend.now`); when it expires with the predicate still
        false, :class:`~repro.core.errors.WaitTimeout` is raised with the
        monitor lock re-held.  None falls back to the monitor-wide
        ``wait_timeout`` default (itself None: wait forever).  ``timeout``
        is therefore a reserved name — a local variable of that name cannot
        be passed through ``local_values``.

        Must be called from inside an entry method.
        """
        self._require_monitor_held("wait_until")
        compiled = self._compiled(predicate, local_values)
        if self._evaluate_predicate(compiled, local_values):
            return
        if timeout is None:
            timeout = self._wait_timeout
        self._policy.on_wait(compiled, local_values, timeout=timeout)

    def _before_release(self) -> None:
        self._policy.on_monitor_exit()

    # -- services the signalling policies build on -------------------------------

    def _create_condition_manager(
        self, use_tags: bool, incremental: bool = True
    ) -> ConditionManager:
        """Build a condition manager wired to this monitor's lock and stats.

        ``incremental=False`` (the exhaustive-by-design policies, e.g. the
        AutoSynch-T ablation) withholds the write tracker so every pass
        stays a full search no matter what the monitor supports.
        """
        return ConditionManager(
            owner=self,
            backend=self._backend,
            lock=self._mutex,
            stats=self._stats,
            use_tags=use_tags,
            inactive_capacity=self._inactive_capacity,
            tracer=self._tracer,
            eval_engine=self._eval_engine,
            write_tracker=self._write_tracker if incremental else None,
        )

    def _evaluate_predicate(
        self, compiled: CompiledPredicate, local_values: Optional[Mapping[str, object]]
    ) -> bool:
        """Evaluate a (possibly complex) predicate with the configured engine.

        Used for the checks performed by the calling thread itself — the
        initial ``wait_until`` test and the broadcast policy's re-check —
        where local values are still live.
        """
        note = self._fp_note_reads
        if note is not None:
            note(compiled.shared_names)
        stats = self._stats
        stats.predicate_evaluations += 1
        if self._eval_engine == "compiled":
            fn = compiled.compiled_fn()
            if fn is not None:
                stats.compiled_evaluations += 1
                try:
                    hook = self._fault_hook
                    if hook is not None:
                        hook.on_compiled_eval(self)
                    with stats.time_bucket("compiled_eval_time"):
                        return bool(
                            fn(self, read_shared, local_values or _EMPTY_LOCALS)
                        )
                except EvaluationError:
                    raise
                except Exception:
                    self._quarantine(compiled, stats)
        stats.interpreted_evaluations += 1
        with stats.time_bucket("interpreted_eval_time"):
            return compiled.evaluate(self, local_values)

    def _predicate_holds(self, globalized: GlobalizedPredicate) -> bool:
        """Evaluate a globalized predicate with the configured engine.

        Used by the relay policies' wakeup re-check; the condition manager's
        batch searches instead evaluate through a shared per-pass
        :class:`~repro.predicates.evaluator.EvalContext`.
        """
        note = self._fp_note_reads
        if note is not None:
            note(globalized.read_set())
        stats = self._stats
        stats.predicate_evaluations += 1
        if self._eval_engine == "compiled":
            fn = globalized.compiled_fn()
            if fn is not None:
                stats.compiled_evaluations += 1
                try:
                    hook = self._fault_hook
                    if hook is not None:
                        hook.on_compiled_eval(self)
                    with stats.time_bucket("compiled_eval_time"):
                        return bool(fn(self, read_shared, _EMPTY_LOCALS))
                except EvaluationError:
                    raise
                except Exception:
                    self._quarantine(globalized, stats)
        stats.interpreted_evaluations += 1
        with stats.time_bucket("interpreted_eval_time"):
            return globalized.holds(self)

    @staticmethod
    def _quarantine(predicate: object, stats: MonitorStats) -> None:
        """Demote a misbehaving compiled closure to the interpreter.

        ``EvaluationError`` never lands here — it has guaranteed class
        parity with the interpreter, so re-raising is the honest outcome;
        anything else means the closure diverged from the tree walker and
        can no longer be trusted.  The compiled-evaluation counter is
        rolled back so ``compiled + interpreted == predicate_evaluations``
        still holds after the interpreter answers instead.
        """
        predicate.quarantine()
        stats.compiled_evaluations -= 1
        stats.predicate_quarantines += 1

    def _create_condition(self) -> ConditionAPI:
        """Create a condition variable tied to the monitor lock."""
        return self._backend.create_condition(self._mutex)

    def _block_on(
        self, condition: ConditionAPI, timeout: Optional[float] = None
    ) -> bool:
        """Release the monitor and block on *condition* (owner bookkeeping
        and the ``await_time`` bucket included).

        Returns whether the wake-up was a notification (False: the timed
        wait expired); either way the monitor lock is re-held."""
        self._owner_id = None
        try:
            with self._stats.time_bucket("await_time"):
                return condition.wait(timeout)
        finally:
            self._owner_id = self._backend.current_id()

    def try_self_heal(self) -> Optional[ConditionAPI]:
        """Attempt to recover from an imminent deadlock (pure bookkeeping).

        Designed as a deadlock-recovery hook for the simulation kernel
        (:meth:`SimulationBackend.set_deadlock_recovery`), which calls it
        with its scheduler lock held from outside any simulated thread — so
        this method must not touch any backend primitive.  It exhaustively
        looks for a waiting predicate that is true (including waiters whose
        promised signal may have been lost in flight); if one is found while
        the dirty-set relay path is engaged, the write tracker evidently
        missed a write, so the manager is demoted to exhaustive search for
        good.  Either way the lost signal is re-promised, and the condition
        to wake is returned for the kernel to deliver — None when there is
        nothing to heal.
        """
        manager = self._cond_mgr
        if manager is None:
            return None
        entry = manager.find_missed_waiter(include_promised=True)
        if entry is None:
            return None
        stats = self._stats
        if manager.incremental:
            # The tracker let a true predicate be skipped: its dirty-set
            # bookkeeping can no longer be trusted for this monitor.
            manager.demote_to_exhaustive()
            stats.incremental_demotions += 1
        entry.pending_signals = min(entry.pending_signals + 1, entry.waiters)
        stats.signals_sent += 1
        stats.self_heal_recoveries += 1
        if self._tracer is not None:
            self._tracer.record("self_heal", None, predicate=entry.canonical)
        return entry.condition

    def _check_no_missed_signal(self) -> None:
        """Validation mode: after a relay that signalled nobody, no waiting
        predicate may be true (otherwise tag pruning lost a signal)."""
        from repro.core.errors import RelayInvarianceError

        missed = self._cond_mgr.find_missed_waiter()
        if missed is not None:
            raise RelayInvarianceError(
                "relay invariance violated: predicate "
                f"{missed.canonical!r} is true, has {missed.unsignalled_waiters} "
                "un-signalled waiter(s), but relay_signal found nothing to wake"
            )

    # -- predicate compilation ---------------------------------------------------

    def _shared_names(self) -> frozenset:
        """The monitor's public field names, memoized per instance."""
        if self._shared_name_cache is None:
            self._shared_name_cache = frozenset(
                name for name in vars(self) if not name.startswith("_")
            )
        return self._shared_name_cache

    def _compiled(
        self, source: str, local_values: Mapping[str, object]
    ) -> CompiledPredicate:
        key = (source, frozenset(local_values))
        compiled = self._predicate_cache.get(key)
        if compiled is None:
            try:
                compiled = compile_predicate(
                    source, self._shared_names(), set(local_values)
                )
            except ClassificationError:
                # A field assigned after the shared-name set was computed
                # (e.g. lazily, in a later entry method) would misclassify as
                # unknown: invalidate the memoized set and retry against the
                # monitor's current fields before giving up.
                self._shared_name_cache = None
                compiled = compile_predicate(
                    source, self._shared_names(), set(local_values)
                )
            self._predicate_cache[key] = compiled
        return compiled


class ExplicitMonitor(MonitorBase):
    """Conventional explicit-signal monitor (the paper's comparison point).

    Subclasses create condition variables with :meth:`new_condition` and use
    :meth:`wait_on`, :meth:`signal` and :meth:`signal_all` inside entry
    methods — exactly the discipline required by ``java.util.concurrent``,
    including the burden of choosing the right condition to signal.
    """

    def __init__(
        self,
        backend: Optional[Backend] = None,
        profile: bool = False,
        tracer: Optional[object] = None,
    ) -> None:
        super().__init__(backend, profile, tracer)

    def new_condition(self, name: Optional[str] = None) -> ConditionAPI:
        """Create a condition variable tied to the monitor lock."""
        condition = self._backend.create_condition(self._mutex)
        if name is not None and hasattr(condition, "label"):
            condition.label = name
        return condition

    @staticmethod
    def _condition_label(condition: ConditionAPI) -> str:
        label = getattr(condition, "label", None)
        return label if label is not None else f"condition@{id(condition):#x}"

    def wait_on(self, condition: ConditionAPI) -> None:
        """Wait on *condition* (the monitor lock is released while waiting)."""
        self._require_monitor_held("wait_on")
        self._stats.waits += 1
        self._trace("wait", predicate=self._condition_label(condition))
        self._owner_id = None
        try:
            with self._stats.time_bucket("await_time"):
                condition.wait()
        finally:
            self._owner_id = self._backend.current_id()
        self._stats.wakeups += 1
        self._trace("wakeup", predicate=self._condition_label(condition))

    def signal(self, condition: ConditionAPI) -> None:
        """Wake one thread waiting on *condition*."""
        self._require_monitor_held("signal")
        self._stats.signals_sent += 1
        self._trace("signal", predicate=self._condition_label(condition))
        condition.notify()

    def signal_all(self, condition: ConditionAPI) -> None:
        """Wake every thread waiting on *condition*."""
        self._require_monitor_held("signal_all")
        self._stats.signal_alls_sent += 1
        self._trace("signal_all", predicate=self._condition_label(condition))
        condition.notify_all()
