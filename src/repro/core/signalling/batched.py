"""Batched relay: amortize the tag search over up to *k* wake-ups per exit.

The per-wait relay policies walk the tag structures once per monitor exit
and wake at most one thread, so waking *n* ready threads costs *n* searches.
On hot paths where a single state change satisfies many waiters at once
(a large ``put_many``, a barrier opening, a score jump past several
thresholds) that repeated search dominates.  This policy performs one search
per exit but signals up to ``batch_limit`` ready waiters found along the
way, via the condition manager's ``signal_many`` primitive — the search cost
is amortized over the whole batch.

The relay-invariance guarantee is unchanged: a batch search that signals
nobody has exhaustively established that no waiting predicate holds, exactly
like ``relay_signal``, so validate mode applies verbatim.  Waking several
threads can only add spurious wake-ups (each woken thread still re-checks
its predicate), never lose signals.
"""

from __future__ import annotations

from repro.core.signalling.base import RelayPolicyBase
from repro.core.signalling.registry import register_policy

__all__ = ["BatchedRelayPolicy", "DEFAULT_BATCH_LIMIT"]

#: Default number of waiters one exit may wake.
DEFAULT_BATCH_LIMIT = 4


@register_policy
class BatchedRelayPolicy(RelayPolicyBase):
    """Tag-directed relay that signals up to ``batch_limit`` waiters per exit."""

    name = "relay_batched"
    description = "tag-directed relay, up to k ready waiters woken per exit"
    use_tags = True

    def __init__(self, batch_limit: int = DEFAULT_BATCH_LIMIT) -> None:
        super().__init__()
        if batch_limit < 1:
            raise ValueError(f"batch_limit must be >= 1, got {batch_limit}")
        self.batch_limit = batch_limit
        #: Running totals observed through :meth:`on_relay_pass`.
        self.passes = 0
        self.entries_skipped = 0

    def relay(self) -> bool:
        return self._manager.signal_many(self.batch_limit) > 0

    def on_relay_pass(self, signalled: bool, skipped: int) -> None:
        self.passes += 1
        self.entries_skipped += skipped

    def describe(self) -> str:
        label = f"{self.description} (k={self.batch_limit})"
        if self.entries_skipped:
            label += f", {self.entries_skipped} entries dirty-skipped"
        return label
