"""Name-based registry of signalling policies.

The registry is what makes the policy layer pluggable: the monitor, the
problem layer, the harness and the experiment CLI all resolve mechanism
names through it instead of hard-coding a mode tuple.  Registering a new
policy immediately makes it constructible via
``AutoSynchMonitor(signalling="<name>")``, runnable by every problem in
:mod:`repro.problems`, and selectable with ``--mechanisms`` on
``python -m repro.experiments``.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type, Union

from repro.core.signalling.base import SignallingPolicy

__all__ = [
    "register_policy",
    "unregister_policy",
    "get_policy",
    "available_policies",
    "describe_policy",
    "create_policy",
]

#: name -> policy class, in registration order (registration order is the
#: order ``available_policies`` reports, so the three legacy modes come
#: first).
_REGISTRY: Dict[str, Type[SignallingPolicy]] = {}

PolicySpec = Union[str, SignallingPolicy, Type[SignallingPolicy]]


def register_policy(
    policy_cls: Type[SignallingPolicy], replace: bool = False
) -> Type[SignallingPolicy]:
    """Register *policy_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True`` (guards against accidental shadowing of the
    paper's mechanisms).
    """
    if not (isinstance(policy_cls, type) and issubclass(policy_cls, SignallingPolicy)):
        raise TypeError(
            f"expected a SignallingPolicy subclass, got {policy_cls!r}"
        )
    name = policy_cls.name
    if not name or name == SignallingPolicy.name:
        raise ValueError(
            f"policy class {policy_cls.__name__} must define a unique 'name' attribute"
        )
    if name in _REGISTRY and _REGISTRY[name] is not policy_cls and not replace:
        raise ValueError(
            f"a signalling policy named {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); pass replace=True to override"
        )
    _REGISTRY[name] = policy_cls
    return policy_cls


def unregister_policy(name: str) -> None:
    """Remove a registered policy by name.

    Exists for tests and experiments that register throwaway policies (e.g.
    deliberately-defective ones for the schedule explorer's seeded-defect
    suite) and must restore the registry afterwards.  Unknown names raise
    the same error as :func:`get_policy`.
    """
    get_policy(name)
    del _REGISTRY[name]


def get_policy(name: str) -> Type[SignallingPolicy]:
    """Look up a policy class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown signalling policy {name!r}; "
            f"registered policies: {available_policies()}"
        ) from None


def available_policies() -> Tuple[str, ...]:
    """Names of every registered policy, in registration order."""
    return tuple(_REGISTRY)


def describe_policy(name: str) -> str:
    """The one-line human-readable label of a registered policy.

    Prefers a fresh instance's ``describe()`` (which may interpolate
    configuration defaults); a policy whose constructor needs arguments
    falls back to its class-level description.
    """
    policy_cls = get_policy(name)
    try:
        policy = policy_cls()
    except TypeError:
        # Constructor needs arguments; a TypeError from describe() itself
        # must still propagate, so only the construction is guarded.
        return policy_cls.description or name
    return policy.describe()


def create_policy(spec: PolicySpec) -> SignallingPolicy:
    """Resolve *spec* to a fresh, unbound policy instance.

    Accepts a registry name (``"autosynch"``, ``"relay_batched"``, ...), a
    :class:`SignallingPolicy` subclass, or an already-constructed (but not
    yet bound) instance — the hook that lets users pass configured policies
    such as ``BatchedRelayPolicy(batch_limit=8)`` straight to the monitor.
    """
    if isinstance(spec, str):
        return get_policy(spec)()
    if isinstance(spec, type) and issubclass(spec, SignallingPolicy):
        return spec()
    if isinstance(spec, SignallingPolicy):
        return spec
    raise TypeError(
        "signalling must be a registered policy name, a SignallingPolicy "
        f"subclass or an instance; got {spec!r}"
    )
