"""Name-based registry of signalling policies.

The registry is what makes the policy layer pluggable: the monitor, the
problem layer, the harness and the experiment CLI all resolve mechanism
names through it instead of hard-coding a mode tuple.  Registering a new
policy immediately makes it constructible via
``AutoSynchMonitor(signalling="<name>")``, runnable by every problem in
:mod:`repro.problems`, and selectable with ``--mechanisms`` on
``python -m repro.experiments``.

The registration/lookup contract (decorator registration, ``replace=True``
shadow guard, list-on-unknown-name errors, "name | class | instance" spec
resolution) is the shared :class:`~repro.core.plugin_registry.PluginRegistry`
idiom; this module is the policy-flavoured face of it.
"""

from __future__ import annotations

from typing import Tuple, Type, Union

from repro.core.plugin_registry import PluginRegistry
from repro.core.signalling.base import SignallingPolicy

__all__ = [
    "register_policy",
    "unregister_policy",
    "get_policy",
    "available_policies",
    "describe_policy",
    "create_policy",
]

#: The shared plugin registry holding every policy class, in registration
#: order (registration order is the order ``available_policies`` reports,
#: so the three legacy modes come first).
_REGISTRY = PluginRegistry(
    kind="signalling policy",
    base=SignallingPolicy,
    noun="policy",
    plural="policies",
    spec_noun="signalling",
)

PolicySpec = Union[str, SignallingPolicy, Type[SignallingPolicy]]


def register_policy(
    policy_cls: Type[SignallingPolicy], replace: bool = False
) -> Type[SignallingPolicy]:
    """Register *policy_cls* under its ``name`` attribute.

    Usable as a class decorator.  Re-registering an existing name raises
    unless ``replace=True`` (guards against accidental shadowing of the
    paper's mechanisms).
    """
    return _REGISTRY.register(policy_cls, replace=replace)


def unregister_policy(name: str) -> None:
    """Remove a registered policy by name.

    Exists for tests and experiments that register throwaway policies (e.g.
    deliberately-defective ones for the schedule explorer's seeded-defect
    suite) and must restore the registry afterwards.  Unknown names raise
    the same error as :func:`get_policy`.
    """
    _REGISTRY.unregister(name)


def get_policy(name: str) -> Type[SignallingPolicy]:
    """Look up a policy class by registry name."""
    return _REGISTRY.get(name)


def available_policies() -> Tuple[str, ...]:
    """Names of every registered policy, in registration order."""
    return _REGISTRY.names()


def describe_policy(name: str) -> str:
    """The one-line human-readable label of a registered policy.

    Prefers a fresh instance's ``describe()`` (which may interpolate
    configuration defaults); a policy whose constructor needs arguments
    falls back to its class-level description.
    """
    return _REGISTRY.describe(name)


def create_policy(spec: PolicySpec) -> SignallingPolicy:
    """Resolve *spec* to a fresh, unbound policy instance.

    Accepts a registry name (``"autosynch"``, ``"relay_batched"``, ...), a
    :class:`SignallingPolicy` subclass, or an already-constructed (but not
    yet bound) instance — the hook that lets users pass configured policies
    such as ``BatchedRelayPolicy(batch_limit=8)`` straight to the monitor.
    """
    return _REGISTRY.create(spec)
