"""The broadcast-everything baseline as a policy (§6.2).

One condition variable for the whole monitor; every monitor exit (including
going to wait) wakes every waiter, and each woken thread re-evaluates its own
predicate.  This is the classic automatic-signal monitor the paper compares
against: trivially correct, but its wake-ups scale with the number of
waiters instead of the number of satisfied predicates.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.errors import WaitTimeout
from repro.core.signalling.base import SignallingPolicy
from repro.core.signalling.registry import register_policy

__all__ = ["BroadcastPolicy"]


@register_policy
class BroadcastPolicy(SignallingPolicy):
    """Single condition variable, ``notify_all`` on every monitor exit."""

    name = "baseline"
    description = "broadcast everything: one condition variable, notify_all per exit"

    def __init__(self) -> None:
        super().__init__()
        self._condition = None

    def _setup(self, monitor) -> None:
        self._condition = monitor._create_condition()

    def _broadcast(self) -> None:
        stats = self.monitor.stats
        stats.signal_alls_sent += 1
        self.monitor._trace("signal_all")
        self._condition.notify_all()

    def on_wait(
        self,
        compiled,
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ) -> None:
        self._drive_wait(self.wait_steps(compiled, local_values, timeout))

    def wait_steps(
        self,
        compiled,
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ):
        monitor = self.monitor
        stats = monitor.stats
        backend = monitor.backend
        deadline = backend.now() + timeout if timeout is not None else None
        while True:
            # Going to wait is a monitor exit too: wake everybody first.
            self._broadcast()
            stats.waits += 1
            monitor._trace("wait", predicate=compiled.source)
            remaining = (
                max(deadline - backend.now(), 0.0) if deadline is not None else None
            )
            yield self._condition, remaining
            stats.wakeups += 1
            if monitor._evaluate_predicate(compiled, local_values):
                monitor._trace("wakeup", predicate=compiled.source)
                return
            if deadline is not None and backend.now() >= deadline:
                stats.wait_timeouts += 1
                monitor._trace("wait_timeout", predicate=compiled.source)
                raise WaitTimeout(compiled.source, timeout)
            stats.spurious_wakeups += 1
            monitor._trace("spurious_wakeup", predicate=compiled.source)

    def on_monitor_exit(self) -> None:
        self._broadcast()
