"""Pluggable signalling policies for the automatic-signal monitor.

Importing this package registers the built-in policies:

========================  =====================================================
name                      strategy
========================  =====================================================
``autosynch``             relay signalling guided by predicate tags (the paper)
``autosynch_t``           relay signalling, exhaustive predicate search
``baseline``              one condition variable, ``notify_all`` per exit
``relay_batched``         tag-directed relay waking up to *k* waiters per exit
``relay_fifo``            relay with ties broken by longest-waiting thread
========================  =====================================================

``AutoSynchMonitor(signalling=...)`` accepts any of these names, a
:class:`SignallingPolicy` subclass, or a configured instance.  To plug in a
custom policy::

    from repro.core.signalling import RelayPolicyBase, register_policy

    @register_policy
    class NoisyRelay(RelayPolicyBase):
        name = "relay_noisy"
        description = "relay that logs every hand-off"
        use_tags = True

        def relay(self):
            signalled = super().relay()
            print("relay ->", signalled)
            return signalled

after which ``AutoSynchMonitor(signalling="relay_noisy")`` works everywhere a
mechanism name is accepted (problems, harness, experiment CLI).
"""

from repro.core.signalling.base import RelayPolicyBase, SignallingPolicy
from repro.core.signalling.registry import (
    available_policies,
    create_policy,
    describe_policy,
    get_policy,
    register_policy,
    unregister_policy,
)

# Import order fixes registration order (= the order ``available_policies``
# reports): the paper's three mechanisms first, then the extensions.
from repro.core.signalling.relay import RelayExhaustivePolicy, RelayTaggedPolicy
from repro.core.signalling.broadcast import BroadcastPolicy
from repro.core.signalling.batched import DEFAULT_BATCH_LIMIT, BatchedRelayPolicy
from repro.core.signalling.fifo import FifoRelayPolicy

__all__ = [
    "SignallingPolicy",
    "RelayPolicyBase",
    "RelayTaggedPolicy",
    "RelayExhaustivePolicy",
    "BroadcastPolicy",
    "BatchedRelayPolicy",
    "FifoRelayPolicy",
    "DEFAULT_BATCH_LIMIT",
    "unregister_policy",
    "register_policy",
    "get_policy",
    "available_policies",
    "describe_policy",
    "create_policy",
]
