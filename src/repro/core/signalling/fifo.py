"""FIFO-fair relay: among satisfied predicates, wake the longest waiter.

The tag-directed policies pick *some* thread whose predicate holds — which
one depends on hash-bucket and heap order, so a steady stream of
late-arriving waiters with easy predicates can starve an early waiter whose
predicate is also true.  This policy makes the relay choice fair: every
enqueue stamps the waiter with a monotonically increasing sequence number
(kept per predicate entry by the :class:`ConditionManager`), and each relay
step evaluates every active predicate and signals the entry whose oldest
un-signalled waiter has the smallest sequence number.

Fairness costs the tag pruning (every active predicate is evaluated per
relay, like AutoSynch-T), which is the trade-off this policy exists to
measure; relay invariance is preserved because the scan is exhaustive.
"""

from __future__ import annotations

from repro.core.signalling.base import RelayPolicyBase
from repro.core.signalling.registry import register_policy

__all__ = ["FifoRelayPolicy"]


@register_policy
class FifoRelayPolicy(RelayPolicyBase):
    """Relay that breaks ties among true predicates by longest-wait order."""

    name = "relay_fifo"
    description = "relay signalling, ties broken by longest-waiting thread first"
    use_tags = False

    def relay(self) -> bool:
        return self._manager.relay_signal_fifo()
