"""The signalling-policy abstraction.

A :class:`SignallingPolicy` decides *which waiting thread wakes up when* for
one :class:`~repro.core.monitor.AutoSynchMonitor` instance.  The monitor owns
the lock, the stats and the predicate compiler; the policy owns the blocking
protocol.  Four hooks cover the whole lifecycle:

* :meth:`on_wait` — a ``wait_until`` predicate evaluated to false; block the
  calling thread until it holds (the policy implements the full wait loop,
  including spurious-wakeup handling).
* :meth:`on_monitor_exit` — a thread is leaving the monitor through an entry
  method return; hand the monitor on to waiting threads as the policy sees
  fit (relay one, relay a batch, broadcast, ...).
* :meth:`consume` — a woken waiter consumed one promised signal (only
  meaningful for policies that track pending signals through a
  :class:`~repro.core.condition_manager.ConditionManager`).
* :meth:`describe` — a one-line human-readable label used by harness reports.

Policies are registered by name in :mod:`repro.core.signalling.registry`;
``AutoSynchMonitor(signalling=...)`` accepts a registered name, a policy
class, or an (unbound) policy instance, so custom policies plug in without
touching the monitor.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Mapping, Optional

from repro.core.errors import MonitorUsageError, WaitTimeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.condition_manager import ConditionManager, PredicateEntry
    from repro.core.monitor import AutoSynchMonitor
    from repro.predicates.predicate import CompiledPredicate

__all__ = ["SignallingPolicy", "RelayPolicyBase"]


class SignallingPolicy(abc.ABC):
    """Strategy object deciding how one monitor signals its waiters.

    A policy instance is bound to exactly one monitor (via :meth:`bind`,
    called from the monitor constructor); per-monitor state such as condition
    variables or a condition manager is created in :meth:`_setup`.
    """

    #: Registry name of the policy (also reported by ``monitor.signalling``).
    name: ClassVar[str] = "abstract"
    #: One-line human-readable label (the default :meth:`describe` result).
    description: ClassVar[str] = ""

    def __init__(self) -> None:
        self._monitor: Optional["AutoSynchMonitor"] = None

    # -- binding ------------------------------------------------------------

    @property
    def monitor(self) -> "AutoSynchMonitor":
        """The monitor this policy is bound to."""
        if self._monitor is None:
            raise MonitorUsageError(
                f"signalling policy {self.name!r} is not bound to a monitor yet"
            )
        return self._monitor

    @property
    def condition_manager(self) -> Optional["ConditionManager"]:
        """The policy's condition manager, if it uses one (None otherwise)."""
        return None

    def bind(self, monitor: "AutoSynchMonitor") -> None:
        """Attach this policy to *monitor* and build its per-monitor state."""
        if self._monitor is not None:
            raise MonitorUsageError(
                f"signalling policy {self.name!r} is already bound to a monitor; "
                "policy instances cannot be shared between monitors"
            )
        self._monitor = monitor
        self._setup(monitor)

    def _setup(self, monitor: "AutoSynchMonitor") -> None:
        """Create per-monitor state (condition variables, manager, ...)."""

    # -- the strategy hooks --------------------------------------------------

    @abc.abstractmethod
    def on_wait(
        self,
        compiled: "CompiledPredicate",
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ) -> None:
        """Block the calling thread until *compiled* holds.

        Called with the monitor lock held, after the predicate evaluated to
        false once.  Must return with the lock held and the predicate true.
        With a *timeout* (in the backend's time units), the wait must raise
        :class:`~repro.core.errors.WaitTimeout` — lock re-held — once the
        deadline passes with the predicate still false.
        """

    @abc.abstractmethod
    def on_monitor_exit(self) -> None:
        """A thread is leaving the monitor: pass it on to waiting threads."""

    def consume(self, entry: "PredicateEntry") -> None:
        """A woken waiter on *entry* consumed one promised signal."""

    def describe(self) -> str:
        """One-line label used by reports and the CLI (defaults to
        :attr:`description`, falling back to the policy name)."""
        return self.description or self.name

    # -- the wait protocol, split from the blocking primitive ------------------

    def wait_steps(
        self,
        compiled: "CompiledPredicate",
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ):
        """The wait loop as a generator of park requests.

        Yields ``(condition, remaining_timeout)`` each time the calling
        thread must block, and receives the park's ``notified`` flag back
        via ``send()``.  Returns (``StopIteration``) once the predicate
        holds; raises :class:`~repro.core.errors.WaitTimeout` when the
        deadline passes.  All bookkeeping — relay-before-wait, stats,
        deadline arithmetic in the backend's :meth:`Backend.now` units,
        waiter registration/removal — lives in the generator, so sync and
        coroutine drivers cannot diverge: :meth:`on_wait` drives it with
        ``monitor._block_on`` and the asyncio driver with
        ``await condition.wait_async``.

        The base implementation reports the policy as not generator-driven;
        policies overriding only :meth:`on_wait` keep working on blocking
        backends but cannot host coroutine waiters.
        """
        raise MonitorUsageError(
            f"signalling policy {self.name!r} does not implement the wait_steps "
            "protocol; it cannot drive coroutine waiters"
        )

    def _drive_wait(self, steps) -> None:
        """Run a :meth:`wait_steps` generator on a blocking backend."""
        monitor = self.monitor
        try:
            try:
                condition, remaining = next(steps)
            except StopIteration:
                return
            while True:
                notified = monitor._block_on(condition, timeout=remaining)
                try:
                    condition, remaining = steps.send(notified)
                except StopIteration:
                    return
        finally:
            # Closing is idempotent; on an abnormal exit from _block_on it
            # runs the generator's cleanup (waiter deregistration).
            steps.close()


class RelayPolicyBase(SignallingPolicy):
    """Shared machinery for relay-style policies.

    Relay policies route every wait through a
    :class:`~repro.core.condition_manager.ConditionManager` and obey the relay
    rule: a thread leaving the monitor (returning from an entry method *or*
    about to block in ``wait_until``) passes the monitor on to waiting
    threads whose predicates currently hold.  Subclasses customise the single
    :meth:`relay` step — which waiter(s) a monitor hand-off selects.
    """

    #: Whether the condition manager builds tag structures (Fig. 7).
    use_tags: ClassVar[bool] = False
    #: Whether the condition manager may use the monitor's write tracker for
    #: dirty-set (incremental) relay search.  Ablation policies set this to
    #: False so they keep measuring the pure exhaustive baseline.
    use_incremental: ClassVar[bool] = True

    def __init__(self) -> None:
        super().__init__()
        self._manager: Optional["ConditionManager"] = None

    @property
    def condition_manager(self) -> Optional["ConditionManager"]:
        return self._manager

    def _setup(self, monitor: "AutoSynchMonitor") -> None:
        self._manager = monitor._create_condition_manager(
            use_tags=self.use_tags, incremental=self.use_incremental
        )

    # -- the customisation point ---------------------------------------------

    def relay(self) -> bool:
        """Signal ready waiter(s); True when at least one was signalled."""
        return self._manager.relay_signal()

    # -- hook implementations --------------------------------------------------

    def on_wait(
        self,
        compiled: "CompiledPredicate",
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ) -> None:
        self._drive_wait(self.wait_steps(compiled, local_values, timeout))

    def wait_steps(
        self,
        compiled: "CompiledPredicate",
        local_values: Mapping[str, object],
        timeout: Optional[float] = None,
    ):
        monitor = self.monitor
        manager = self._manager
        stats = monitor.stats
        backend = monitor.backend
        globalized = compiled.globalized(local_values)
        entry = manager.acquire_entry(
            globalized, from_shared_predicate=compiled.is_shared
        )
        manager.add_waiter(entry)
        # The single place deadlines are computed: backend.now() units on
        # both ends, so no driver (or backend) can mix clocks.
        deadline = backend.now() + timeout if timeout is not None else None
        try:
            while True:
                # Relay rule: a thread about to wait passes the monitor on to
                # waiting threads whose predicates already hold, if any exist.
                self._relay_checked()
                stats.waits += 1
                monitor._trace("wait", predicate=entry.canonical)
                remaining = (
                    max(deadline - backend.now(), 0.0)
                    if deadline is not None
                    else None
                )
                notified = yield entry.condition, remaining
                stats.wakeups += 1
                if notified:
                    # An expired wait consumed no signal; a promise made to
                    # this entry stays valid for its remaining waiters.
                    self.consume(entry)
                if monitor._predicate_holds(globalized):
                    monitor._trace("wakeup", predicate=entry.canonical)
                    return
                if deadline is not None and backend.now() >= deadline:
                    stats.wait_timeouts += 1
                    monitor._trace("wait_timeout", predicate=entry.canonical)
                    raise WaitTimeout(compiled.source, timeout)
                stats.spurious_wakeups += 1
                monitor._trace("spurious_wakeup", predicate=entry.canonical)
        finally:
            manager.remove_waiter(entry)

    def on_monitor_exit(self) -> None:
        self._relay_checked()

    def consume(self, entry: "PredicateEntry") -> None:
        self._manager.consume_signal(entry)

    def _relay_checked(self) -> bool:
        """One relay step, with the monitor's validate-mode invariance check."""
        monitor = self.monitor
        stats = monitor.stats
        skipped_before = stats.relay_entries_skipped
        signalled = self.relay()
        self.on_relay_pass(
            signalled, stats.relay_entries_skipped - skipped_before
        )
        if monitor._validate and not signalled:
            monitor._check_no_missed_signal()
        return signalled

    def on_relay_pass(self, signalled: bool, skipped: int) -> None:
        """Observe one relay pass: whether it signalled and how many entries
        the dirty-set search skipped (0 on exhaustive passes).  Policies may
        override this to adapt or report; the default does nothing."""
