"""The paper's two relay-signalling mechanisms as policies (§5.2, §6.2).

Both obey the relay rule — every monitor hand-off signals at most one thread
whose predicate currently holds — and differ only in how that thread is
found: :class:`RelayTaggedPolicy` goes through the predicate-tag structures
(equivalence hash tables and threshold heaps, Fig. 7), while
:class:`RelayExhaustivePolicy` checks every active predicate (the paper's
AutoSynch-T ablation, which quantifies what tagging buys).
"""

from __future__ import annotations

from repro.core.signalling.base import RelayPolicyBase
from repro.core.signalling.registry import register_policy

__all__ = ["RelayTaggedPolicy", "RelayExhaustivePolicy"]


@register_policy
class RelayTaggedPolicy(RelayPolicyBase):
    """Relay signalling guided by predicate tags (the paper's AutoSynch)."""

    name = "autosynch"
    description = "relay signalling with predicate tags (AutoSynch)"
    use_tags = True


@register_policy
class RelayExhaustivePolicy(RelayPolicyBase):
    """Relay signalling with exhaustive predicate search (AutoSynch-T).

    As the ablation baseline this policy also opts out of the dirty-set
    incremental search, so its measurements stay a true "no pruning of any
    kind" reference point.
    """

    name = "autosynch_t"
    description = "relay signalling, exhaustive predicate search (AutoSynch-T)"
    use_tags = False
    use_incremental = False
