"""The one plugin-registry idiom every pluggable subsystem shares.

Four layers of the codebase grew the exact same hand-rolled pattern, one
copy at a time: signalling policies (:mod:`repro.core.signalling.registry`),
executors (:mod:`repro.harness.execution.registry`), schedulers
(:mod:`repro.runtime.simulation.schedulers`) and the problem catalogue
(:mod:`repro.problems.registry`).  Each kept a name-keyed dict in
registration order, validated the ``name`` attribute on registration,
raised on accidental shadowing unless ``replace=True``, listed the
registered names in every unknown-name error, and resolved a
"name | class | instance" spec to a ready instance.

:class:`PluginRegistry` is that idiom, extracted once.  The per-subsystem
registry modules stay as thin wrappers (their public function names —
``register_policy``, ``get_executor``, ``available_schedulers``, ... — are
the stable API), but the behaviour now lives here, so a fifth pluggable
layer is one instantiation away and the error-message UX cannot drift
between layers.

The wording knobs (``kind``/``noun``/``plural``/``spec_noun``) exist so the
extracted registry reproduces each layer's established error messages
verbatim; tests and user-facing docs rely on them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, MutableMapping, Optional, Tuple

__all__ = ["PluginRegistry", "RegistryView"]

_VOWELS = "aeiouAEIOU"


def _article(word: str) -> str:
    return "an" if word[:1] in _VOWELS else "a"


def _label(plugin: object) -> str:
    """How a registered plugin is referred to in conflict errors."""
    name = getattr(plugin, "__name__", None)
    return name if name is not None else type(plugin).__name__


class PluginRegistry:
    """A name-keyed plugin registry with the shared registration contract.

    Parameters
    ----------
    kind:
        The full human-readable kind used in unknown-name and conflict
        errors ("signalling policy", "executor", ...).
    base:
        The required base class.  Classes (or, with
        ``stores_instances=True``, instances) must derive from it, and its
        own class-level ``name`` is treated as the "no name defined"
        sentinel.
    noun:
        The short noun used in registration errors and ``create`` hints
        ("policy", "executor", ...); defaults to *kind*.
    plural:
        Plural used when listing registered names ("policies", ...).
    spec_noun:
        How the *spec* argument of :meth:`create` is referred to in type
        errors (the monitor calls its constructor argument ``signalling``,
        the others match their noun); defaults to *noun*.
    stores_instances:
        When True the registry holds ready objects (the problem catalogue
        registers :class:`~repro.problems.base.Problem` instances); when
        False it holds classes and :meth:`create` instantiates them.
    """

    def __init__(
        self,
        kind: str,
        base: type,
        *,
        noun: Optional[str] = None,
        plural: Optional[str] = None,
        spec_noun: Optional[str] = None,
        stores_instances: bool = False,
    ) -> None:
        self.kind = kind
        self.base = base
        self.noun = noun if noun is not None else kind
        self.plural = plural if plural is not None else f"{self.noun}s"
        self.spec_noun = spec_noun if spec_noun is not None else self.noun
        self.stores_instances = stores_instances
        self._entries: Dict[str, object] = {}
        self._populate: Optional[Callable[[], None]] = None
        self._populating = False

    # -- lazy population -----------------------------------------------------

    def set_populate(self, populate: Callable[[], None]) -> None:
        """Install a hook that registers the standard plugin set on first use.

        The hook runs (once) before any query — lookup, listing, view
        iteration — so a registry whose standard entries live in modules
        with import cycles (the problem catalogue registers declarative
        scenarios, which themselves import the problem layer) can defer
        those imports until somebody actually asks.
        """
        self._populate = populate

    def _ensure(self) -> None:
        if self._populate is None or self._populating:
            return
        self._populating = True
        try:
            self._populate()
        finally:
            self._populate = None
            self._populating = False

    # -- registration ---------------------------------------------------------

    def _check_registrable(self, plugin: object) -> None:
        if self.stores_instances:
            if not isinstance(plugin, self.base):
                raise TypeError(
                    f"expected {_article(self.base.__name__)} "
                    f"{self.base.__name__} instance, got {plugin!r}"
                )
        elif not (isinstance(plugin, type) and issubclass(plugin, self.base)):
            raise TypeError(
                f"expected {_article(self.base.__name__)} "
                f"{self.base.__name__} subclass, got {plugin!r}"
            )

    def register(self, plugin, replace: bool = False):
        """Register *plugin* under its ``name`` attribute.

        Usable as a class decorator.  Re-registering an existing name raises
        unless ``replace=True`` (guards against accidental shadowing).
        """
        # Deliberately no _ensure() here: registration must stay usable
        # mid-populate (the standard set registers through this very
        # method, and the populate hook's imports may be in progress).  A
        # populate hook that registers defaults therefore must not clobber
        # names users claimed first — see register_builtin_scenarios.
        self._check_registrable(plugin)
        name = plugin.name
        if not name or name == self.base.name:
            raise ValueError(
                f"{self.noun} class {_label(plugin)} must define a unique "
                "'name' attribute"
            )
        existing = self._entries.get(name)
        if existing is not None and existing is not plugin and not replace:
            raise ValueError(
                f"{_article(self.kind)} {self.kind} named {name!r} is already "
                f"registered ({_label(existing)}); pass replace=True to override"
            )
        self._entries[name] = plugin
        return plugin

    def unregister(self, name: str) -> None:
        """Remove a registered plugin by name.

        Exists for tests and experiments that register throwaway plugins
        and must restore the registry afterwards.  Unknown names raise the
        same error as :meth:`get`.
        """
        self.get(name)
        del self._entries[name]

    # -- lookup ----------------------------------------------------------------

    def get(self, name: str):
        """Look up a plugin by registry name."""
        self._ensure()
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; "
                f"registered {self.plural}: {self.names()}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """Names of every registered plugin, in registration order."""
        self._ensure()
        return tuple(self._entries)

    def describe(self, name: str) -> str:
        """The one-line human-readable label of a registered plugin.

        Prefers a fresh instance's ``describe()`` (which may interpolate
        configuration defaults); a plugin whose constructor needs arguments
        — or that has no ``describe`` at all — falls back to its
        class-level ``description``.
        """
        plugin = self.get(name)
        if not self.stores_instances:
            try:
                plugin = plugin()
            except (TypeError, ValueError):
                # Constructor needs arguments; an error from describe()
                # itself must still propagate, so only construction is
                # guarded.
                return plugin.description or name
        describe = getattr(plugin, "describe", None)
        if callable(describe):
            return describe()
        return plugin.description or name

    def create(self, spec, **kwargs):
        """Resolve *spec* to a ready-to-use plugin instance.

        Accepts a registry name, a subclass of the registry's base, or an
        already-constructed instance (returned as-is — the hook that lets
        callers pass pre-configured objects straight through).  *kwargs*
        are forwarded to the constructor for name/class specs.
        """
        if isinstance(spec, str):
            plugin = self.get(spec)
            if self.stores_instances:
                return plugin
            return plugin(**kwargs)
        if isinstance(spec, type) and issubclass(spec, self.base):
            return spec(**kwargs)
        if isinstance(spec, self.base):
            return spec
        raise TypeError(
            f"{self.spec_noun} must be a registered {self.noun} name, "
            f"{_article(self.base.__name__)} {self.base.__name__} subclass "
            f"or an instance; got {spec!r}"
        )

    def view(self) -> "RegistryView":
        """A live name->plugin mapping over this registry (see
        :class:`RegistryView`)."""
        return RegistryView(self)

    def __contains__(self, name: object) -> bool:
        self._ensure()
        return name in self._entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PluginRegistry {self.kind!r} ({len(self._entries)} registered)>"


class RegistryView(MutableMapping):
    """A live, dict-like view of a :class:`PluginRegistry`.

    Exists for the registries that historically *were* plain dicts (the
    problem catalogue's ``PROBLEMS``): iteration, membership and item
    access reflect the registry's current contents, ``view[name] = plugin``
    registers (replacing an existing entry, exactly like the old dict
    assignment did) and ``del view[name]`` unregisters.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: PluginRegistry) -> None:
        self._registry = registry

    def __getitem__(self, name: str):
        try:
            return self._registry.get(name)
        except ValueError as error:
            raise KeyError(str(error)) from None

    def __setitem__(self, name: str, plugin: object) -> None:
        if getattr(plugin, "name", None) != name:
            raise ValueError(
                f"cannot register {plugin!r} under {name!r}: the key must "
                f"equal the plugin's own name attribute"
            )
        self._registry.register(plugin, replace=True)

    def __delitem__(self, name: str) -> None:
        try:
            self._registry.unregister(name)
        except ValueError as error:
            raise KeyError(str(error)) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RegistryView of {self._registry!r}>"
