"""The condition manager: predicate table, tag structures and relay signalling.

This is the runtime half of AutoSynch (§5.2 and Fig. 7 of the paper).  For
every distinct predicate (identified by its canonical form after
globalization) the manager keeps a *predicate entry* holding the condition
variable its waiters block on.  Active entries are indexed by their tags:

* equivalence tags → per-shared-expression hash table keyed by the constant,
* threshold tags → per-shared-expression min-heap (``>``, ``>=``) and
  max-heap (``<``, ``<=``),
* everything else → an exhaustive-search list.

``relay_signal`` implements the relay signalling rule: find *one* waiting
thread whose predicate is currently true and notify it.  With ``use_tags``
disabled the manager degenerates into the paper's *AutoSynch-T* variant: the
same relay rule, but every active predicate is checked exhaustively.

Every search pass (``_relay_search``, ``relay_signal_fifo``,
``find_missed_waiter``) evaluates predicates through a fresh per-pass
:class:`~repro.predicates.evaluator.EvalContext`: the monitor lock is held
for the whole pass, so shared state cannot change mid-pass, and the context
memoizes shared-variable and shared-expression reads — a batch of N entries
over the same shared expression costs one read instead of N.  The context
also selects the evaluation engine (``eval_engine="compiled"`` for the
codegen closures of :mod:`repro.predicates.codegen`, ``"interpreted"`` for
the tree walker) and attributes per-engine counters to the monitor stats.

Two generalizations serve the pluggable signalling policies
(:mod:`repro.core.signalling`): ``signal_many(limit)`` amortizes one search
pass over up to *limit* wake-ups (the batched-relay policy), and
``relay_signal_fifo`` breaks ties among true predicates by the longest
waiting thread, using the per-waiter enqueue sequence numbers stamped by
``add_waiter`` (the FIFO-fair policy).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from repro.core.errors import MonitorUsageError
from repro.core.heaps import LOWER_BOUND_OPS, ThresholdHeap, UPPER_BOUND_OPS
from repro.core.instrumentation import MonitorStats
from repro.predicates import EvalContext, EvaluationError, TagKind
from repro.predicates.ast_nodes import Expr
from repro.predicates.codegen import DEFAULT_ENGINE, validate_engine
from repro.predicates.predicate import GlobalizedPredicate
from repro.runtime.api import Backend, ConditionAPI, LockAPI

__all__ = ["PredicateEntry", "ConditionManager"]

#: Default number of inactive complex predicates kept for reuse before the
#: oldest ones are evicted (the paper's "predefined threshold").
DEFAULT_INACTIVE_CAPACITY = 64


@dataclass
class PredicateEntry:
    """One row of the predicate table."""

    globalized: GlobalizedPredicate
    condition: ConditionAPI
    from_shared_predicate: bool
    waiters: int = 0
    pending_signals: int = 0
    active: bool = False
    #: Enqueue sequence numbers of the current waiters, oldest first
    #: (stamped by :meth:`ConditionManager.add_waiter`; used by the
    #: FIFO-fair relay policy to find the longest-waiting thread).
    waiter_seqs: Deque[int] = field(default_factory=deque)

    @property
    def canonical(self) -> str:
        return self.globalized.canonical

    @property
    def unsignalled_waiters(self) -> int:
        """Waiters that have not already been promised a signal."""
        return self.waiters - self.pending_signals

    @property
    def next_unsignalled_seq(self) -> Optional[int]:
        """Enqueue sequence of the oldest waiter without a promised signal.

        The first ``pending_signals`` sequence numbers belong to waiters a
        signal has already been promised to, so the candidate for the next
        signal is the one right after them (None when every waiter has been
        promised a signal already).
        """
        if self.pending_signals < len(self.waiter_seqs):
            return self.waiter_seqs[self.pending_signals]
        return None


@dataclass
class _ExpressionIndex:
    """Tag structures for one shared expression (one column of Fig. 7)."""

    expr_key: str
    shared_expr: Expr
    equivalence: Dict[object, List[PredicateEntry]] = field(default_factory=dict)
    lower_heap: ThresholdHeap = field(default_factory=lambda: ThresholdHeap("min"))
    upper_heap: ThresholdHeap = field(default_factory=lambda: ThresholdHeap("max"))

    def is_empty(self) -> bool:
        return not self.equivalence and not self.lower_heap and not self.upper_heap


class ConditionManager:
    """Maintains predicates, condition variables and tag structures for one monitor."""

    def __init__(
        self,
        owner: object,
        backend: Backend,
        lock: LockAPI,
        stats: MonitorStats,
        use_tags: bool = True,
        inactive_capacity: int = DEFAULT_INACTIVE_CAPACITY,
        tracer: Optional[object] = None,
        eval_engine: str = DEFAULT_ENGINE,
    ) -> None:
        self._owner = owner
        self._backend = backend
        self._lock = lock
        self._stats = stats
        self.use_tags = use_tags
        self.eval_engine = validate_engine(eval_engine)
        self._inactive_capacity = inactive_capacity
        self._tracer = tracer

        #: canonical form -> entry, for every predicate the manager knows.
        self._table: Dict[str, PredicateEntry] = {}
        #: entries with no waiters, eligible for reuse, oldest first.
        self._inactive: "OrderedDict[str, PredicateEntry]" = OrderedDict()
        #: per-shared-expression tag structures.
        self._indices: Dict[str, _ExpressionIndex] = {}
        #: active entries that need exhaustive checking (None-tagged
        #: conjunctions, or every entry when tags are disabled), keyed by
        #: canonical form in insertion order — O(1) add/remove instead of the
        #: list scans a plain list would need on every activate/deactivate.
        self._untagged: Dict[str, PredicateEntry] = {}
        #: monotonically increasing enqueue stamp handed to waiters.
        self._enqueue_seq: int = 0

    # ------------------------------------------------------------------
    # Registration / bookkeeping
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def known_predicates(self) -> Iterable[str]:
        """Canonical forms of every predicate currently in the table."""
        return tuple(self._table)

    def entry_for(self, canonical: str) -> Optional[PredicateEntry]:
        """Look up a predicate entry by canonical form (None if unknown)."""
        return self._table.get(canonical)

    def acquire_entry(
        self, globalized: GlobalizedPredicate, from_shared_predicate: bool
    ) -> PredicateEntry:
        """Return the entry for *globalized*, creating and activating it if needed.

        Entries are shared between threads waiting for syntactically
        equivalent predicates, so they also share a condition variable.
        """
        canonical = globalized.canonical
        entry = self._table.get(canonical)
        if entry is None:
            entry = PredicateEntry(
                globalized=globalized,
                condition=self._backend.create_condition(self._lock),
                from_shared_predicate=from_shared_predicate,
            )
            self._table[canonical] = entry
            self._stats.predicate_registrations += 1
            if self._tracer is not None:
                self._tracer.record(
                    "register", self._backend.current_id(), predicate=canonical
                )
        else:
            self._stats.predicate_reuses += 1
            self._inactive.pop(canonical, None)
        if not entry.active:
            self._activate(entry)
        return entry

    def add_waiter(self, entry: PredicateEntry) -> None:
        """Record that one more thread is about to wait on *entry*."""
        entry.waiters += 1
        self._enqueue_seq += 1
        entry.waiter_seqs.append(self._enqueue_seq)

    def remove_waiter(self, entry: PredicateEntry) -> None:
        """Record that a waiter left *entry*; deactivate it when none remain."""
        if entry.waiters <= 0:
            raise MonitorUsageError(
                f"waiter count underflow for predicate {entry.canonical!r}"
            )
        entry.waiters -= 1
        if entry.waiter_seqs:
            # The departing waiter is (approximately) the oldest one; waiters
            # on the same entry are interchangeable, so dropping the oldest
            # stamp keeps the FIFO ordering meaningful.
            entry.waiter_seqs.popleft()
        if entry.pending_signals > entry.waiters:
            entry.pending_signals = entry.waiters
        if entry.waiters == 0:
            self._deactivate(entry)

    def consume_signal(self, entry: PredicateEntry) -> None:
        """A waiter woke up and consumed one promised signal."""
        if entry.pending_signals > 0:
            entry.pending_signals -= 1

    def _activate(self, entry: PredicateEntry) -> None:
        with self._stats.time_bucket("tag_manager_time"):
            if not self.use_tags:
                self._untagged[entry.canonical] = entry
            else:
                for tag in entry.globalized.tags:
                    self._stats.tag_insertions += 1
                    if tag.kind is TagKind.EQUIVALENCE:
                        index = self._index_for(tag.expr_key, tag.shared_expr)
                        index.equivalence.setdefault(tag.key, []).append(entry)
                    elif tag.kind is TagKind.THRESHOLD:
                        index = self._index_for(tag.expr_key, tag.shared_expr)
                        if tag.op in LOWER_BOUND_OPS:
                            index.lower_heap.add(tag.key, tag.op, entry)
                        else:
                            index.upper_heap.add(tag.key, tag.op, entry)
                    else:
                        self._untagged[entry.canonical] = entry
            entry.active = True

    def _deactivate(self, entry: PredicateEntry) -> None:
        with self._stats.time_bucket("tag_manager_time"):
            if not self.use_tags:
                self._discard_untagged(entry)
            else:
                for tag in entry.globalized.tags:
                    self._stats.tag_removals += 1
                    if tag.kind is TagKind.EQUIVALENCE:
                        index = self._indices.get(tag.expr_key)
                        if index is not None:
                            bucket = index.equivalence.get(tag.key)
                            if bucket is not None:
                                if entry in bucket:
                                    bucket.remove(entry)
                                if not bucket:
                                    del index.equivalence[tag.key]
                            self._drop_index_if_empty(index)
                    elif tag.kind is TagKind.THRESHOLD:
                        index = self._indices.get(tag.expr_key)
                        if index is not None:
                            if tag.op in LOWER_BOUND_OPS:
                                index.lower_heap.discard(tag.key, tag.op, entry)
                            else:
                                index.upper_heap.discard(tag.key, tag.op, entry)
                            self._drop_index_if_empty(index)
                    else:
                        self._discard_untagged(entry)
            entry.active = False
            entry.pending_signals = 0
        self._retire(entry)

    def _discard_untagged(self, entry: PredicateEntry) -> None:
        self._untagged.pop(entry.canonical, None)

    def _drop_index_if_empty(self, index: _ExpressionIndex) -> None:
        if index.is_empty():
            self._indices.pop(index.expr_key, None)

    def _index_for(self, expr_key: str, shared_expr: Expr) -> _ExpressionIndex:
        index = self._indices.get(expr_key)
        if index is None:
            index = _ExpressionIndex(expr_key=expr_key, shared_expr=shared_expr)
            self._indices[expr_key] = index
        return index

    def _retire(self, entry: PredicateEntry) -> None:
        """Move a deactivated entry to the inactive list (complex predicates
        only) and evict the oldest entries beyond the configured capacity."""
        if entry.from_shared_predicate:
            # Shared predicates are static: they stay in the table forever.
            return
        self._inactive[entry.canonical] = entry
        self._inactive.move_to_end(entry.canonical)
        while len(self._inactive) > self._inactive_capacity:
            oldest_key, _ = self._inactive.popitem(last=False)
            self._table.pop(oldest_key, None)

    # ------------------------------------------------------------------
    # Relay signalling
    # ------------------------------------------------------------------

    def relay_signal(self) -> bool:
        """Signal one thread whose predicate is true, if any (relay rule).

        Returns True when a thread was signalled.  Must be called with the
        monitor lock held.
        """
        return self._relay_search(1) > 0

    def signal_many(self, limit: int) -> int:
        """Signal up to *limit* ready waiters in one search pass.

        The batched-relay primitive: a single walk over the tag structures
        (and the untagged entries) wakes every waiter whose predicate holds,
        up to *limit*, so the search cost is amortized over the batch.
        Returns the number of waiters signalled.  Like :meth:`relay_signal`,
        a return value of 0 means the search exhaustively established that
        no waiting predicate currently holds.
        """
        if limit < 1:
            raise ValueError(f"signal_many limit must be >= 1, got {limit}")
        return self._relay_search(limit)

    def _eval_context(self) -> EvalContext:
        """A fresh per-pass evaluation context (memoized shared reads)."""
        return EvalContext(self._owner, engine=self.eval_engine, stats=self._stats)

    def _relay_search(self, limit: int) -> int:
        self._stats.relay_signal_calls += 1
        with self._stats.time_bucket("relay_signal_time"):
            ctx = self._eval_context()
            signalled = 0
            if self.use_tags:
                for index in self._indices.values():
                    signalled += self._search_index(index, limit - signalled, ctx)
                    if signalled >= limit:
                        break
            if signalled < limit:
                signalled += self._search_untagged(limit - signalled, ctx)
        if self._tracer is not None:
            self._tracer.record(
                "relay",
                self._backend.current_id(),
                detail=f"signalled {signalled}" if signalled else "no waiter ready",
            )
        return signalled

    def relay_signal_fifo(self) -> bool:
        """Signal the true-predicate entry with the longest-waiting thread.

        The FIFO-fair relay primitive: evaluates every active predicate with
        un-signalled waiters and, among the true ones, signals the entry
        whose oldest un-promised waiter has the smallest enqueue sequence
        number.  Exhaustive by construction (no tag pruning), so relay
        invariance holds exactly as for :meth:`relay_signal`.
        """
        self._stats.relay_signal_calls += 1
        with self._stats.time_bucket("relay_signal_time"):
            ctx = self._eval_context()
            best: Optional[PredicateEntry] = None
            best_seq: Optional[int] = None
            # Without tags every active entry lives in _untagged, which skips
            # the retired/shared entries _table keeps around; with tags the
            # table is the only complete view.
            entries = (
                self._table.values() if self.use_tags else self._untagged.values()
            )
            for entry in entries:
                if not entry.active or entry.unsignalled_waiters <= 0:
                    continue
                self._stats.exhaustive_checks += 1
                self._stats.predicate_evaluations += 1
                if not ctx.holds(entry.globalized):
                    continue
                seq = entry.next_unsignalled_seq
                if best is None or (
                    seq is not None and (best_seq is None or seq < best_seq)
                ):
                    best, best_seq = entry, seq
            if best is not None:
                self._signal(best)
        if self._tracer is not None:
            self._tracer.record(
                "relay",
                self._backend.current_id(),
                detail=(
                    f"signalled (fifo seq {best_seq})" if best is not None
                    else "no waiter ready"
                ),
            )
        return best is not None

    def find_missed_waiter(self) -> Optional[PredicateEntry]:
        """Exhaustively look for a waiting predicate that is true but has no
        pending signal.

        Used by the monitor's ``validate`` mode: right after ``relay_signal``
        returned False, a non-None result here means the tag structures
        pruned away a predicate they should not have — a violation of the
        soundness property behind relay invariance.
        """
        # A stats-less context: the validate-mode recheck is diagnostic and
        # must not skew the engine-attribution counters (which would break
        # the invariant compiled + interpreted == predicate_evaluations).
        ctx = EvalContext(self._owner, engine=self.eval_engine)
        for entry in self._table.values():
            if not entry.active or entry.unsignalled_waiters <= 0:
                continue
            if ctx.holds(entry.globalized):
                return entry
        return None

    # -- tag-directed search -------------------------------------------------

    def _search_index(
        self, index: _ExpressionIndex, limit: int, ctx: EvalContext
    ) -> int:
        try:
            value = ctx.evaluate_shared(index.shared_expr, index.expr_key)
        except EvaluationError:
            # The shared expression cannot currently be evaluated (e.g. a
            # field was deleted); fall back to exhaustive search for safety.
            return 0

        signalled = 0
        if index.equivalence:
            self._stats.tag_hash_lookups += 1
            bucket = self._equivalence_bucket(index, value)
            if bucket:
                signalled += self._signal_true(bucket, limit, ctx)
        if signalled < limit:
            signalled += self._search_heap(
                index.lower_heap, value, limit - signalled, ctx
            )
        if signalled < limit:
            signalled += self._search_heap(
                index.upper_heap, value, limit - signalled, ctx
            )
        return signalled

    def _equivalence_bucket(
        self, index: _ExpressionIndex, value: object
    ) -> Optional[List[PredicateEntry]]:
        try:
            return index.equivalence.get(value)
        except TypeError:  # unhashable shared-expression value
            return None

    def _search_heap(
        self, heap: ThresholdHeap, value: object, limit: int, ctx: EvalContext
    ) -> int:
        """The threshold-tag signalling algorithm of Fig. 4."""
        if not heap:
            return 0
        backup = []
        signalled = 0
        try:
            node = heap.peek()
            while node is not None and signalled < limit:
                self._stats.tag_heap_checks += 1
                try:
                    satisfied = node.satisfied_by(value)
                except TypeError:
                    satisfied = False
                if not satisfied:
                    break
                signalled += self._signal_true(node.entries, limit - signalled, ctx)
                if signalled >= limit:
                    break
                # The tag is true but its predicates yielded no more waiters;
                # remove it temporarily so the next-weakest tag can be
                # examined.
                backup.append(heap.poll())
                node = heap.peek()
        finally:
            for node in backup:
                heap.push_node(node)
        return signalled

    # -- exhaustive search ---------------------------------------------------

    def _search_untagged(self, limit: int, ctx: EvalContext) -> int:
        return self._signal_true(
            self._untagged.values(), limit, ctx, count_as_exhaustive=True
        )

    def _signal_true(
        self,
        entries: Iterable[PredicateEntry],
        limit: int,
        ctx: EvalContext,
        count_as_exhaustive: bool = False,
    ) -> int:
        """Signal waiters of true-predicate entries, up to *limit* in total.

        An entry whose predicate holds may receive several of the batch's
        signals — one per un-promised waiter — since every one of those
        waiters is ready by the same evaluation.  Signalling never mutates
        the tag structures (deactivation happens when the woken waiter
        re-acquires the lock), so iterating the live containers is safe.
        """
        signalled = 0
        for entry in entries:
            if signalled >= limit:
                break
            if not entry.active or entry.unsignalled_waiters <= 0:
                continue
            if count_as_exhaustive:
                self._stats.exhaustive_checks += 1
            self._stats.predicate_evaluations += 1
            if ctx.holds(entry.globalized):
                wake = min(entry.unsignalled_waiters, limit - signalled)
                for _ in range(wake):
                    self._signal(entry)
                signalled += wake
        return signalled

    def _signal(self, entry: PredicateEntry) -> None:
        entry.condition.notify()
        entry.pending_signals += 1
        self._stats.signals_sent += 1
        if self._tracer is not None:
            self._tracer.record(
                "signal", self._backend.current_id(), predicate=entry.canonical
            )
