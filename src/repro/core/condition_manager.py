"""The condition manager: predicate table, tag structures and relay signalling.

This is the runtime half of AutoSynch (§5.2 and Fig. 7 of the paper).  For
every distinct predicate (identified by its canonical form after
globalization) the manager keeps a *predicate entry* holding the condition
variable its waiters block on.  Active entries are indexed by their tags:

* equivalence tags → per-shared-expression hash table keyed by the constant,
* threshold tags → per-shared-expression min-heap (``>``, ``>=``) and
  max-heap (``<``, ``<=``),
* everything else → an exhaustive-search list.

``relay_signal`` implements the relay signalling rule: find *one* waiting
thread whose predicate is currently true and notify it.  With ``use_tags``
disabled the manager degenerates into the paper's *AutoSynch-T* variant: the
same relay rule, but every active predicate is checked exhaustively.

Every search pass (``_relay_search``, ``relay_signal_fifo``,
``find_missed_waiter``) evaluates predicates through a per-pass
:class:`~repro.predicates.evaluator.EvalContext` — a single pooled instance
reset per pass, so the relay loop does not allocate one (plus its two memo
dicts) per hand-off: the monitor lock is held
for the whole pass, so shared state cannot change mid-pass, and the context
memoizes shared-variable and shared-expression reads — a batch of N entries
over the same shared expression costs one read instead of N.  The context
also selects the evaluation engine (``eval_engine="compiled"`` for the
codegen closures of :mod:`repro.predicates.codegen`, ``"interpreted"`` for
the tree walker) and attributes per-engine counters to the monitor stats.

Two generalizations serve the pluggable signalling policies
(:mod:`repro.core.signalling`): ``signal_many(limit)`` amortizes one search
pass over up to *limit* wake-ups (the batched-relay policy), and
``relay_signal_fifo`` breaks ties among true predicates by the longest
waiting thread, using the per-waiter enqueue sequence numbers stamped by
``add_waiter`` (the FIFO-fair policy).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

from repro.core.errors import MonitorUsageError
from repro.core.heaps import LOWER_BOUND_OPS, ThresholdHeap, UPPER_BOUND_OPS
from repro.core.instrumentation import MonitorStats
from repro.core.write_tracking import SCALAR_TYPES, WriteTracker
from repro.predicates import EvalContext, EvaluationError, TagKind
from repro.predicates.ast_nodes import Expr
from repro.predicates.codegen import DEFAULT_ENGINE, validate_engine
from repro.predicates.evaluator import _EMPTY_LOCALS
from repro.predicates.predicate import GlobalizedPredicate
from repro.runtime.api import Backend, ConditionAPI, LockAPI

__all__ = ["PredicateEntry", "ConditionManager"]

#: Default number of inactive complex predicates kept for reuse before the
#: oldest ones are evicted (the paper's "predefined threshold").
DEFAULT_INACTIVE_CAPACITY = 64

#: Candidates per fused-batch evaluation round.  Chunking preserves the
#: early-stopping character of the search: a batch pass never evaluates more
#: than one chunk beyond the entry that satisfied the signal limit.
BATCH_CHUNK = 64


@dataclass
class PredicateEntry:
    """One row of the predicate table."""

    globalized: GlobalizedPredicate
    condition: ConditionAPI
    from_shared_predicate: bool
    waiters: int = 0
    pending_signals: int = 0
    active: bool = False
    #: Enqueue sequence numbers of the current waiters, oldest first
    #: (stamped by :meth:`ConditionManager.add_waiter`; used by the
    #: FIFO-fair relay policy to find the longest-waiting thread).
    waiter_seqs: Deque[int] = field(default_factory=deque)
    #: Activation stamp; searches over dirty-set candidates sort by it so
    #: the incremental path visits entries in the same order the exhaustive
    #: path would (insertion order of ``_untagged``).
    order_seq: int = 0
    #: Write-tracker clock at this entry's last false evaluation, or None
    #: when the entry has never been (cleanly) evaluated false since it was
    #: activated.  While no name in ``tracked_names`` is written past this
    #: clock, the predicate is still false and the search may skip it.
    seen_clock: Optional[int] = None
    #: The shared names bounding this predicate's reads, or None when they
    #: do not bound it (monitor query calls) — None entries are never
    #: skipped and never marked clean.
    tracked_names: Optional[frozenset] = None

    @property
    def canonical(self) -> str:
        return self.globalized.canonical

    @property
    def unsignalled_waiters(self) -> int:
        """Waiters that have not already been promised a signal."""
        return self.waiters - self.pending_signals

    @property
    def next_unsignalled_seq(self) -> Optional[int]:
        """Enqueue sequence of the oldest waiter without a promised signal.

        The first ``pending_signals`` sequence numbers belong to waiters a
        signal has already been promised to, so the candidate for the next
        signal is the one right after them (None when every waiter has been
        promised a signal already).
        """
        if self.pending_signals < len(self.waiter_seqs):
            return self.waiter_seqs[self.pending_signals]
        return None


@dataclass
class _ExpressionIndex:
    """Tag structures for one shared expression (one column of Fig. 7)."""

    expr_key: str
    shared_expr: Expr
    equivalence: Dict[object, List[PredicateEntry]] = field(default_factory=dict)
    lower_heap: ThresholdHeap = field(default_factory=lambda: ThresholdHeap("min"))
    upper_heap: ThresholdHeap = field(default_factory=lambda: ThresholdHeap("max"))

    def is_empty(self) -> bool:
        return not self.equivalence and not self.lower_heap and not self.upper_heap


class ConditionManager:
    """Maintains predicates, condition variables and tag structures for one monitor."""

    def __init__(
        self,
        owner: object,
        backend: Backend,
        lock: LockAPI,
        stats: MonitorStats,
        use_tags: bool = True,
        inactive_capacity: int = DEFAULT_INACTIVE_CAPACITY,
        tracer: Optional[object] = None,
        eval_engine: str = DEFAULT_ENGINE,
        write_tracker: Optional[WriteTracker] = None,
    ) -> None:
        self._owner = owner
        self._backend = backend
        self._lock = lock
        self._stats = stats
        self.use_tags = use_tags
        self.eval_engine = validate_engine(eval_engine)
        self._inactive_capacity = inactive_capacity
        self._tracer = tracer
        # Incremental relay needs both a tracker (the monitor supports and
        # wants write tracking) and the compiled engine; the interpreted
        # engine stays a pure exhaustive baseline for the ablation study.
        self._tracker = (
            write_tracker
            if write_tracker is not None and self.eval_engine == "compiled"
            else None
        )
        #: Names the owning monitor class declares it writes through tracked
        #: stores (scenario-compiled monitors); reads of these never need the
        #: scalar-type check in :meth:`_mark_clean`.
        self._declared_tracked = frozenset(
            getattr(type(owner), "_tracked_write_names", None) or ()
        )

        #: canonical form -> entry, for every predicate the manager knows.
        self._table: Dict[str, PredicateEntry] = {}
        #: entries with no waiters, eligible for reuse, oldest first.
        self._inactive: "OrderedDict[str, PredicateEntry]" = OrderedDict()
        #: per-shared-expression tag structures.
        self._indices: Dict[str, _ExpressionIndex] = {}
        #: active entries that need exhaustive checking (None-tagged
        #: conjunctions, or every entry when tags are disabled), keyed by
        #: canonical form in insertion order — O(1) add/remove instead of the
        #: list scans a plain list would need on every activate/deactivate.
        self._untagged: Dict[str, PredicateEntry] = {}
        #: count of active entries — the relay search's O(1) emptiness
        #: check, so monitor exits with nobody waiting skip the whole pass.
        self._active_count: int = 0
        #: monotonically increasing enqueue stamp handed to waiters.
        self._enqueue_seq: int = 0
        #: monotonically increasing activation stamp (see PredicateEntry.order_seq).
        self._order_seq: int = 0
        #: Incremental-search state (used only when ``self._tracker`` is set).
        #: ``_untagged_pending`` holds the untagged entries that may be true —
        #: never evaluated, last seen true, or written since last seen false.
        #: A search pass drains the tracker's dirty names, merges the touched
        #: ``_untagged_by_name`` buckets in, and evaluates only the pending
        #: set; entries proved false (and cleanly trackable) leave it.
        self._untagged_pending: Dict[str, PredicateEntry] = {}
        #: shared name -> {canonical -> entry} for active untagged entries.
        self._untagged_by_name: Dict[str, Dict[str, PredicateEntry]] = {}
        #: Pooled per-pass evaluation context: relay passes run back to back
        #: under the monitor lock, so one reusable context (reset per pass)
        #: replaces a context + two dict allocations per pass.  The in-use
        #: flag covers re-entrant passes (a predicate whose query method
        #: somehow triggers another search) by falling back to a fresh one.
        self._pooled_ctx: Optional[EvalContext] = None
        self._pooled_ctx_busy = False

    # ------------------------------------------------------------------
    # Registration / bookkeeping
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    @property
    def incremental(self) -> bool:
        """True when dirty-set (incremental) relay search is engaged."""
        return self._tracker is not None

    def known_predicates(self) -> Iterable[str]:
        """Canonical forms of every predicate currently in the table."""
        return tuple(self._table)

    def entry_for(self, canonical: str) -> Optional[PredicateEntry]:
        """Look up a predicate entry by canonical form (None if unknown)."""
        return self._table.get(canonical)

    def acquire_entry(
        self, globalized: GlobalizedPredicate, from_shared_predicate: bool
    ) -> PredicateEntry:
        """Return the entry for *globalized*, creating and activating it if needed.

        Entries are shared between threads waiting for syntactically
        equivalent predicates, so they also share a condition variable.
        """
        canonical = globalized.canonical
        entry = self._table.get(canonical)
        if entry is None:
            entry = PredicateEntry(
                globalized=globalized,
                condition=self._backend.create_condition(self._lock),
                from_shared_predicate=from_shared_predicate,
            )
            self._table[canonical] = entry
            self._stats.predicate_registrations += 1
            if self._tracer is not None:
                self._tracer.record(
                    "register", self._backend.current_id(), predicate=canonical
                )
        else:
            self._stats.predicate_reuses += 1
            self._inactive.pop(canonical, None)
        if not entry.active:
            self._activate(entry)
        return entry

    def add_waiter(self, entry: PredicateEntry) -> None:
        """Record that one more thread is about to wait on *entry*."""
        entry.waiters += 1
        self._enqueue_seq += 1
        entry.waiter_seqs.append(self._enqueue_seq)

    def remove_waiter(self, entry: PredicateEntry) -> None:
        """Record that a waiter left *entry*; deactivate it when none remain."""
        if entry.waiters <= 0:
            raise MonitorUsageError(
                f"waiter count underflow for predicate {entry.canonical!r}"
            )
        entry.waiters -= 1
        if entry.waiter_seqs:
            # The departing waiter is (approximately) the oldest one; waiters
            # on the same entry are interchangeable, so dropping the oldest
            # stamp keeps the FIFO ordering meaningful.
            entry.waiter_seqs.popleft()
        if entry.pending_signals > entry.waiters:
            entry.pending_signals = entry.waiters
        if entry.waiters == 0:
            self._deactivate(entry)

    def consume_signal(self, entry: PredicateEntry) -> None:
        """A waiter woke up and consumed one promised signal."""
        if entry.pending_signals > 0:
            entry.pending_signals -= 1

    def _activate(self, entry: PredicateEntry) -> None:
        with self._stats.time_bucket("tag_manager_time"):
            self._order_seq += 1
            entry.order_seq = self._order_seq
            if self._tracker is not None:
                # A reactivated entry may be reusing a retired table row, so
                # any cleanliness recorded in a previous life is void.
                entry.seen_clock = None
                globalized = entry.globalized
                entry.tracked_names = (
                    None if globalized.uses_queries() else globalized.read_set()
                )
            if not self.use_tags:
                self._add_untagged(entry)
            else:
                for tag in entry.globalized.tags:
                    self._stats.tag_insertions += 1
                    if tag.kind is TagKind.EQUIVALENCE:
                        index = self._index_for(tag.expr_key, tag.shared_expr)
                        index.equivalence.setdefault(tag.key, []).append(entry)
                    elif tag.kind is TagKind.THRESHOLD:
                        index = self._index_for(tag.expr_key, tag.shared_expr)
                        if tag.op in LOWER_BOUND_OPS:
                            index.lower_heap.add(tag.key, tag.op, entry)
                        else:
                            index.upper_heap.add(tag.key, tag.op, entry)
                    else:
                        self._add_untagged(entry)
            entry.active = True
            self._active_count += 1

    def _deactivate(self, entry: PredicateEntry) -> None:
        with self._stats.time_bucket("tag_manager_time"):
            if not self.use_tags:
                self._discard_untagged(entry)
            else:
                for tag in entry.globalized.tags:
                    self._stats.tag_removals += 1
                    if tag.kind is TagKind.EQUIVALENCE:
                        index = self._indices.get(tag.expr_key)
                        if index is not None:
                            bucket = index.equivalence.get(tag.key)
                            if bucket is not None:
                                if entry in bucket:
                                    bucket.remove(entry)
                                if not bucket:
                                    del index.equivalence[tag.key]
                            self._drop_index_if_empty(index)
                    elif tag.kind is TagKind.THRESHOLD:
                        index = self._indices.get(tag.expr_key)
                        if index is not None:
                            if tag.op in LOWER_BOUND_OPS:
                                index.lower_heap.discard(tag.key, tag.op, entry)
                            else:
                                index.upper_heap.discard(tag.key, tag.op, entry)
                            self._drop_index_if_empty(index)
                    else:
                        self._discard_untagged(entry)
            entry.active = False
            entry.pending_signals = 0
            self._active_count -= 1
        self._retire(entry)

    def _add_untagged(self, entry: PredicateEntry) -> None:
        canonical = entry.canonical
        self._untagged[canonical] = entry
        if self._tracker is None:
            return
        # A freshly activated entry has never been evaluated, so it starts
        # pending; name-bucket membership lets later writes re-pend it.
        self._untagged_pending[canonical] = entry
        names = entry.tracked_names
        if names:
            by_name = self._untagged_by_name
            for name in names:
                by_name.setdefault(name, {})[canonical] = entry

    def _discard_untagged(self, entry: PredicateEntry) -> None:
        canonical = entry.canonical
        self._untagged.pop(canonical, None)
        if self._tracker is None:
            return
        self._untagged_pending.pop(canonical, None)
        names = entry.tracked_names
        if names:
            by_name = self._untagged_by_name
            for name in names:
                bucket = by_name.get(name)
                if bucket is not None:
                    bucket.pop(canonical, None)
                    if not bucket:
                        del by_name[name]

    def _drop_index_if_empty(self, index: _ExpressionIndex) -> None:
        if index.is_empty():
            self._indices.pop(index.expr_key, None)

    def _index_for(self, expr_key: str, shared_expr: Expr) -> _ExpressionIndex:
        index = self._indices.get(expr_key)
        if index is None:
            index = _ExpressionIndex(expr_key=expr_key, shared_expr=shared_expr)
            self._indices[expr_key] = index
        return index

    def _retire(self, entry: PredicateEntry) -> None:
        """Move a deactivated entry to the inactive list (complex predicates
        only) and evict the oldest entries beyond the configured capacity."""
        if entry.from_shared_predicate:
            # Shared predicates are static: they stay in the table forever.
            return
        self._inactive[entry.canonical] = entry
        self._inactive.move_to_end(entry.canonical)
        while len(self._inactive) > self._inactive_capacity:
            oldest_key, _ = self._inactive.popitem(last=False)
            self._table.pop(oldest_key, None)

    # ------------------------------------------------------------------
    # Relay signalling
    # ------------------------------------------------------------------

    def relay_signal(self) -> bool:
        """Signal one thread whose predicate is true, if any (relay rule).

        Returns True when a thread was signalled.  Must be called with the
        monitor lock held.
        """
        return self._relay_search(1) > 0

    def signal_many(self, limit: int) -> int:
        """Signal up to *limit* ready waiters in one search pass.

        The batched-relay primitive: a single walk over the tag structures
        (and the untagged entries) wakes every waiter whose predicate holds,
        up to *limit*, so the search cost is amortized over the batch.
        Returns the number of waiters signalled.  Like :meth:`relay_signal`,
        a return value of 0 means the search exhaustively established that
        no waiting predicate currently holds.
        """
        if limit < 1:
            raise ValueError(f"signal_many limit must be >= 1, got {limit}")
        return self._relay_search(limit)

    def _eval_context(self) -> EvalContext:
        """The per-pass evaluation context (memoized shared reads).

        Normally the manager's pooled instance, reset for this pass; a
        fresh context only when the pool is mid-pass (re-entrant search) —
        release with :meth:`_release_context` when the pass ends.
        """
        ctx = self._pooled_ctx
        if ctx is not None and not self._pooled_ctx_busy:
            self._pooled_ctx_busy = True
            ctx.reset()
            return ctx
        self._stats.eval_context_allocations += 1
        ctx = EvalContext(self._owner, engine=self.eval_engine, stats=self._stats)
        if self._pooled_ctx is None:
            self._pooled_ctx = ctx
            self._pooled_ctx_busy = True
        return ctx

    def _release_context(self, ctx: EvalContext) -> None:
        """Return a context obtained from :meth:`_eval_context` to the pool."""
        if ctx is self._pooled_ctx:
            self._pooled_ctx_busy = False

    def _relay_search(self, limit: int) -> int:
        self._stats.relay_signal_calls += 1
        if self._active_count == 0:
            # Nobody is waiting on anything: the pass is trivially
            # exhaustive.  Monitor exits vastly outnumber waits in most
            # workloads, so skipping the context/timing machinery here is
            # a measurable win per monitor operation.
            return 0
        with self._stats.time_bucket("relay_signal_time"):
            ctx = self._eval_context()
            try:
                signalled = self._relay_search_pass(limit, ctx)
            finally:
                self._release_context(ctx)
        if self._tracer is not None:
            self._tracer.record(
                "relay",
                self._backend.current_id(),
                detail=f"signalled {signalled}" if signalled else "no waiter ready",
            )
        return signalled

    def _relay_search_pass(self, limit: int, ctx: EvalContext) -> int:
        signalled = 0
        if self.use_tags:
            for index in self._indices.values():
                signalled += self._search_index(index, limit - signalled, ctx)
                if signalled >= limit:
                    break
        if signalled < limit:
            signalled += self._search_untagged(limit - signalled, ctx)
        return signalled

    def relay_signal_fifo(self) -> bool:
        """Signal the true-predicate entry with the longest-waiting thread.

        The FIFO-fair relay primitive: evaluates every active predicate with
        un-signalled waiters and, among the true ones, signals the entry
        whose oldest un-promised waiter has the smallest enqueue sequence
        number.  No tag pruning, but with a write tracker the pass still
        skips entries proved false and untouched since — skipping known-false
        entries cannot change which true entry wins the tie-break, so relay
        invariance holds exactly as for :meth:`relay_signal`.
        """
        self._stats.relay_signal_calls += 1
        if self._active_count == 0:
            return False  # nobody waiting: trivially exhaustive
        with self._stats.time_bucket("relay_signal_time"):
            ctx = self._eval_context()
            try:
                best: Optional[PredicateEntry] = None
                best_seq: Optional[int] = None
                incremental = self._tracker is not None and not self.use_tags
                if incremental:
                    entries, clock = self._untagged_candidates()
                    self._stats.relay_entries_skipped += (
                        len(self._untagged) - len(entries)
                    )
                else:
                    clock = 0
                    # Without tags every active entry lives in _untagged, which
                    # skips the retired/shared entries _table keeps around; with
                    # tags the table is the only complete view.
                    entries = (
                        self._table.values() if self.use_tags else self._untagged.values()
                    )
                for entry in entries:
                    if not entry.active or entry.unsignalled_waiters <= 0:
                        continue
                    self._stats.exhaustive_checks += 1
                    self._stats.predicate_evaluations += 1
                    if not ctx.holds(entry.globalized):
                        if incremental:
                            self._mark_clean(entry, ctx, clock)
                        continue
                    seq = entry.next_unsignalled_seq
                    if best is None or (
                        seq is not None and (best_seq is None or seq < best_seq)
                    ):
                        best, best_seq = entry, seq
                if best is not None:
                    self._signal(best)
            finally:
                self._release_context(ctx)
        if self._tracer is not None:
            self._tracer.record(
                "relay",
                self._backend.current_id(),
                detail=(
                    f"signalled (fifo seq {best_seq})" if best is not None
                    else "no waiter ready"
                ),
            )
        return best is not None

    def find_missed_waiter(
        self, include_promised: bool = False
    ) -> Optional[PredicateEntry]:
        """Exhaustively look for a waiting predicate that is true but has no
        pending signal.

        Used by the monitor's ``validate`` mode: right after ``relay_signal``
        returned False, a non-None result here means the tag structures
        pruned away a predicate they should not have — a violation of the
        soundness property behind relay invariance.

        With ``include_promised`` every entry with waiters qualifies, even
        when each waiter has already been promised a signal — the
        self-healing path uses this because a promised signal may have been
        lost in flight (a dropped notification), in which case the promise
        will never be honoured.
        """
        # A stats-less context: the validate-mode recheck is diagnostic and
        # must not skew the engine-attribution counters (which would break
        # the invariant compiled + interpreted == predicate_evaluations).
        ctx = EvalContext(self._owner, engine=self.eval_engine)
        for entry in self._table.values():
            if not entry.active:
                continue
            pool = entry.waiters if include_promised else entry.unsignalled_waiters
            if pool <= 0:
                continue
            if ctx.holds(entry.globalized):
                return entry
        return None

    def demote_to_exhaustive(self) -> None:
        """Permanently disable dirty-set search for this manager.

        The self-healing path calls this when the write tracker can no
        longer be trusted (a deadlock was reached while an entry the tracker
        skipped had a true predicate): the tracker is dropped, the
        incremental bookkeeping is cleared and every entry's recorded
        cleanliness is voided, so every future pass is a full exhaustive
        search — the always-sound fallback.
        """
        self._tracker = None
        self._untagged_pending.clear()
        self._untagged_by_name.clear()
        for entry in self._table.values():
            entry.seen_clock = None

    # -- tag-directed search -------------------------------------------------

    def _search_index(
        self, index: _ExpressionIndex, limit: int, ctx: EvalContext
    ) -> int:
        try:
            value = ctx.evaluate_shared(index.shared_expr, index.expr_key)
        except EvaluationError:
            # The shared expression cannot currently be evaluated (e.g. a
            # field was deleted); fall back to exhaustive search for safety.
            return 0

        signalled = 0
        if index.equivalence:
            self._stats.tag_hash_lookups += 1
            bucket = self._equivalence_bucket(index, value)
            if bucket:
                signalled += self._signal_true(bucket, limit, ctx)
        if signalled < limit:
            signalled += self._search_heap(
                index.lower_heap, value, limit - signalled, ctx
            )
        if signalled < limit:
            signalled += self._search_heap(
                index.upper_heap, value, limit - signalled, ctx
            )
        return signalled

    def _equivalence_bucket(
        self, index: _ExpressionIndex, value: object
    ) -> Optional[List[PredicateEntry]]:
        try:
            return index.equivalence.get(value)
        except TypeError:  # unhashable shared-expression value
            return None

    def _search_heap(
        self, heap: ThresholdHeap, value: object, limit: int, ctx: EvalContext
    ) -> int:
        """The threshold-tag signalling algorithm of Fig. 4."""
        if not heap:
            return 0
        backup = []
        signalled = 0
        try:
            node = heap.peek()
            while node is not None and signalled < limit:
                self._stats.tag_heap_checks += 1
                try:
                    satisfied = node.satisfied_by(value)
                except TypeError:
                    satisfied = False
                if not satisfied:
                    break
                signalled += self._signal_true(node.entries, limit - signalled, ctx)
                if signalled >= limit:
                    break
                # The tag is true but its predicates yielded no more waiters;
                # remove it temporarily so the next-weakest tag can be
                # examined.
                backup.append(heap.poll())
                node = heap.peek()
        finally:
            for node in backup:
                heap.push_node(node)
        return signalled

    # -- exhaustive / dirty-set search ---------------------------------------

    def _search_untagged(self, limit: int, ctx: EvalContext) -> int:
        if self._tracker is None:
            return self._signal_true(
                self._untagged.values(), limit, ctx, count_as_exhaustive=True
            )
        ordered, clock = self._untagged_candidates()
        self._stats.relay_entries_skipped += len(self._untagged) - len(ordered)
        eligible = [
            entry
            for entry in ordered
            if entry.active and entry.unsignalled_waiters > 0
        ]
        if not eligible:
            return 0
        return self._signal_candidates(
            eligible, limit, ctx, count_as_exhaustive=True, clock=clock
        )

    def _untagged_candidates(self) -> tuple:
        """Drain dirty names into the pending set and return it in order.

        Returns ``(entries, clock)`` where *entries* are the pending untagged
        entries sorted by activation order (matching the insertion order an
        exhaustive walk over ``_untagged`` would use) and *clock* is the
        tracker clock the whole pass evaluates at (shared state cannot change
        mid-pass: the monitor lock is held).
        """
        tracker = self._tracker
        clock = tracker.clock
        dirty = tracker.drain()
        pending = self._untagged_pending
        if dirty:
            by_name = self._untagged_by_name
            for name in dirty:
                bucket = by_name.get(name)
                if bucket:
                    pending.update(bucket)
        if not pending:
            return [], clock
        ordered = sorted(pending.values(), key=lambda e: e.order_seq)
        return ordered, clock

    def _signal_true(
        self,
        entries: Iterable[PredicateEntry],
        limit: int,
        ctx: EvalContext,
        count_as_exhaustive: bool = False,
    ) -> int:
        """Signal waiters of true-predicate entries, up to *limit* in total.

        An entry whose predicate holds may receive several of the batch's
        signals — one per un-promised waiter — since every one of those
        waiters is ready by the same evaluation.  Signalling never mutates
        the tag structures (deactivation happens when the woken waiter
        re-acquires the lock), so iterating the live containers is safe.

        With a write tracker, entries evaluated false at some earlier clock
        and untouched since are skipped outright (they are still false), and
        entries evaluated false now are marked clean at the current clock.
        """
        tracker = self._tracker
        candidates: List[PredicateEntry] = []
        skipped = 0
        for entry in entries:
            if not entry.active or entry.unsignalled_waiters <= 0:
                continue
            if tracker is not None and self._is_clean(entry):
                skipped += 1
                continue
            candidates.append(entry)
        if skipped:
            self._stats.relay_entries_skipped += skipped
        if not candidates:
            return 0
        clock = tracker.clock if tracker is not None else 0
        return self._signal_candidates(
            candidates, limit, ctx, count_as_exhaustive, clock
        )

    def _is_clean(self, entry: PredicateEntry) -> bool:
        """True when *entry* was false at ``seen_clock`` and no tracked name
        has been written since (so it is still false)."""
        seen = entry.seen_clock
        if seen is None:
            return False
        names = entry.tracked_names
        if names is None:
            return False
        versions = self._tracker.versions
        for name in names:
            if versions.get(name, 0) > seen:
                return False
        return True

    def _mark_clean(self, entry: PredicateEntry, ctx: EvalContext, clock: int) -> None:
        """Record that *entry* evaluated false at *clock*, if that is sound.

        Cleanliness is only recorded when every shared name the predicate
        reads either is a declared tracked store (scenario-compiled monitors)
        or currently holds an immutable scalar — an in-place mutation of a
        list/dict/set field never goes through ``__setattr__``, so container
        fields cannot be trusted to stay unchanged.
        """
        names = entry.tracked_names
        if names is None:
            return
        declared = self._declared_tracked
        owner = self._owner
        for name in names:
            if name in declared:
                continue
            try:
                value = ctx.read_shared(owner, name)
            except EvaluationError:
                return
            if type(value) not in SCALAR_TYPES:
                return
        entry.seen_clock = clock
        self._untagged_pending.pop(entry.canonical, None)

    def _signal_candidates(
        self,
        candidates: List[PredicateEntry],
        limit: int,
        ctx: EvalContext,
        count_as_exhaustive: bool,
        clock: int,
    ) -> int:
        """Evaluate *candidates* (already filtered) and signal the true ones.

        When several candidates are evaluated per pass (``limit > 1``) and
        the compiled engine is active, candidates are grouped by predicate
        *shape* and each group is evaluated through one fused batch closure
        (see :func:`repro.predicates.codegen.compile_batch`) — one generated
        loop sharing one EvalContext instead of one call per predicate.
        Chunking bounds how far past the limit a batch may evaluate;
        falseness established beyond the limit is still recorded as clean.
        """
        stats = self._stats
        tracker = self._tracker
        signalled = 0
        use_batch = (
            limit > 1 and len(candidates) > 1 and self.eval_engine == "compiled"
        )
        for start in range(0, len(candidates), BATCH_CHUNK):
            if signalled >= limit:
                break
            chunk = candidates[start:start + BATCH_CHUNK]
            if use_batch and len(chunk) > 1:
                results = self._batch_evaluate(chunk, ctx, count_as_exhaustive)
            else:
                results = [None] * len(chunk)
            for entry, result in zip(chunk, results):
                if signalled >= limit:
                    if result is False and tracker is not None:
                        self._mark_clean(entry, ctx, clock)
                    continue
                if result is None:
                    if count_as_exhaustive:
                        stats.exhaustive_checks += 1
                    stats.predicate_evaluations += 1
                    result = ctx.holds(entry.globalized)
                if result:
                    wake = min(entry.unsignalled_waiters, limit - signalled)
                    self._signal_n(entry, wake)
                    signalled += wake
                elif tracker is not None:
                    self._mark_clean(entry, ctx, clock)
        return signalled

    def _batch_evaluate(
        self,
        chunk: List[PredicateEntry],
        ctx: EvalContext,
        count_as_exhaustive: bool,
    ) -> List[Optional[bool]]:
        """Evaluate *chunk* through fused batch closures where possible.

        Returns one result slot per entry; None means "not handled here" and
        the caller falls back to per-entry evaluation (codegen declined the
        shape, the group had a single row, or the batch call raised — the
        per-entry retry then reproduces the exact failing predicate).
        Counters are bumped only for rows a batch actually answered.
        """
        results: List[Optional[bool]] = [None] * len(chunk)
        groups: Dict[object, List[tuple]] = {}
        for i, entry in enumerate(chunk):
            form = entry.globalized.batch_form()
            if form is None:
                continue
            fn, params = form
            groups.setdefault(fn, []).append((i, params))
        stats = self._stats
        for fn, rows in groups.items():
            if len(rows) < 2:
                continue
            try:
                values = fn(
                    [params for _, params in rows],
                    ctx.state,
                    ctx.read_shared,
                    _EMPTY_LOCALS,
                )
            except EvaluationError:
                continue
            for (i, _), value in zip(rows, values):
                results[i] = value
            count = len(rows)
            stats.predicate_evaluations += count
            stats.compiled_evaluations += count
            stats.batched_evaluations += count
            if count_as_exhaustive:
                stats.exhaustive_checks += count
        return results

    def _signal(self, entry: PredicateEntry) -> None:
        entry.condition.notify()
        entry.pending_signals += 1
        self._stats.signals_sent += 1
        if self._tracer is not None:
            self._tracer.record(
                "signal", self._backend.current_id(), predicate=entry.canonical
            )

    def _signal_n(self, entry: PredicateEntry, count: int) -> None:
        """Promise and deliver *count* signals to *entry* in one wakeup.

        ``count > 1`` goes through the condition's ``notify_n`` bulk path —
        one batch of wakeups instead of ``count`` independent notify round
        trips.  The single-signal case stays on :meth:`_signal` so policies
        and tests that count individual notifications see identical
        behaviour when batching never applies.
        """
        if count <= 0:
            return
        if count == 1:
            self._signal(entry)
            return
        entry.condition.notify_n(count)
        entry.pending_signals += count
        self._stats.signals_sent += count
        if self._tracer is not None:
            for _ in range(count):
                self._tracer.record(
                    "signal", self._backend.current_id(), predicate=entry.canonical
                )
