"""AutoSynch core: monitors, condition manager, signalling strategies.

The public API a downstream user needs:

* :class:`AutoSynchMonitor` — subclass it, write entry methods that call
  ``self.wait_until("...")`` instead of managing condition variables, and the
  runtime signals the right thread automatically (the paper's contribution).
* :class:`ExplicitMonitor` — the conventional explicit-signal monitor base
  used for the paper's comparison baselines.
* ``signalling`` selects a policy from the pluggable registry
  (:mod:`repro.core.signalling`): ``"autosynch"``, ``"autosynch_t"`` and
  ``"baseline"`` are the paper's §6.2 mechanisms (full AutoSynch, AutoSynch
  without predicate tagging, single-condition signal-all); ``"relay_batched"``
  and ``"relay_fifo"`` are extension policies, and custom policies register
  with :func:`~repro.core.signalling.register_policy`.
"""

from repro.core.condition_manager import ConditionManager, PredicateEntry
from repro.core.errors import (
    MonitorError,
    MonitorUsageError,
    RelayInvarianceError,
    WaitTimeout,
)
from repro.core.heaps import ThresholdHeap
from repro.core.instrumentation import MonitorStats, Stopwatch
from repro.core.monitor import (
    AUTOMATIC_MODES,
    AutoSynchMonitor,
    ExplicitMonitor,
    MonitorBase,
    entry_method,
    query_method,
)
from repro.core.signalling import (
    SignallingPolicy,
    available_policies,
    describe_policy,
    get_policy,
    register_policy,
)
from repro.core.trace import TraceEvent, Tracer

__all__ = [
    "AUTOMATIC_MODES",
    "AutoSynchMonitor",
    "ConditionManager",
    "ExplicitMonitor",
    "MonitorBase",
    "MonitorError",
    "MonitorStats",
    "MonitorUsageError",
    "RelayInvarianceError",
    "PredicateEntry",
    "SignallingPolicy",
    "Stopwatch",
    "ThresholdHeap",
    "TraceEvent",
    "Tracer",
    "WaitTimeout",
    "available_policies",
    "describe_policy",
    "entry_method",
    "get_policy",
    "query_method",
    "register_policy",
]
