"""AutoSynch core: monitors, condition manager, signalling strategies.

The public API a downstream user needs:

* :class:`AutoSynchMonitor` — subclass it, write entry methods that call
  ``self.wait_until("...")`` instead of managing condition variables, and the
  runtime signals the right thread automatically (the paper's contribution).
* :class:`ExplicitMonitor` — the conventional explicit-signal monitor base
  used for the paper's comparison baselines.
* ``signalling`` modes ``"autosynch"``, ``"autosynch_t"`` and ``"baseline"``
  select the full AutoSynch algorithm, AutoSynch without predicate tagging,
  or the single-condition signal-all automatic monitor (§6.2).
"""

from repro.core.condition_manager import ConditionManager, PredicateEntry
from repro.core.errors import MonitorError, MonitorUsageError
from repro.core.heaps import ThresholdHeap
from repro.core.instrumentation import MonitorStats, Stopwatch
from repro.core.monitor import (
    AUTOMATIC_MODES,
    AutoSynchMonitor,
    ExplicitMonitor,
    MonitorBase,
    entry_method,
    query_method,
)
from repro.core.trace import TraceEvent, Tracer

__all__ = [
    "AUTOMATIC_MODES",
    "AutoSynchMonitor",
    "ConditionManager",
    "ExplicitMonitor",
    "MonitorBase",
    "MonitorError",
    "MonitorStats",
    "MonitorUsageError",
    "PredicateEntry",
    "Stopwatch",
    "ThresholdHeap",
    "TraceEvent",
    "Tracer",
    "entry_method",
    "query_method",
]
