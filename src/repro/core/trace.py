"""Signalling traces: a recorder for what the monitor runtime decides and why.

The paper motivates automatic signalling partly as a debugging aid ("a
correct automatic-signal implementation is helpful in debugging an
explicit-signal implementation").  A :class:`Tracer` attached to a monitor
records every monitor entry/exit, wait, wake-up and signalling decision —
including which predicate the relay rule chose — as a sequence of structured
events that can be inspected programmatically or rendered as text.

Example::

    tracer = Tracer()
    buffer = BoundedBuffer(4, tracer=tracer)
    ...
    print(tracer.format())
    assert tracer.count("signal_all") == 0
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded runtime event.

    ``kind`` is one of: ``enter``, ``exit``, ``register``, ``wait``,
    ``wakeup``, ``spurious_wakeup``, ``signal``, ``signal_all``, ``relay``.
    ``predicate`` holds the canonical predicate text when the event concerns
    one; ``detail`` carries free-form context (method name, relay outcome).
    """

    sequence: int
    kind: str
    thread: str
    predicate: Optional[str] = None
    detail: Optional[str] = None

    def format(self) -> str:
        parts = [f"#{self.sequence:05d}", self.kind, f"thread={self.thread}"]
        if self.predicate is not None:
            parts.append(f"predicate={self.predicate!r}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(parts)


class Tracer:
    """Collects :class:`TraceEvent` records from one or more monitors.

    The tracer is driven while the monitor lock is held, so no extra
    synchronization is needed; events are globally ordered by the sequence
    number.  ``capacity`` bounds memory for long runs (oldest events are
    dropped first).
    """

    def __init__(self, capacity: Optional[int] = 100_000) -> None:
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self._sequence = itertools.count()
        self._dropped = 0

    # -- recording (called by the monitor runtime) -----------------------

    def record(
        self,
        kind: str,
        thread: object,
        predicate: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        event = TraceEvent(
            sequence=next(self._sequence),
            kind=kind,
            thread=str(thread),
            predicate=predicate,
            detail=detail,
        )
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[0]
            self._dropped += 1

    # -- inspection -------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """All recorded events, oldest first."""
        return tuple(self._events)

    @property
    def dropped(self) -> int:
        """Number of events discarded because the capacity was exceeded."""
        return self._dropped

    def count(self, kind: str) -> int:
        """Number of recorded events of the given kind."""
        return sum(1 for event in self._events if event.kind == kind)

    def of_kind(self, kind: str) -> Tuple[TraceEvent, ...]:
        """Events of one kind, oldest first."""
        return tuple(event for event in self._events if event.kind == kind)

    def predicates_signalled(self) -> List[str]:
        """Canonical predicates in the order their waiters were signalled."""
        return [event.predicate for event in self._events if event.kind == "signal"]

    def summary(self) -> Dict[str, int]:
        """Event counts per kind."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def format(self, kinds: Optional[Iterable[str]] = None) -> str:
        """Render the trace (optionally filtered to some kinds) as text."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            event.format()
            for event in self._events
            if wanted is None or event.kind in wanted
        ]
        if self._dropped:
            lines.insert(0, f"... {self._dropped} earlier events dropped ...")
        return "\n".join(lines)

    def clear(self) -> None:
        """Forget everything recorded so far."""
        self._events.clear()
        self._dropped = 0


class _NullTracer:
    """Do-nothing stand-in used when tracing is disabled."""

    def record(self, *args: object, **kwargs: object) -> None:
        return None


NULL_TRACER = _NullTracer()
