"""Counters and timers used to reproduce the paper's measurements.

``MonitorStats`` collects both event counters (predicate evaluations, relay
signals, wake-ups, tag-structure activity, compiled-vs-interpreted engine
attribution and EvalContext cache hits) and, when profiling is enabled,
wall-clock time buckets matching Table 1 of the paper (await / lock /
relaySignal / tag manager / others) plus per-engine evaluation timings.

The counters are updated while the monitor lock is held, so no extra
synchronization is needed on top of it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict

__all__ = ["MonitorStats", "Stopwatch"]


@dataclass
class MonitorStats:
    """Event counters and time buckets for one monitor instance."""

    # --- event counters -------------------------------------------------
    entries: int = 0
    waits: int = 0
    wakeups: int = 0
    spurious_wakeups: int = 0
    predicate_evaluations: int = 0
    predicate_registrations: int = 0
    predicate_reuses: int = 0
    relay_signal_calls: int = 0
    signals_sent: int = 0
    signal_alls_sent: int = 0
    tag_hash_lookups: int = 0
    tag_heap_checks: int = 0
    exhaustive_checks: int = 0
    tag_insertions: int = 0
    tag_removals: int = 0
    #: Predicate evaluations served by the compiled (codegen) engine.
    compiled_evaluations: int = 0
    #: Predicate evaluations served by the tree-walking interpreter.
    interpreted_evaluations: int = 0
    #: Shared-variable reads answered from an EvalContext's per-pass cache.
    shared_read_cache_hits: int = 0
    #: Shared-expression evaluations answered from an EvalContext's cache.
    shared_expr_cache_hits: int = 0
    #: Shared-variable writes observed by the monitor's write tracker.
    tracked_writes: int = 0
    #: EvalContext instances the condition manager actually constructed for
    #: relay/search passes.  With the per-manager context pool this stays at
    #: ~1 per manager however many passes run; without pooling it equals the
    #: number of passes.
    eval_context_allocations: int = 0
    #: Candidate entries a relay pass skipped because no variable in their
    #: read set was written since their last false evaluation (the
    #: incremental relay path; exhaustive search never skips).
    relay_entries_skipped: int = 0
    #: Predicate evaluations served by a fused batch closure (a subset of
    #: ``compiled_evaluations``; the per-waiter-call ones are the rest).
    batched_evaluations: int = 0
    #: Timed ``wait_until`` calls that gave up (raised ``WaitTimeout``).
    wait_timeouts: int = 0
    #: Predicates demoted from the compiled engine to the interpreter after
    #: their compiled closure raised a non-semantic error (self-healing
    #: degradation; the run continues on the interpreter).
    predicate_quarantines: int = 0
    #: Times this monitor's condition manager stopped trusting its write
    #: tracker and fell back to exhaustive relay search for good (triggered
    #: by self-healing after a detected tracker inconsistency).
    incremental_demotions: int = 0
    #: Lost signals recovered by :meth:`AutoSynchMonitor.try_self_heal`
    #: (a true waiting predicate re-signalled instead of deadlocking).
    self_heal_recoveries: int = 0
    #: Faults a :class:`repro.faults.FaultInjector` injected into this
    #: monitor's run (chaos mode; 0 outside fault-injection runs).
    faults_injected: int = 0

    # --- time buckets (seconds), populated only when profiling ----------
    await_time: float = 0.0
    lock_time: float = 0.0
    relay_signal_time: float = 0.0
    tag_manager_time: float = 0.0
    method_time: float = 0.0
    #: Wall-clock spent inside compiled predicate evaluations.
    compiled_eval_time: float = 0.0
    #: Wall-clock spent inside interpreted predicate evaluations.
    interpreted_eval_time: float = 0.0

    profiling: bool = False

    #: Field names served to :meth:`snapshot`, resolved once at import time
    #: — dataclass field introspection per call shows up in exploration
    #: throughput profiles.
    _SNAPSHOT_FIELDS: ClassVar[tuple] = ()

    def snapshot(self) -> Dict[str, float]:
        """Return all counters and buckets as a plain dictionary."""
        get = self.__dict__
        return {name: get[name] for name in MonitorStats._SNAPSHOT_FIELDS}

    def reset(self) -> None:
        """Zero every counter and time bucket (profiling flag is preserved)."""
        profiling = self.profiling
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))())
        self.profiling = profiling

    def merge(self, other: "MonitorStats") -> None:
        """Accumulate *other* into this object (used to aggregate repetitions)."""
        for f in fields(self):
            if f.name == "profiling":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    # --- time-bucket helpers ---------------------------------------------

    def time_bucket(self, bucket: str) -> "Stopwatch":
        """Return a context manager that adds elapsed time to *bucket*.

        When profiling is off the stopwatch is a no-op, so instrumented code
        paths stay cheap during throughput benchmarks.
        """
        return Stopwatch(self, bucket) if self.profiling else _NULL_STOPWATCH


MonitorStats._SNAPSHOT_FIELDS = tuple(
    f.name for f in fields(MonitorStats) if f.name != "profiling"
)


class Stopwatch:
    """Context manager adding elapsed wall-clock time to a stats bucket."""

    __slots__ = ("_stats", "_bucket", "_start")

    def __init__(self, stats: MonitorStats, bucket: str) -> None:
        self._stats = stats
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(self._stats, self._bucket, getattr(self._stats, self._bucket) + elapsed)


class _NullStopwatch:
    """No-op stand-in used when profiling is disabled."""

    def __enter__(self) -> "_NullStopwatch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_STOPWATCH = _NullStopwatch()
