"""Figure 9: runtime of the H2O problem vs. the number of hydrogen threads.

Paper shape: as in Fig. 8, the baseline automatic monitor falls behind while
explicit, AutoSynch-T and AutoSynch remain close (only two shared predicates
exist, so signalling cost is constant).
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="h2o",
    mechanisms=("explicit", "baseline", "autosynch_t", "autosynch"),
    total_ops=18_000,
    quick_total_ops=900,
    x_label="# H-atom threads",
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig09",
        title="H2O runtime vs. number of hydrogen threads",
        paper_reference="Figure 9",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "baseline is at least as slow as AutoSynch at the largest thread count",
                lambda series: ratio_at_max(series, "baseline", "autosynch", "modelled_runtime")
                >= 1.0,
            ),
            ShapeCheck(
                "AutoSynch stays within 4x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 4.0,
            ),
        ),
    )
)
