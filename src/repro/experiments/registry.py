"""Experiment registry: one entry per figure/table of the paper's evaluation.

Each experiment knows how to run itself at two scales:

* ``full`` — the paper's parameters (thread counts 2..256, several
  repetitions).  Intended for an unattended run on a real machine.
* ``quick`` — a scaled-down sweep that finishes in seconds and is used by the
  benchmark suite and the integration tests; the *shape* checks still hold at
  this scale.

Every experiment also carries ``shape_checks``: predicates over the measured
series that encode the qualitative claims the corresponding figure makes
(who wins, by roughly what factor, whether curves stay flat).  EXPERIMENTS.md
records the outcome of these checks next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.results import ExperimentSeries
from repro.harness.runner import ExperimentRunner, RunConfig

__all__ = [
    "ShapeCheck",
    "Experiment",
    "EXPERIMENTS",
    "register",
    "get_experiment",
    "paper_sweep",
]

#: The paper's x-axis for most figures.
PAPER_THREAD_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256)
#: Scaled-down x-axis used by the quick configurations.
QUICK_THREAD_COUNTS = (2, 8, 32)


def paper_sweep(
    problem: str,
    mechanisms: Sequence[str],
    total_ops: int,
    quick_total_ops: int,
    repetitions: int = 5,
    quick_repetitions: int = 1,
    thread_counts: Sequence[int] = PAPER_THREAD_COUNTS,
    quick_thread_counts: Sequence[int] = QUICK_THREAD_COUNTS,
    x_label: str = "# threads",
    **common: object,
) -> Tuple[RunConfig, RunConfig]:
    """Build a figure's ``(full, quick)`` config pair from one description.

    Every figure/table module used to spell out its full config and derive
    the quick one with ``scaled()``; this helper centralizes that pattern,
    so sweep-wide knobs (backend, executor, jobs, problem params — passed
    through ``**common``) apply to both scales consistently.
    """
    full = RunConfig(
        problem=problem,
        thread_counts=tuple(thread_counts),
        mechanisms=tuple(mechanisms),
        total_ops=total_ops,
        repetitions=repetitions,
        x_label=x_label,
        **common,
    )
    quick = full.scaled(
        total_ops=quick_total_ops,
        repetitions=quick_repetitions,
        thread_counts=tuple(quick_thread_counts),
    )
    return full, quick


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim about a figure, checkable from the series."""

    description: str
    check: Callable[[ExperimentSeries], bool]

    def evaluate(self, series: ExperimentSeries) -> bool:
        return bool(self.check(series))


@dataclass
class Experiment:
    """A reproducible figure or table."""

    experiment_id: str
    title: str
    paper_reference: str
    full_config: RunConfig
    quick_config: RunConfig
    metric: str = "modelled_runtime"
    shape_checks: Tuple[ShapeCheck, ...] = ()
    #: Optional custom report builder (Table 1 uses one).
    report_builder: Optional[Callable[[ExperimentSeries], str]] = None

    def run(
        self,
        scale: str = "quick",
        runner: Optional[ExperimentRunner] = None,
        mechanisms: Optional[Sequence[str]] = None,
        eval_engine: Optional[str] = None,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        run_timeout: Optional[float] = None,
        cell_retries: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ExperimentSeries:
        """Run the experiment at the given scale and return its series.

        *mechanisms* overrides the configuration's comparison set — any
        names the problem supports (``"explicit"`` plus every registered
        signalling policy) are accepted, so ablations over new policies
        reuse the paper's sweeps unchanged.  *eval_engine* overrides the
        automatic monitors' predicate-evaluation engine the same way, and
        *executor*/*jobs* select how the sweep's cells are executed (any
        registered executor; the merged series is identical either way).
        *run_timeout* caps each cell's wall-clock (hang verdict instead of
        a wedged sweep) and *cell_retries* turns on per-cell retry with
        backoff.  *backend* overrides the configuration's execution backend
        (any name in :func:`repro.runtime.registry.available_backends`).
        """
        if scale not in ("quick", "full"):
            raise ValueError(f"unknown scale {scale!r}; expected 'quick' or 'full'")
        config = self.quick_config if scale == "quick" else self.full_config
        config = self.configured(
            config,
            mechanisms,
            eval_engine,
            executor,
            jobs,
            run_timeout,
            cell_retries,
            backend,
        )
        runner = runner or ExperimentRunner()
        return runner.run(config)

    @staticmethod
    def configured(
        config: RunConfig,
        mechanisms: Optional[Sequence[str]] = None,
        eval_engine: Optional[str] = None,
        executor: Optional[str] = None,
        jobs: Optional[int] = None,
        run_timeout: Optional[float] = None,
        cell_retries: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> RunConfig:
        """Return *config* with mechanisms / eval engine / executor /
        backend / robustness knobs overridden (``None`` keeps the current
        value)."""
        from dataclasses import replace

        if mechanisms:
            config = replace(config, mechanisms=tuple(mechanisms))
        if eval_engine is not None:
            config = replace(config, eval_engine=eval_engine)
        if run_timeout is not None:
            config = replace(config, run_timeout=run_timeout)
        if cell_retries is not None:
            config = replace(config, cell_retries=cell_retries)
        if backend is not None:
            config = replace(config, backend=backend)
        return config.with_executor(executor, jobs)

    def report(self, series: ExperimentSeries) -> str:
        """Render the figure's data as text (table of the primary metric)."""
        from repro.harness.report import format_series_table

        if self.report_builder is not None:
            return self.report_builder(series)
        title = f"{self.experiment_id}: {self.title} [{self.paper_reference}]"
        return format_series_table(series, self.metric, title=title)

    def check_shapes(self, series: ExperimentSeries) -> List[Tuple[str, bool]]:
        """Evaluate every shape check against *series*."""
        return [(check.description, check.evaluate(series)) for check in self.shape_checks]


#: Global registry, populated by the fig/table modules at import time.
EXPERIMENTS: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add *experiment* to the registry (idempotent by id)."""
    EXPERIMENTS[experiment.experiment_id] = experiment
    return experiment


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment, importing the standard set on first use."""
    from repro import experiments as _pkg  # noqa: F401  (ensures registration)

    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


# ---------------------------------------------------------------------------
# Helpers shared by the per-figure modules
# ---------------------------------------------------------------------------


def final_point_metric(series: ExperimentSeries, mechanism: str, metric: str) -> float:
    """Metric value of *mechanism* at the largest x value (0 if missing)."""
    xs = series.x_values()
    if not xs:
        return 0.0
    point = series.point_for(mechanism, xs[-1])
    return point.metric(metric) if point is not None else 0.0


def ratio_at_max(series: ExperimentSeries, slow: str, fast: str, metric: str) -> float:
    """Ratio slow/fast of *metric* at the largest x value (inf-safe)."""
    fast_value = final_point_metric(series, fast, metric)
    slow_value = final_point_metric(series, slow, metric)
    if fast_value <= 0:
        return float("inf") if slow_value > 0 else 1.0
    return slow_value / fast_value
