"""Figure 12: runtime of the readers/writers problem vs. #writers/#readers.

Paper shape: explicit signalling (which signals the next ticket directly) is
fastest and flat; AutoSynch-T's runtime grows with the number of threads;
AutoSynch stays close to explicit.  At small thread counts AutoSynch-T can
even beat AutoSynch because AutoSynch pays for tag maintenance, a crossover
the paper points out explicitly.

The x-axis value is the number of writers; there are five readers per writer
(2/10, 4/20, ..., 64/320 in the paper).
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

#: Writers axis of Fig. 12 (readers = 5x writers are created by the problem).
PAPER_WRITER_COUNTS = (2, 4, 8, 16, 32, 64)
QUICK_WRITER_COUNTS = (2, 8, 16)

_FULL, _QUICK = paper_sweep(
    problem="readers_writers",
    mechanisms=("explicit", "autosynch_t", "autosynch"),
    total_ops=20_000,
    quick_total_ops=1_200,
    thread_counts=PAPER_WRITER_COUNTS,
    quick_thread_counts=QUICK_WRITER_COUNTS,
    x_label="# writers (readers = 5x)",
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig12",
        title="readers/writers runtime vs. number of writers (5 readers per writer)",
        paper_reference="Figure 12",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "AutoSynch stays within 4x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 4.0,
            ),
            ShapeCheck(
                "AutoSynch-T needs at least as many predicate evaluations as AutoSynch",
                lambda series: ratio_at_max(
                    series, "autosynch_t", "autosynch", "predicate_evaluations"
                )
                >= 1.0,
            ),
        ),
    )
)
