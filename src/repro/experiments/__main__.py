"""Command-line entry point for regenerating the paper's figures and tables.

Examples
--------
Run the quick version of every experiment and print the tables::

    python -m repro.experiments --scale quick

Run one figure at paper scale on the threading backend as well::

    python -m repro.experiments --only fig14 --scale full --also-wall-clock
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.signalling import describe_policy
from repro.experiments import EXPERIMENTS, get_experiment
from repro.predicates.codegen import DEFAULT_ENGINE, ENGINES
from repro.harness.execution import available_executors, describe_executor
from repro.harness.report import format_series_table
from repro.harness.results import mechanism_label
from repro.harness.runner import ExperimentRunner
from repro.problems.base import all_mechanisms
from repro.runtime.registry import available_backends, describe_backend

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosynch-experiments",
        description="Regenerate the AutoSynch paper's evaluation figures and tables.",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="ID",
        help="run only this experiment id (repeatable); default: all",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="FILE",
        help=(
            "run a sweep of a declarative scenario spec (JSON; repeatable). "
            "Replaces the default figure set unless --only is also given"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = seconds-long sweep, full = paper-scale sweep",
    )
    parser.add_argument(
        "--also-wall-clock",
        action="store_true",
        help="additionally run each sweep on the threading backend and report wall time",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiment ids and exit",
    )
    parser.add_argument(
        "--mechanisms",
        default=None,
        metavar="NAME[,NAME...]",
        help=(
            "override each experiment's mechanism comparison set; accepts "
            "'explicit' and any registered signalling policy "
            f"(currently: {', '.join(all_mechanisms())})"
        ),
    )
    parser.add_argument(
        "--list-mechanisms",
        action="store_true",
        help="list the signalling-policy registry contents and exit",
    )
    parser.add_argument(
        "--executor",
        choices=available_executors(),
        default=None,
        help=(
            "how each sweep's run cells are executed (default: each "
            "experiment's configured executor, normally 'serial'); "
            "'process' shards cells over a multiprocessing pool"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker count for parallel executors (default: the executor's "
            "own — one per core for 'process'); implies --executor process "
            "when no executor is given"
        ),
    )
    parser.add_argument(
        "--list-executors",
        action="store_true",
        help="list the executor registry contents and exit",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help=(
            "execution backend for every sweep (default: each experiment's "
            "configured backend, normally 'simulation'); any name in the "
            "backend registry — see --list-backends"
        ),
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the backend registry contents and exit",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock safety net per run cell (simulation backend): a "
            "cell exceeding it fails with a hang verdict and parked-thread "
            "autopsy instead of wedging the sweep (default: the kernel's "
            "600s)"
        ),
    )
    parser.add_argument(
        "--cell-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "re-attempt a failing run cell up to N times with exponential "
            "backoff (default: fail fast); worker-process crashes are "
            "always resubmitted to a rebuilt pool, bounded separately"
        ),
    )
    parser.add_argument(
        "--eval-engine",
        choices=ENGINES,
        default=None,
        help=(
            "predicate-evaluation engine for the automatic monitors "
            "(default: each experiment's configured engine, normally "
            f"{DEFAULT_ENGINE!r})"
        ),
    )
    parser.add_argument(
        "--check-shapes",
        action="store_true",
        help="evaluate each experiment's qualitative shape checks and report pass/fail",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        metavar="DIR",
        help="additionally write each experiment's series to DIR/<id>.csv",
    )
    return parser


def _parse_mechanisms(raw: Optional[str]) -> Optional[List[str]]:
    """Split and validate a ``--mechanisms`` value against the registry."""
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    if not names:
        raise SystemExit("--mechanisms requires at least one mechanism name")
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise SystemExit(f"duplicate mechanism(s) in --mechanisms: {duplicates}")
    known = all_mechanisms()
    unknown = [name for name in names if name not in known]
    if unknown:
        raise SystemExit(
            f"unknown mechanism(s) {unknown}; available: {', '.join(known)}"
        )
    return names


def _run_one(experiment, args: argparse.Namespace) -> bool:
    runner = ExperimentRunner(progress=lambda message: print(f"  .. {message}", flush=True))
    print(f"== {experiment.experiment_id}: {experiment.title} ==", flush=True)
    series = experiment.run(
        scale=args.scale,
        runner=runner,
        mechanisms=args.mechanism_names,
        eval_engine=args.eval_engine,
        executor=args.executor,
        jobs=args.jobs,
        run_timeout=args.run_timeout,
        cell_retries=args.cell_retries,
        backend=args.backend,
    )
    print(experiment.report(series))
    if args.csv_dir:
        from pathlib import Path

        from repro.harness.export import write_series_csv

        destination = Path(args.csv_dir) / f"{experiment.experiment_id}.csv"
        write_series_csv(series, destination)
        print(f"  (series written to {destination})")
    all_ok = True
    if args.check_shapes:
        if args.mechanism_names:
            # The shape checks encode claims about the paper's fixed
            # comparison set; with an overridden mechanism set they would
            # compare against missing series.
            print("  (shape checks skipped: --mechanisms overrides the comparison set)")
        else:
            for description, ok in experiment.check_shapes(series):
                status = "PASS" if ok else "FAIL"
                all_ok = all_ok and ok
                print(f"  [{status}] {description}")
    if args.also_wall_clock:
        config = experiment.quick_config if args.scale == "quick" else experiment.full_config
        config = experiment.configured(
            config,
            args.mechanism_names,
            args.eval_engine,
            args.executor,
            args.jobs,
            args.run_timeout,
            args.cell_retries,
            args.backend,
        )
        wall_config = replace(config, backend="threading")
        wall_series = runner.run(wall_config)
        print(format_series_table(wall_series, "wall_time",
                                  title=f"{experiment.experiment_id} — wall_time (threading backend)"))
    print()
    return all_ok


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_executors:
        width = max(len(name) for name in available_executors())
        for name in available_executors():
            print(f"{name:{width}s}  {describe_executor(name)}")
        return 0
    if args.list_backends:
        width = max(len(name) for name in available_backends())
        for name in available_backends():
            print(f"{name:{width}s}  {describe_backend(name)}")
        return 0
    if args.backend is not None and args.backend not in available_backends():
        raise SystemExit(
            f"unknown backend {args.backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    if args.jobs is not None and args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.cell_retries is not None and args.cell_retries < 0:
        raise SystemExit("--cell-retries must be >= 0")
    if args.run_timeout is not None and args.run_timeout <= 0:
        raise SystemExit("--run-timeout must be positive")
    if args.jobs is not None and args.executor is None:
        # --jobs without an executor would silently run serial (the serial
        # executor ignores the count); parallelism was clearly the intent.
        args.executor = "process"
    if args.list_mechanisms:
        width = max(len(name) for name in all_mechanisms())
        for name in all_mechanisms():
            if name == "explicit":
                label = mechanism_label(name)
            else:
                label = describe_policy(name)
            print(f"{name:{width}s}  {label}")
        return 0
    args.mechanism_names = _parse_mechanisms(args.mechanisms)
    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            experiment = EXPERIMENTS[experiment_id]
            print(f"{experiment_id:8s} {experiment.title} [{experiment.paper_reference}]")
        return 0
    to_run = []
    if args.scenario:
        from repro.experiments.scenario import scenario_experiment
        from repro.scenarios import ScenarioError, load_scenario_file

        for path in args.scenario:
            try:
                to_run.append(scenario_experiment(load_scenario_file(path)))
            except ScenarioError as error:
                raise SystemExit(str(error)) from None
    if args.only or not args.scenario:
        ids: List[str] = args.only if args.only else sorted(EXPERIMENTS)
        to_run.extend(get_experiment(experiment_id) for experiment_id in ids)
    ok = True
    for experiment in to_run:
        ok = _run_one(experiment, args) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
