"""Figure 11: runtime of the round-robin access pattern vs. number of threads.

Paper shape: the explicit version (one condition variable per thread, the
programmer signals exactly the next thread) is fastest and flat; AutoSynch-T
degrades sharply as the number of waiting predicates grows because every
relay signal scans them all; AutoSynch stays within a small factor of
explicit (1.2x–2.6x in the paper) and flat, because the equivalence-tag hash
finds the one true predicate directly.
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="round_robin",
    mechanisms=("explicit", "autosynch_t", "autosynch"),
    total_ops=20_000,
    quick_total_ops=1_000,
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig11",
        title="round-robin access pattern runtime vs. number of threads",
        paper_reference="Figure 11 (and Table 1)",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "AutoSynch-T evaluates many more predicates than AutoSynch at the largest size",
                lambda series: ratio_at_max(
                    series, "autosynch_t", "autosynch", "predicate_evaluations"
                )
                >= 2.0,
            ),
            ShapeCheck(
                "AutoSynch-T is slower than AutoSynch at the largest size",
                lambda series: ratio_at_max(series, "autosynch_t", "autosynch", "modelled_runtime")
                >= 1.0,
            ),
            ShapeCheck(
                "AutoSynch stays within 4x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 4.0,
            ),
        ),
    )
)
