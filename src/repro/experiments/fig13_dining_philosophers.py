"""Figure 13: runtime of the dining-philosophers problem vs. #philosophers.

Paper shape: explicit signalling does not pull far ahead here because a
philosopher only ever competes with its two neighbours, regardless of the
table size; the automatic mechanisms stay within a small factor.
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="dining_philosophers",
    mechanisms=("explicit", "autosynch_t", "autosynch"),
    total_ops=20_000,
    quick_total_ops=1_200,
    x_label="# philosophers",
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig13",
        title="dining-philosophers runtime vs. number of philosophers",
        paper_reference="Figure 13",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "AutoSynch stays within 5x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 5.0,
            ),
            ShapeCheck(
                "AutoSynch-T stays within 5x of AutoSynch (philosophers only compete locally)",
                lambda series: ratio_at_max(series, "autosynch_t", "autosynch", "modelled_runtime")
                <= 5.0,
            ),
        ),
    )
)
