"""Figure 8: runtime of the bounded-buffer problem vs. #producers/consumers.

Paper shape: the baseline automatic monitor is clearly slower; explicit,
AutoSynch-T and AutoSynch are all close because the problem only ever has two
shared predicates to manage.
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="bounded_buffer",
    mechanisms=("explicit", "baseline", "autosynch_t", "autosynch"),
    total_ops=20_000,
    quick_total_ops=1_200,
    x_label="# producers/consumers",
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig08",
        title="bounded-buffer runtime vs. number of producers/consumers",
        paper_reference="Figure 8",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "baseline is the slowest automatic mechanism at the largest thread count",
                lambda series: ratio_at_max(series, "baseline", "autosynch", "modelled_runtime")
                >= 1.0,
            ),
            ShapeCheck(
                "AutoSynch stays within 4x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 4.0,
            ),
            ShapeCheck(
                "AutoSynch-T is comparable to AutoSynch (constant number of shared predicates)",
                lambda series: ratio_at_max(series, "autosynch_t", "autosynch", "modelled_runtime")
                <= 2.0,
            ),
        ),
    )
)
