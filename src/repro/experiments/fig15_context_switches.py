"""Figure 15: context switches in the parameterized bounded buffer.

Paper shape: the number of context switches grows into the millions for the
explicit (signalAll-based) version as consumers are added, while AutoSynch
stays roughly constant (~5.4k at 256 consumers in the paper) because only one
thread — one whose predicate is actually true — is ever woken.

This experiment uses the simulation backend, where context switches are
counted exactly by the scheduler.
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="parameterized_bounded_buffer",
    mechanisms=("explicit", "autosynch"),
    total_ops=10_000,
    quick_total_ops=800,
    x_label="# consumers",
)


def _autosynch_stays_flat(series) -> bool:
    xs = series.x_values()
    if len(xs) < 2:
        return False
    first = series.point_for("autosynch", xs[0])
    last = series.point_for("autosynch", xs[-1])
    if first is None or last is None or first.metric("context_switches") <= 0:
        return False
    explicit_first = series.point_for("explicit", xs[0])
    explicit_last = series.point_for("explicit", xs[-1])
    if explicit_first is None or explicit_last is None:
        return False
    autosynch_growth = last.metric("context_switches") / first.metric("context_switches")
    explicit_growth = explicit_last.metric("context_switches") / max(
        explicit_first.metric("context_switches"), 1.0
    )
    return autosynch_growth <= explicit_growth


EXPERIMENT = register(
    Experiment(
        experiment_id="fig15",
        title="context switches of the parameterized bounded buffer vs. number of consumers",
        paper_reference="Figure 15",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="context_switches",
        shape_checks=(
            ShapeCheck(
                "the explicit version causes several times more context switches at the largest size",
                lambda series: ratio_at_max(series, "explicit", "autosynch", "context_switches")
                >= 2.0,
            ),
            ShapeCheck(
                "AutoSynch's context switches grow no faster than explicit's",
                _autosynch_stays_flat,
            ),
        ),
    )
)
