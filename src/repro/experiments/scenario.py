"""Ad-hoc experiments over declarative scenarios.

``python -m repro.experiments --scenario file.json`` loads a
:class:`~repro.scenarios.ScenarioSpec`, registers it as a problem and runs
a standard saturation sweep over it — the same two-scale
(``quick``/``full``) protocol as the paper's figures, comparing every
mechanism the scenario supports (all registered signalling policies; there
is no hand-written explicit twin to compare against).
"""

from __future__ import annotations

from repro.experiments.registry import Experiment, paper_sweep
from repro.problems import get_problem
from repro.scenarios import ScenarioSpec, register_scenario

__all__ = ["scenario_experiment"]

#: Scenario sweeps use a smaller x-axis than the paper figures: scenarios
#: size their roles from ``threads`` themselves, and the comparison of
#: interest is mechanism-vs-mechanism, not asymptotic scaling.
FULL_THREAD_COUNTS = (2, 4, 8, 16)
QUICK_THREAD_COUNTS = (2, 4)


def scenario_experiment(spec: ScenarioSpec) -> Experiment:
    """Build (and register the problem for) a scenario's sweep experiment."""
    register_scenario(spec, replace=True)
    problem = get_problem(spec.name)
    full, quick = paper_sweep(
        problem=spec.name,
        mechanisms=problem.supported_mechanisms(),
        total_ops=2_000,
        quick_total_ops=240,
        repetitions=3,
        quick_repetitions=1,
        thread_counts=FULL_THREAD_COUNTS,
        quick_thread_counts=QUICK_THREAD_COUNTS,
        # Cells carry the spec so parallel-executor workers can resolve the
        # runtime-registered problem even without fork inheritance.
        scenario_json=spec.to_json(),
    )
    return Experiment(
        experiment_id=f"scenario-{spec.name}",
        title=spec.description or f"declarative scenario {spec.name!r}",
        paper_reference="declarative scenario",
        full_config=full,
        quick_config=quick,
    )
