"""Per-figure experiment definitions (§6 of the paper).

Importing this package registers every experiment in
:data:`repro.experiments.registry.EXPERIMENTS`; the command-line entry point
``python -m repro.experiments`` (or ``autosynch-experiments``) runs them and
prints the tables/series corresponding to the paper's figures.
"""

from repro.experiments import (  # noqa: F401  (imported for registration side effects)
    fig08_bounded_buffer,
    fig09_h2o,
    fig10_sleeping_barber,
    fig11_round_robin,
    fig12_readers_writers,
    fig13_dining_philosophers,
    fig14_param_bounded_buffer,
    fig15_context_switches,
    table1_cpu_usage,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    ShapeCheck,
    get_experiment,
    register,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "ShapeCheck",
    "get_experiment",
    "register",
]
