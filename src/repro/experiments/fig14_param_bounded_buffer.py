"""Figure 14: parameterized bounded-buffer runtime vs. number of consumers.

Paper shape: the explicit version must use ``signalAll`` (nobody knows which
waiting consumer can be satisfied), so its runtime grows steeply with the
number of consumers; AutoSynch signals exactly one thread whose predicate is
true and stays essentially flat, winning by ~27x at 256 consumers in the
paper.
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="parameterized_bounded_buffer",
    mechanisms=("explicit", "autosynch"),
    total_ops=10_000,
    quick_total_ops=800,
    x_label="# consumers",
)


def _explicit_grows_with_threads(series) -> bool:
    xs = series.x_values()
    if len(xs) < 2:
        return False
    first = series.point_for("explicit", xs[0])
    last = series.point_for("explicit", xs[-1])
    if first is None or last is None:
        return False
    return last.metric("modelled_runtime") > first.metric("modelled_runtime")


EXPERIMENT = register(
    Experiment(
        experiment_id="fig14",
        title="parameterized bounded-buffer runtime vs. number of consumers",
        paper_reference="Figure 14",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "AutoSynch beats the explicit (signalAll-based) version at the largest size",
                lambda series: ratio_at_max(series, "explicit", "autosynch", "modelled_runtime")
                >= 1.5,
            ),
            ShapeCheck(
                "the explicit version's cost grows with the number of consumers",
                _explicit_grows_with_threads,
            ),
        ),
    )
)
