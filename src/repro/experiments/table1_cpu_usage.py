"""Table 1: CPU-usage breakdown for the round-robin access pattern.

The paper profiles the 128-thread round-robin workload with YourKit and
reports, per mechanism, the time spent in ``await``, lock handling,
``relaySignal`` and tag management.  The headline observation is that
predicate tagging removes about 95% of the relaySignal cost at the price of a
small tag-management overhead.

Here the breakdown is reconstructed from the monitor's own counters through
the cost model (see :mod:`repro.harness.profiling`); the key ratio — how much
of the relay-signalling work tagging eliminates — is checked as a shape.
"""

from __future__ import annotations

from repro.experiments.registry import Experiment, ShapeCheck, paper_sweep, register
from repro.harness.profiling import BUCKETS, breakdown_rows, series_usage_breakdowns
from repro.harness.report import format_table
from repro.harness.results import ExperimentSeries

__all__ = ["EXPERIMENT", "build_breakdowns"]

#: The paper profiles the 128-thread configuration.
FULL_THREADS = 128
QUICK_THREADS = 16

_FULL, _QUICK = paper_sweep(
    problem="round_robin",
    mechanisms=("explicit", "autosynch_t", "autosynch"),
    total_ops=20_000,
    quick_total_ops=1_500,
    thread_counts=(FULL_THREADS,),
    quick_thread_counts=(QUICK_THREADS,),
)


def build_breakdowns(series: ExperimentSeries):
    """One :class:`UsageBreakdown` per mechanism at the profiled thread count.

    The heavy lifting lives in
    :func:`repro.harness.profiling.series_usage_breakdowns`, which works
    from the merged series' aggregated counters — so the breakdown is the
    same whichever executor produced the runs.
    """
    return series_usage_breakdowns(series)


def _report(series: ExperimentSeries) -> str:
    breakdowns = build_breakdowns(series)
    headers = ["mechanism"]
    for bucket in BUCKETS:
        headers.extend([f"{bucket} (s)", "%"])
    headers.append("total (s)")
    table = format_table(headers, breakdown_rows(breakdowns))
    threads = series.x_values()[-1]
    return (
        f"table1: CPU-usage breakdown, round-robin access pattern, {threads} threads "
        f"[Table 1]\n{table}"
    )


def _relay_reduction(series: ExperimentSeries) -> float:
    """Fraction of AutoSynch-T's relaySignal cost removed by tagging."""
    breakdowns = {b.mechanism: b for b in build_breakdowns(series)}
    without_tags = breakdowns.get("autosynch_t")
    with_tags = breakdowns.get("autosynch")
    if without_tags is None or with_tags is None or without_tags.relay_signal_time <= 0:
        return 0.0
    return 1.0 - (with_tags.relay_signal_time / without_tags.relay_signal_time)


EXPERIMENT = register(
    Experiment(
        experiment_id="table1",
        title="CPU-usage breakdown for the round-robin access pattern",
        paper_reference="Table 1",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        report_builder=_report,
        shape_checks=(
            ShapeCheck(
                "predicate tagging removes most of the relaySignal cost (>=50% here, ~95% in the paper)",
                lambda series: _relay_reduction(series) >= 0.5,
            ),
            ShapeCheck(
                "tag management stays a small fraction of AutoSynch's total cost (<20%)",
                lambda series: next(
                    (
                        b.share("tag_manager") < 0.20
                        for b in build_breakdowns(series)
                        if b.mechanism == "autosynch"
                    ),
                    False,
                ),
            ),
        ),
    )
)
