"""Figure 10: runtime of the sleeping-barber problem vs. number of customers.

Paper shape: all four mechanisms stay close — even the baseline, because its
``signalAll`` calls do not cause extra context switches (a woken customer can
always make progress once the previous one has been served).
"""

from __future__ import annotations

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    paper_sweep,
    ratio_at_max,
    register,
)

__all__ = ["EXPERIMENT"]

_FULL, _QUICK = paper_sweep(
    problem="sleeping_barber",
    mechanisms=("explicit", "baseline", "autosynch_t", "autosynch"),
    total_ops=15_000,
    quick_total_ops=900,
    x_label="# customers",
)

EXPERIMENT = register(
    Experiment(
        experiment_id="fig10",
        title="sleeping-barber runtime vs. number of customers",
        paper_reference="Figure 10",
        full_config=_FULL,
        quick_config=_QUICK,
        metric="modelled_runtime",
        shape_checks=(
            ShapeCheck(
                "AutoSynch stays within 5x of explicit signalling",
                lambda series: ratio_at_max(series, "autosynch", "explicit", "modelled_runtime")
                <= 5.0,
            ),
            ShapeCheck(
                "the automatic mechanisms stay within an order of magnitude of each other",
                lambda series: ratio_at_max(series, "baseline", "autosynch", "modelled_runtime")
                <= 10.0,
            ),
        ),
    )
)
