"""Exception types raised by the preprocessor."""


class PreprocessorError(Exception):
    """Raised when AutoSynch source cannot be translated.

    Typical causes: ``waituntil`` used outside a method of an ``@autosynch``
    class, used as an expression rather than a statement, or called with the
    wrong number of arguments.
    """
