"""Static analysis used by the preprocessor.

The main job is to decide, for a ``waituntil(expr)`` statement, which bare
names in ``expr`` are the calling thread's local variables.  In the Python
surface syntax monitor fields are always written ``self.<field>``, so every
bare name that is not a whitelisted pure builtin refers to something in the
enclosing function's scope (a parameter, a local, or a module-level
constant); all of those are frozen by globalization, so they are passed to
``wait_until`` as keyword arguments.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.predicates.parser import ALLOWED_BUILTINS, SELF_NAMES

__all__ = ["local_names_in_expression", "is_waituntil_call"]

#: Names that never need to be captured as locals.
_NON_CAPTURED = frozenset({"True", "False", "None"}) | SELF_NAMES


def local_names_in_expression(expr: ast.expr) -> List[str]:
    """Bare names in *expr* that must be captured as thread-local values.

    The result preserves first-use order (so generated code is stable) and
    excludes ``self``, the pure builtins allowed in predicates, and literal
    keywords.
    """
    ordered: List[str] = []
    seen: Set[str] = set()
    called_names: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            called_names.add(node.func.id)
    for node in ast.walk(expr):
        if not isinstance(node, ast.Name):
            continue
        name = node.id
        if name in seen or name in _NON_CAPTURED:
            continue
        if name in ALLOWED_BUILTINS and name in called_names:
            # A call like ``len(...)``: the name is the builtin, not a local.
            continue
        seen.add(name)
        ordered.append(name)
    return ordered


def is_waituntil_call(node: ast.AST, waituntil_name: str = "waituntil") -> bool:
    """True when *node* is a call of the bare ``waituntil(...)`` form."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == waituntil_name
    )
