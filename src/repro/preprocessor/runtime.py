"""Import-time preprocessing: the ``@autosynch`` decorator and ``waituntil``.

The decorator performs the same AST transformation as the offline
preprocessor, but at class-definition time: it fetches the class source,
rewrites it, recompiles it in the defining module's namespace and returns the
rewritten class.  This gives the paper's programming model — no condition
variables, no signal calls, just ``waituntil(P)`` — without a separate build
step.
"""

from __future__ import annotations

import ast
import inspect
import sys
import textwrap
from typing import Callable, Dict, Optional, Type, Union, overload

from repro.core.monitor import AutoSynchMonitor
from repro.preprocessor.errors import PreprocessorError
from repro.preprocessor.transformer import (
    MONITOR_BASE_NAME,
    OPTIONS_ATTRIBUTE,
    transform_class_source,
)

__all__ = ["autosynch", "waituntil"]


def waituntil(condition: object) -> None:
    """Placeholder for the ``waituntil`` statement.

    Inside a method of an ``@autosynch`` class this call is rewritten by the
    preprocessor and never executes.  Reaching it at runtime means the class
    was not transformed (the decorator is missing, or the call sits in a
    plain function), so fail loudly instead of silently not waiting.
    """
    raise PreprocessorError(
        "waituntil() was called at runtime; it is only meaningful inside a "
        "method of a class decorated with @autosynch (or processed by the "
        "offline preprocessor)"
    )


def _transform_class(cls: type, options: Dict[str, object]) -> type:
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError) as exc:
        raise PreprocessorError(
            f"cannot retrieve the source of {cls.__qualname__}; the @autosynch "
            "decorator needs source access (classes defined in a REPL or via "
            "exec are not supported — use the offline preprocessor instead)"
        ) from exc
    source = textwrap.dedent(source)

    # Literal options are baked into the generated class attribute; any
    # non-literal options (e.g. a backend instance) are attached afterwards.
    literal_options = {
        key: value
        for key, value in options.items()
        if isinstance(value, (str, int, float, bool, type(None)))
    }
    transformed = transform_class_source(source, extra_options=literal_options)

    module = sys.modules.get(cls.__module__)
    namespace: Dict[str, object] = {}
    if module is not None:
        namespace.update(vars(module))
    namespace[MONITOR_BASE_NAME] = AutoSynchMonitor

    code = compile(transformed, filename=f"<autosynch {cls.__qualname__}>", mode="exec")
    exec(code, namespace)
    new_class = namespace[cls.__name__]
    if not isinstance(new_class, type):  # pragma: no cover - defensive
        raise PreprocessorError(f"transformation of {cls.__qualname__} did not produce a class")

    merged_options = dict(getattr(new_class, OPTIONS_ATTRIBUTE, {}))
    merged_options.update(options)
    setattr(new_class, OPTIONS_ATTRIBUTE, merged_options)
    new_class.__module__ = cls.__module__
    new_class.__qualname__ = cls.__qualname__
    new_class.__doc__ = cls.__doc__
    new_class.__autosynch_source__ = transformed
    return new_class


@overload
def autosynch(cls: type) -> type: ...


@overload
def autosynch(
    *, signalling: str = ..., backend: object = ..., profile: bool = ...
) -> Callable[[type], type]: ...


def autosynch(
    cls: Optional[type] = None, **options: object
) -> Union[type, Callable[[type], type]]:
    """Turn a plain class into an AutoSynch monitor (the paper's ``AutoSynch class``).

    May be used bare (``@autosynch``) or with the monitor options accepted by
    :class:`repro.core.AutoSynchMonitor`::

        @autosynch(signalling="autosynch_t")
        class Buffer: ...

    Every public method becomes a monitor entry method and every bare
    ``waituntil(expr)`` statement inside the class is rewritten into a
    ``self.wait_until`` call with its thread-local variables captured.
    """
    if cls is not None and options:
        raise TypeError("use either @autosynch or @autosynch(**options), not both")
    if cls is not None:
        return _transform_class(cls, {})

    def decorator(target: type) -> type:
        return _transform_class(target, dict(options))

    return decorator
