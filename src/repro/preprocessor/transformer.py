"""AST transformations turning AutoSynch surface syntax into runtime calls.

The transformation mirrors Fig. 5 and Fig. 6 of the paper:

* the class gains :class:`repro.core.AutoSynchMonitor` as a base (which
  provides the monitor lock, entry-method wrapping and the condition
  manager — the "additional variables" of Fig. 5);
* every bare ``waituntil(expr)`` statement becomes
  ``self.wait_until("expr", local=local, ...)`` with the thread-local names
  captured as keyword arguments, which is exactly the globalization hand-off
  of Fig. 6.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.preprocessor.analyze import is_waituntil_call, local_names_in_expression
from repro.preprocessor.errors import PreprocessorError

__all__ = [
    "MONITOR_BASE_NAME",
    "OPTIONS_ATTRIBUTE",
    "transform_class_def",
    "transform_class_source",
    "transform_module_source",
]

#: Name of the monitor base class referenced by generated code.
MONITOR_BASE_NAME = "AutoSynchMonitor"
#: Class attribute holding the decorator options for generated classes.
OPTIONS_ATTRIBUTE = "_autosynch_options"
#: Module that provides the base class in generated imports.
MONITOR_BASE_MODULE = "repro.core.monitor"


class _WaituntilRewriter(ast.NodeTransformer):
    """Rewrites ``waituntil(expr)`` statements inside one class body."""

    def __init__(self, waituntil_name: str) -> None:
        self._waituntil_name = waituntil_name
        self.rewritten = 0

    # Statements -------------------------------------------------------

    def visit_Expr(self, node: ast.Expr) -> ast.AST:
        if is_waituntil_call(node.value, self._waituntil_name):
            # Rewrite before descending so visit_Call does not flag this
            # (legitimate) statement-form use.
            return ast.Expr(value=self._rewrite_call(node.value))
        self.generic_visit(node)
        return node

    # Any other use of waituntil is a mistake --------------------------

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        if is_waituntil_call(node, self._waituntil_name):
            raise PreprocessorError(
                f"{self._waituntil_name}(...) must be used as a standalone statement "
                f"(line {node.lineno}); it has no return value"
            )
        return node

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        # Nested classes are left untouched; waituntil inside them would need
        # their own @autosynch decoration.
        return node

    def _rewrite_call(self, call: ast.Call) -> ast.Call:
        if len(call.args) != 1 or call.keywords:
            raise PreprocessorError(
                f"{self._waituntil_name}() takes exactly one positional argument: "
                f"the waiting condition (line {call.lineno})"
            )
        predicate = call.args[0]
        if isinstance(predicate, (ast.GeneratorExp, ast.Lambda, ast.Await)):
            raise PreprocessorError(
                f"unsupported construct in {self._waituntil_name} condition "
                f"(line {call.lineno})"
            )
        source = ast.unparse(predicate)
        keywords = [
            ast.keyword(arg=name, value=ast.Name(id=name, ctx=ast.Load()))
            for name in local_names_in_expression(predicate)
        ]
        new_call = ast.Call(
            func=ast.Attribute(
                value=ast.Name(id="self", ctx=ast.Load()),
                attr="wait_until",
                ctx=ast.Load(),
            ),
            args=[ast.Constant(value=source)],
            keywords=keywords,
        )
        self.rewritten += 1
        return new_call


def _decorator_matches(node: ast.expr, decorator_name: str) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == decorator_name
    if isinstance(target, ast.Attribute):
        return target.attr == decorator_name
    return False


def _extract_options(node: ast.expr) -> Dict[str, object]:
    """Literal keyword options of an ``@autosynch(...)`` decorator."""
    if not isinstance(node, ast.Call):
        return {}
    if node.args:
        raise PreprocessorError("@autosynch accepts keyword options only")
    options: Dict[str, object] = {}
    for keyword in node.keywords:
        if keyword.arg is None:
            raise PreprocessorError("@autosynch does not accept **kwargs")
        try:
            options[keyword.arg] = ast.literal_eval(keyword.value)
        except ValueError as exc:
            raise PreprocessorError(
                f"@autosynch option {keyword.arg!r} must be a literal when used "
                "with the offline preprocessor"
            ) from exc
    return options


def _options_statement(options: Dict[str, object]) -> ast.Assign:
    literal = ast.parse(repr(options), mode="eval").body
    return ast.Assign(
        targets=[ast.Name(id=OPTIONS_ATTRIBUTE, ctx=ast.Store())], value=literal
    )


def _monitor_init_call() -> ast.Expr:
    """``AutoSynchMonitor.__init__(self, **self._autosynch_options)``"""
    return ast.Expr(
        value=ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=MONITOR_BASE_NAME, ctx=ast.Load()),
                attr="__init__",
                ctx=ast.Load(),
            ),
            args=[ast.Name(id="self", ctx=ast.Load())],
            keywords=[
                ast.keyword(
                    arg=None,
                    value=ast.Attribute(
                        value=ast.Name(id="self", ctx=ast.Load()),
                        attr=OPTIONS_ATTRIBUTE,
                        ctx=ast.Load(),
                    ),
                )
            ],
        )
    )


def _synthesized_init() -> ast.FunctionDef:
    function = ast.parse(
        "def __init__(self):\n    pass\n", mode="exec"
    ).body[0]
    function.body = [_monitor_init_call()]
    return function


def _docstring_offset(body: List[ast.stmt]) -> int:
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        return 1
    return 0


def transform_class_def(
    class_def: ast.ClassDef,
    decorator_name: str = "autosynch",
    waituntil_name: str = "waituntil",
    extra_options: Optional[Dict[str, object]] = None,
) -> Tuple[ast.ClassDef, Dict[str, object]]:
    """Transform one ``@autosynch`` class definition in place.

    Returns the transformed node and the options collected from the decorator
    (merged with *extra_options*).
    """
    options: Dict[str, object] = dict(extra_options or {})
    kept_decorators: List[ast.expr] = []
    found = False
    for decorator in class_def.decorator_list:
        if _decorator_matches(decorator, decorator_name):
            found = True
            options.update(_extract_options(decorator))
        else:
            kept_decorators.append(decorator)
    if not found and extra_options is None:
        raise PreprocessorError(
            f"class {class_def.name} is not decorated with @{decorator_name}"
        )
    class_def.decorator_list = kept_decorators

    # Base class.
    base_names = {base.id for base in class_def.bases if isinstance(base, ast.Name)}
    if MONITOR_BASE_NAME not in base_names:
        class_def.bases.insert(0, ast.Name(id=MONITOR_BASE_NAME, ctx=ast.Load()))

    # Rewrite waituntil statements.
    rewriter = _WaituntilRewriter(waituntil_name)
    for index, statement in enumerate(class_def.body):
        class_def.body[index] = rewriter.visit(statement)

    # Options attribute + monitor initialization.
    offset = _docstring_offset(class_def.body)
    class_def.body.insert(offset, _options_statement(options))

    init = next(
        (
            statement
            for statement in class_def.body
            if isinstance(statement, ast.FunctionDef) and statement.name == "__init__"
        ),
        None,
    )
    if init is None:
        class_def.body.append(_synthesized_init())
    else:
        init.body.insert(_docstring_offset(init.body), _monitor_init_call())

    ast.fix_missing_locations(class_def)
    return class_def, options


def transform_class_source(
    source: str,
    decorator_name: str = "autosynch",
    waituntil_name: str = "waituntil",
    extra_options: Optional[Dict[str, object]] = None,
) -> str:
    """Transform the source text of a single class definition.

    This is the entry point used by the :func:`repro.preprocessor.autosynch`
    decorator (after ``textwrap.dedent``-ing ``inspect.getsource`` output).
    """
    module = ast.parse(source)
    class_defs = [node for node in module.body if isinstance(node, ast.ClassDef)]
    if len(class_defs) != 1:
        raise PreprocessorError(
            f"expected exactly one class definition, found {len(class_defs)}"
        )
    transform_class_def(
        class_defs[0],
        decorator_name=decorator_name,
        waituntil_name=waituntil_name,
        extra_options=extra_options if extra_options is not None else {},
    )
    return ast.unparse(ast.fix_missing_locations(module))


def _prune_preprocessor_imports(module: ast.Module, names: Tuple[str, ...]) -> None:
    """Remove ``from repro.preprocessor import autosynch, waituntil`` imports
    (the generated module no longer needs the surface syntax)."""
    pruned: List[ast.stmt] = []
    for statement in module.body:
        if isinstance(statement, ast.ImportFrom) and statement.module and (
            statement.module == "repro.preprocessor"
            or statement.module.endswith(".preprocessor")
        ):
            statement.names = [alias for alias in statement.names if alias.name not in names]
            if not statement.names:
                continue
        pruned.append(statement)
    module.body = pruned


def transform_module_source(
    source: str,
    decorator_name: str = "autosynch",
    waituntil_name: str = "waituntil",
) -> str:
    """Translate a whole module (the offline / CLI path, Fig. 2 of the paper).

    Every class decorated with ``@autosynch`` is transformed; an import of the
    monitor base class is added; imports of the surface-syntax helpers are
    removed.  Modules with no ``@autosynch`` classes are returned unchanged.
    """
    module = ast.parse(source)
    transformed_any = False
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(_decorator_matches(d, decorator_name) for d in node.decorator_list):
            transform_class_def(
                node, decorator_name=decorator_name, waituntil_name=waituntil_name
            )
            transformed_any = True
    if not transformed_any:
        return source

    _prune_preprocessor_imports(module, (decorator_name, waituntil_name))
    import_statement = ast.ImportFrom(
        module=MONITOR_BASE_MODULE,
        names=[ast.alias(name=MONITOR_BASE_NAME, asname=None)],
        level=0,
    )
    # Insert after the module docstring and any __future__ imports (which must
    # stay first).
    position = _docstring_offset(module.body)
    while position < len(module.body):
        statement = module.body[position]
        if isinstance(statement, ast.ImportFrom) and statement.module == "__future__":
            position += 1
        else:
            break
    module.body.insert(position, import_statement)
    return ast.unparse(ast.fix_missing_locations(module))
