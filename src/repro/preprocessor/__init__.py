"""AutoSynch preprocessor: ``@autosynch`` classes with bare ``waituntil``.

The paper's framework has two halves: a JavaCC *preprocessor* that rewrites
``AutoSynch class`` declarations and ``waituntil(P)`` statements into plain
Java, and a runtime *condition manager* library.  This package is the Python
analogue of the preprocessor; :mod:`repro.core` is the runtime library.

Two ways to use it:

* **Decorator (recommended).**  Decorate a plain class with
  :func:`autosynch`; the class source is transformed at import time so that
  it extends :class:`repro.core.AutoSynchMonitor` and every bare
  ``waituntil(expr)`` statement becomes a ``self.wait_until(...)`` call with
  the thread-local variables captured automatically::

      from repro.preprocessor import autosynch, waituntil

      @autosynch
      class BoundedBuffer:
          def __init__(self, capacity):
              self.items = []
              self.capacity = capacity

          def put(self, item):
              waituntil(len(self.items) < self.capacity)
              self.items.append(item)

* **Offline translation.**  ``python -m repro.preprocessor input.py -o
  output.py`` (or the installed ``autosynch-pp`` script) rewrites a whole
  module, producing plain Python that depends only on the runtime library —
  the exact analogue of Fig. 2 in the paper.
"""

from repro.preprocessor.errors import PreprocessorError
from repro.preprocessor.runtime import autosynch, waituntil
from repro.preprocessor.transformer import (
    transform_class_source,
    transform_module_source,
)

__all__ = [
    "PreprocessorError",
    "autosynch",
    "transform_class_source",
    "transform_module_source",
    "waituntil",
]
