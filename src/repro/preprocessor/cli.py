"""Command-line front end of the offline preprocessor (``autosynch-pp``).

Mirrors Fig. 2 of the paper: AutoSynch code goes in, plain Python that only
depends on the runtime library comes out, and the standard interpreter runs
the result.

Examples
--------
Translate one file and print the result::

    autosynch-pp examples/bounded_buffer_autosynch.py

Translate in place next to the source::

    autosynch-pp monitor.py -o monitor_generated.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.preprocessor.errors import PreprocessorError
from repro.preprocessor.transformer import transform_module_source

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="autosynch-pp",
        description="Translate @autosynch classes with waituntil statements into plain Python.",
    )
    parser.add_argument("input", type=Path, help="Python source file to translate")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        help="output file (default: print the translated module to stdout)",
    )
    parser.add_argument(
        "--decorator-name",
        default="autosynch",
        help="name of the decorator marking monitor classes (default: autosynch)",
    )
    parser.add_argument(
        "--waituntil-name",
        default="waituntil",
        help="name of the waituntil function in the source (default: waituntil)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        source = args.input.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"autosynch-pp: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    try:
        translated = transform_module_source(
            source,
            decorator_name=args.decorator_name,
            waituntil_name=args.waituntil_name,
        )
    except (PreprocessorError, SyntaxError) as exc:
        print(f"autosynch-pp: {args.input}: {exc}", file=sys.stderr)
        return 1
    if args.output is None:
        print(translated)
    else:
        args.output.write_text(translated + "\n", encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
