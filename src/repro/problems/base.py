"""Common scaffolding for the seven synchronization problems of §6.3.

Each problem module provides a :class:`Problem` subclass that knows how to

* build the shared monitor for a given signalling *mechanism*
  (``"explicit"``, ``"baseline"``, ``"autosynch_t"`` or ``"autosynch"``),
* build the worker thread bodies of a saturation test sized by the figure's
  x-axis value (``threads``) and a total operation budget, and
* verify the problem's correctness invariants after the run.

The experiment harness (:mod:`repro.harness`) is completely generic over
these objects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import MonitorBase
from repro.runtime.api import Backend

__all__ = ["MECHANISMS", "AUTOMATIC_MECHANISMS", "WorkloadSpec", "Problem"]

#: Signalling mechanisms compared in the paper, in presentation order.
MECHANISMS = ("explicit", "baseline", "autosynch_t", "autosynch")

#: Mechanisms implemented by the waituntil-style (automatic) monitor.
AUTOMATIC_MECHANISMS = ("baseline", "autosynch_t", "autosynch")


@dataclass
class WorkloadSpec:
    """A ready-to-run saturation workload."""

    #: The shared monitor under test.
    monitor: MonitorBase
    #: One callable per worker thread.
    targets: List[Callable[[], None]]
    #: Thread names, same length as ``targets``.
    names: List[str]
    #: Post-run invariant check; raises AssertionError on violation.
    verify: Callable[[], None] = field(default=lambda: None)
    #: Total number of monitor operations the workload performs (approximate,
    #: used to normalize per-operation costs in reports).
    operations: int = 0


class Problem(abc.ABC):
    """A named synchronization problem with per-mechanism implementations."""

    #: Problem identifier used by the harness, experiments and CLI.
    name: str = "abstract"
    #: Human-readable description shown in reports.
    description: str = ""
    #: Which mechanisms this problem supports (all four by default).
    mechanisms: Tuple[str, ...] = MECHANISMS
    #: Whether every ``waituntil`` predicate is shared (§6.3.1) or complex.
    uses_complex_predicates: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Problem {self.name}>"

    @abc.abstractmethod
    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        **params: object,
    ) -> WorkloadSpec:
        """Construct the monitor and worker bodies for one saturation run.

        ``threads`` is the figure's x-axis value (its exact meaning — number
        of producers/consumers, H atoms, customers, philosophers, ... — is
        documented by each problem).  ``total_ops`` is the total operation
        budget shared by the worker threads, so runtime measures
        synchronization overhead rather than total work.
        """

    # -- helpers shared by concrete problems ---------------------------------

    def _check_mechanism(self, mechanism: str) -> None:
        if mechanism not in self.mechanisms:
            raise ValueError(
                f"problem {self.name!r} does not support mechanism {mechanism!r}; "
                f"supported: {self.mechanisms}"
            )

    @staticmethod
    def _split_ops(total_ops: int, workers: int) -> List[int]:
        """Split a total operation budget as evenly as possible."""
        if workers <= 0:
            return []
        base, remainder = divmod(max(total_ops, workers), workers)
        return [base + (1 if index < remainder else 0) for index in range(workers)]

    @staticmethod
    def monitor_kwargs(mechanism: str, backend: Backend, profile: bool) -> Dict[str, object]:
        """Constructor keyword arguments for the automatic monitor variants."""
        return {"backend": backend, "signalling": mechanism, "profile": profile}
