"""Common scaffolding for the seven synchronization problems of §6.3.

Each problem module provides a :class:`Problem` subclass that knows how to

* build the shared monitor for a given signalling *mechanism*
  (``"explicit"`` or any policy registered in :mod:`repro.core.signalling` —
  ``"baseline"``, ``"autosynch_t"``, ``"autosynch"``, ``"relay_batched"``,
  ``"relay_fifo"``, ...),
* build the worker thread bodies of a saturation test sized by the figure's
  x-axis value (``threads``) and a total operation budget, and
* verify the problem's correctness invariants after the run.

The experiment harness (:mod:`repro.harness`) is completely generic over
these objects.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.monitor import AUTOMATIC_MODES, MonitorBase
from repro.core.signalling import available_policies
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.runtime.api import Backend

__all__ = [
    "EXPLICIT_MECHANISM",
    "MECHANISMS",
    "AUTOMATIC_MECHANISMS",
    "all_mechanisms",
    "Oracle",
    "WorkloadSpec",
    "Problem",
]

#: The hand-written explicit-signal implementation (not a registry policy).
EXPLICIT_MECHANISM = "explicit"

#: The paper's automatic mechanisms in the figures' presentation order
#: (weakest mechanism first — the reverse of ``AUTOMATIC_MODES``);
#: membership is then re-derived from the signalling-policy registry so a
#: renamed/removed policy cannot silently diverge from what the monitor
#: actually accepts.
_PAPER_AUTOMATIC_ORDER = tuple(reversed(AUTOMATIC_MODES))

#: The paper's automatic mechanisms (the legacy comparison set).
AUTOMATIC_MECHANISMS = tuple(
    name for name in _PAPER_AUTOMATIC_ORDER if name in available_policies()
)

#: Default comparison set of the paper's figures, in presentation order.
MECHANISMS = (EXPLICIT_MECHANISM,) + AUTOMATIC_MECHANISMS


def all_mechanisms() -> Tuple[str, ...]:
    """Every runnable mechanism: ``"explicit"`` plus all registered policies.

    Unlike :data:`MECHANISMS` (the paper's frozen comparison set) this
    reflects the live registry, so custom policies show up automatically.
    """
    return (EXPLICIT_MECHANISM,) + available_policies()


@dataclass(frozen=True)
class Oracle:
    """A named invariant over one monitor, checkable at any quiescent point.

    Oracles are the schedule explorer's probes: :mod:`repro.explore` evaluates
    every oracle at every scheduling decision point (where exactly one
    simulated thread is between synchronization operations, so monitor state
    is stable and race-free to read).  ``check`` returns ``None`` while the
    invariant holds and a human-readable violation description otherwise.

    ``kind`` distinguishes safety oracles ("this state must never occur")
    from liveness oracles ("progress must keep happening"), purely for
    reporting.
    """

    name: str
    check: Callable[[], Optional[str]]
    kind: str = "safety"

    def describe(self) -> str:
        return f"{self.name} ({self.kind})"


@dataclass
class WorkloadSpec:
    """A ready-to-run saturation workload."""

    #: The shared monitor under test.
    monitor: MonitorBase
    #: One callable per worker thread.
    targets: List[Callable[[], None]]
    #: Thread names, same length as ``targets``.
    names: List[str]
    #: Post-run invariant check; raises AssertionError on violation.
    verify: Callable[[], None] = field(default=lambda: None)
    #: Total number of monitor operations the workload performs (approximate,
    #: used to normalize per-operation costs in reports).
    operations: int = 0


class Problem(abc.ABC):
    """A named synchronization problem with per-mechanism implementations."""

    #: Problem identifier used by the harness, experiments and CLI.
    name: str = "abstract"
    #: Human-readable description shown in reports.
    description: str = ""
    #: Which mechanisms this problem supports (all four by default).
    mechanisms: Tuple[str, ...] = MECHANISMS
    #: Whether every ``waituntil`` predicate is shared (§6.3.1) or complex.
    uses_complex_predicates: bool = False
    #: Default liveness budget for schedule exploration: fail a run when a
    #: thread stays blocked for this many consecutive scheduling decisions.
    #: ``None`` disables the check (the default — adversarial DFS schedules
    #: are deliberately unfair, so only opt in where starvation is a bug
    #: under *any* schedule).  Overridable per run via
    #: ``ExploreTask.starvation_budget``.
    starvation_budget: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Problem {self.name}>"

    @abc.abstractmethod
    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        **params: object,
    ) -> WorkloadSpec:
        """Construct the monitor and worker bodies for one saturation run.

        ``threads`` is the figure's x-axis value (its exact meaning — number
        of producers/consumers, H atoms, customers, philosophers, ... — is
        documented by each problem).  ``total_ops`` is the total operation
        budget shared by the worker threads, so runtime measures
        synchronization overhead rather than total work.  ``validate``
        enables the automatic monitor's relay-invariance checking;
        ``eval_engine`` selects the predicate-evaluation engine of the
        automatic monitors (``"compiled"``/``"interpreted"``).
        """

    def oracles(self, monitor: MonitorBase) -> Tuple[Oracle, ...]:
        """Safety/liveness oracles over *monitor*, for schedule exploration.

        The monitor is one built by :meth:`build` for this problem (either
        the automatic or the explicit variant — both expose the same public
        counters, so oracles apply to every mechanism).  The default is no
        oracles; concrete problems override this with their invariants
        (buffer bounds, reader/writer exclusion, stoichiometry, ...).
        """
        return ()

    # -- declarations consumed by partial-order reduction ---------------------

    def symmetry_classes(
        self, threads: int, total_ops: int, **params: object
    ) -> Tuple[Tuple[int, ...], ...]:
        """Groups of interchangeable worker threads, by kernel thread id.

        Two threads are interchangeable when they run the *same program with
        the same operation quota*, so renaming one to the other maps every
        schedule to an equivalent schedule.  The DPOR explorer
        (:mod:`repro.explore.dpor`) uses these classes to canonicalise
        configurations and to skip alternatives that are automorphic images
        of ones already branched.  The default — no classes — disables
        symmetry reduction and is always sound; problems whose
        :meth:`build` spawns uniform worker groups should override this
        (and must return () when quotas are split unevenly).
        """
        return ()

    def state_projection(
        self, threads: int, total_ops: int, **params: object
    ) -> Optional[Callable[[str, object], object]]:
        """Optional abstraction of monitor state for DPOR config merging.

        The DPOR explorer merges two exploration nodes when their *abstract
        configurations* — monitor public variables plus kernel thread/lock
        state — coincide, on the argument that equal configurations have
        isomorphic schedule subtrees.  That argument needs every variable's
        abstraction to preserve the monitor's control flow and the problem's
        oracles.  The default (None) keeps full variable contents, which is
        always sound; a problem may return ``project(name, value) -> key``
        mapping a variable to a coarser key (e.g. a queue to its length)
        when it can promise that nothing observable depends on the dropped
        detail.
        """
        return None

    # -- helpers shared by concrete problems ---------------------------------

    def supported_mechanisms(self) -> Tuple[str, ...]:
        """The problem's own mechanism set plus every registered policy.

        A problem that supports any automatic mechanism runs under every
        signalling policy (its ``waituntil`` monitor is policy-agnostic), so
        registry extensions are supported without per-problem changes.
        """
        declared = self.mechanisms
        if any(name in declared for name in AUTOMATIC_MECHANISMS):
            extras = tuple(
                name for name in available_policies() if name not in declared
            )
            return declared + extras
        return declared

    def _check_mechanism(self, mechanism: str) -> None:
        supported = self.supported_mechanisms()
        if mechanism not in supported:
            raise ValueError(
                f"problem {self.name!r} does not support mechanism {mechanism!r}; "
                f"supported: {supported}"
            )

    @staticmethod
    def _split_ops(total_ops: int, workers: int) -> List[int]:
        """Split a total operation budget as evenly as possible."""
        if workers <= 0:
            return []
        base, remainder = divmod(max(total_ops, workers), workers)
        return [base + (1 if index < remainder else 0) for index in range(workers)]

    @staticmethod
    def monitor_kwargs(
        mechanism: str,
        backend: Backend,
        profile: bool,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
    ) -> Dict[str, object]:
        """Constructor keyword arguments for the automatic monitor variants."""
        return {
            "backend": backend,
            "signalling": mechanism,
            "profile": profile,
            "validate": validate,
            "eval_engine": eval_engine,
        }
