"""The round-robin access pattern (§6.3.2, Fig. 11 and Table 1).

``threads`` worker threads access the monitor strictly in thread-id order:
thread *i* may only proceed when ``turn == i``.  The ``waituntil`` predicate
is a *complex* equivalence predicate (it mentions the caller's id), which is
exactly the case where predicate tagging pays off: AutoSynch finds the one
true predicate with a hash lookup, while AutoSynch-T has to scan every
waiting predicate and the explicit version signals the next thread's
dedicated condition variable directly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = ["AutoRoundRobin", "ExplicitRoundRobin", "RoundRobinProblem"]


class AutoRoundRobin(AutoSynchMonitor):
    """Automatic-signal round-robin turnstile."""

    def __init__(self, num_threads: int, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if num_threads < 1:
            raise ValueError("need at least one participant")
        self.num_threads = num_threads
        self.turn = 0
        self.accesses = 0
        self.order_violations = 0

    def access(self, thread_id: int) -> None:
        """Enter the monitor when it is *thread_id*'s turn and pass the turn on."""
        self.wait_until("turn == me", me=thread_id)
        if self.turn != thread_id:
            self.order_violations += 1
        self.accesses += 1
        self.turn = (self.turn + 1) % self.num_threads


class ExplicitRoundRobin(ExplicitMonitor):
    """Explicit-signal round-robin turnstile with one condition per thread."""

    def __init__(self, num_threads: int, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if num_threads < 1:
            raise ValueError("need at least one participant")
        self.num_threads = num_threads
        self.turn = 0
        self.accesses = 0
        self.order_violations = 0
        self.turn_conditions = [
            self.new_condition(f"turn-{index}") for index in range(num_threads)
        ]

    def access(self, thread_id: int) -> None:
        while self.turn != thread_id:
            self.wait_on(self.turn_conditions[thread_id])
        self.accesses += 1
        self.turn = (self.turn + 1) % self.num_threads
        # The programmer knows exactly which thread goes next.
        self.signal(self.turn_conditions[self.turn])


class RoundRobinProblem(Problem):
    """Saturation workload: every thread takes the same number of turns."""

    name = "round_robin"
    description = "threads access the monitor strictly in round-robin order"
    uses_complex_predicates = True

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        def turn_order() -> Optional[str]:
            if not 0 <= monitor.turn < monitor.num_threads:
                return (
                    f"turn={monitor.turn} outside "
                    f"[0, num_threads={monitor.num_threads})"
                )
            if monitor.order_violations:
                return (
                    f"{monitor.order_violations} out-of-turn access(es) "
                    "observed by the monitor"
                )
            return None

        return (Oracle("round_robin_order", turn_order),)

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 1:
            raise ValueError("need at least one thread")

        if mechanism == "explicit":
            monitor = ExplicitRoundRobin(threads, backend=backend, profile=profile)
        else:
            monitor = AutoRoundRobin(
                threads, **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        # Every thread must take the same number of turns or the rotation
        # would wedge waiting for a thread that has already finished.
        rounds = max(1, total_ops // threads)

        def make_worker(thread_id: int):
            def worker() -> None:
                for _ in range(rounds):
                    monitor.access(thread_id)

            return worker

        targets: List = [make_worker(thread_id) for thread_id in range(threads)]
        names = [f"worker-{thread_id}" for thread_id in range(threads)]

        def verify() -> None:
            assert monitor.accesses == rounds * threads
            assert monitor.order_violations == 0
            assert monitor.turn == 0

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=rounds * threads,
        )
