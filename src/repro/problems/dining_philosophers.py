"""The dining-philosophers problem (§6.3.2, Fig. 13).

``threads`` philosophers sit around a table with one chopstick between each
pair of neighbours.  A philosopher picks up both chopsticks atomically (the
monitor makes the two-chopstick grab a single critical section, so no
deadlock is possible) and waits while either neighbour holds one of them.

The ``waituntil`` predicate is complex — it indexes the chopstick array with
the philosopher's own position — and is written as an equivalence
(``chopsticks[left] + chopsticks[right] == 2``) so AutoSynch can index
waiting philosophers by the state of their own pair of chopsticks.  The
explicit version keeps one condition variable per philosopher and signals
both neighbours on putting the chopsticks down.  As the paper observes, a
philosopher only ever competes with two neighbours, so all mechanisms stay
relatively close on this problem.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = ["AutoDiningTable", "ExplicitDiningTable", "DiningPhilosophersProblem"]


class AutoDiningTable(AutoSynchMonitor):
    """Automatic-signal dining table."""

    def __init__(self, seats: int, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if seats < 2:
            raise ValueError("the table needs at least two philosophers")
        self.seats = seats
        # 1 = chopstick available, 0 = held by a neighbour.
        self.chopsticks = [1] * seats
        self.meals = 0
        self.violations = 0

    def pick_up(self, seat: int) -> None:
        """Grab both chopsticks adjacent to *seat*, waiting until both are free."""
        left = seat
        right = (seat + 1) % self.seats
        self.wait_until("chopsticks[left] + chopsticks[right] == 2", left=left, right=right)
        if self.chopsticks[left] != 1 or self.chopsticks[right] != 1:
            self.violations += 1
        self.chopsticks[left] = 0
        self.chopsticks[right] = 0

    def put_down(self, seat: int) -> None:
        """Release both chopsticks adjacent to *seat*."""
        left = seat
        right = (seat + 1) % self.seats
        if self.chopsticks[left] != 0 or self.chopsticks[right] != 0:
            self.violations += 1
        self.chopsticks[left] = 1
        self.chopsticks[right] = 1
        self.meals += 1


class ExplicitDiningTable(ExplicitMonitor):
    """Explicit-signal dining table with one condition per philosopher."""

    def __init__(self, seats: int, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if seats < 2:
            raise ValueError("the table needs at least two philosophers")
        self.seats = seats
        self.chopsticks = [1] * seats
        self.meals = 0
        self.violations = 0
        self.seat_conditions = [self.new_condition(f"seat-{i}") for i in range(seats)]

    def _both_free(self, seat: int) -> bool:
        left = seat
        right = (seat + 1) % self.seats
        return self.chopsticks[left] == 1 and self.chopsticks[right] == 1

    def pick_up(self, seat: int) -> None:
        while not self._both_free(seat):
            self.wait_on(self.seat_conditions[seat])
        left = seat
        right = (seat + 1) % self.seats
        if self.chopsticks[left] != 1 or self.chopsticks[right] != 1:
            self.violations += 1
        self.chopsticks[left] = 0
        self.chopsticks[right] = 0

    def put_down(self, seat: int) -> None:
        left = seat
        right = (seat + 1) % self.seats
        if self.chopsticks[left] != 0 or self.chopsticks[right] != 0:
            self.violations += 1
        self.chopsticks[left] = 1
        self.chopsticks[right] = 1
        self.meals += 1
        # Only the two neighbours can possibly be unblocked by this.
        self.signal(self.seat_conditions[(seat - 1) % self.seats])
        self.signal(self.seat_conditions[(seat + 1) % self.seats])


class DiningPhilosophersProblem(Problem):
    """Saturation workload: every philosopher eats the same number of meals."""

    name = "dining_philosophers"
    description = "philosophers grab both adjacent chopsticks atomically"
    uses_complex_predicates = True

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        def chopstick_exclusion() -> Optional[str]:
            bad = [
                (seat, stick)
                for seat, stick in enumerate(monitor.chopsticks)
                if stick not in (0, 1)
            ]
            if bad:
                return f"chopsticks hold non-binary state: {bad}"
            if monitor.violations:
                return (
                    f"{monitor.violations} pick-up/put-down exclusion "
                    "violation(s) observed by the monitor"
                )
            return None

        return (Oracle("chopstick_exclusion", chopstick_exclusion),)

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 2:
            raise ValueError("need at least two philosophers")

        if mechanism == "explicit":
            monitor = ExplicitDiningTable(threads, backend=backend, profile=profile)
        else:
            monitor = AutoDiningTable(
                threads, **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        # One "operation" is a full pick_up/put_down cycle (a meal).
        meals_per_philosopher = max(1, total_ops // (2 * threads))

        def make_philosopher(seat: int):
            def philosopher() -> None:
                for _ in range(meals_per_philosopher):
                    monitor.pick_up(seat)
                    monitor.put_down(seat)

            return philosopher

        targets: List = [make_philosopher(seat) for seat in range(threads)]
        names = [f"philosopher-{seat}" for seat in range(threads)]

        def verify() -> None:
            assert monitor.violations == 0
            assert monitor.meals == meals_per_philosopher * threads
            assert all(stick == 1 for stick in monitor.chopsticks)

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=2 * meals_per_philosopher * threads,
        )
