"""The sleeping-barber problem (§6.3.1, Fig. 10).

One barber serves customers one at a time; customers wait in a bounded
waiting room and leave ("balk") when it is full.  All ``waituntil``
predicates are shared predicates over the shop state (no thread-local
variables), matching the paper's classification of this problem.

``threads`` in :meth:`SleepingBarberProblem.build` is the number of customer
threads; one extra barber thread is always created.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = ["AutoBarberShop", "ExplicitBarberShop", "SleepingBarberProblem"]

DEFAULT_CHAIRS = 8


class AutoBarberShop(AutoSynchMonitor):
    """Automatic-signal barber shop."""

    def __init__(
        self,
        chairs: int = DEFAULT_CHAIRS,
        num_customers: int = 1,
        **monitor_kwargs: object,
    ) -> None:
        super().__init__(**monitor_kwargs)
        if chairs < 1:
            raise ValueError("the waiting room needs at least one chair")
        self.chairs = chairs
        self.num_customers = num_customers
        self.waiting = 0
        self.chair_occupied = False
        self.haircut_done = False
        self.haircuts_given = 0
        self.haircuts_received = 0
        self.balked = 0
        self.customers_finished = 0

    def visit(self) -> bool:
        """One customer visit: returns False if the waiting room was full."""
        if self.waiting == self.chairs:
            self.balked += 1
            return False
        self.waiting += 1
        self.wait_until("not chair_occupied")
        self.waiting -= 1
        self.chair_occupied = True
        self.haircut_done = False
        self.wait_until("haircut_done")
        self.chair_occupied = False
        self.haircuts_received += 1
        return True

    def barber_work(self) -> bool:
        """Cut one customer's hair; returns False when the shop can close."""
        self.wait_until(
            "(chair_occupied and not haircut_done) or customers_finished == num_customers"
        )
        if self.chair_occupied and not self.haircut_done:
            self.haircut_done = True
            self.haircuts_given += 1
            return True
        return False

    def customer_done(self) -> None:
        """A customer thread finished all its visits."""
        self.customers_finished += 1


class ExplicitBarberShop(ExplicitMonitor):
    """Explicit-signal barber shop with three condition variables."""

    def __init__(
        self,
        chairs: int = DEFAULT_CHAIRS,
        num_customers: int = 1,
        **monitor_kwargs: object,
    ) -> None:
        super().__init__(**monitor_kwargs)
        if chairs < 1:
            raise ValueError("the waiting room needs at least one chair")
        self.chairs = chairs
        self.num_customers = num_customers
        self.waiting = 0
        self.chair_occupied = False
        self.haircut_done = False
        self.haircuts_given = 0
        self.haircuts_received = 0
        self.balked = 0
        self.customers_finished = 0
        self.chair_free = self.new_condition("chair_free")
        self.customer_ready = self.new_condition("customer_ready")
        self.cut_finished = self.new_condition("cut_finished")

    def visit(self) -> bool:
        if self.waiting == self.chairs:
            self.balked += 1
            return False
        self.waiting += 1
        while self.chair_occupied:
            self.wait_on(self.chair_free)
        self.waiting -= 1
        self.chair_occupied = True
        self.haircut_done = False
        self.signal(self.customer_ready)
        while not self.haircut_done:
            self.wait_on(self.cut_finished)
        self.chair_occupied = False
        self.haircuts_received += 1
        self.signal(self.chair_free)
        return True

    def barber_work(self) -> bool:
        while not (
            (self.chair_occupied and not self.haircut_done)
            or self.customers_finished == self.num_customers
        ):
            self.wait_on(self.customer_ready)
        if self.chair_occupied and not self.haircut_done:
            self.haircut_done = True
            self.haircuts_given += 1
            self.signal(self.cut_finished)
            return True
        return False

    def customer_done(self) -> None:
        self.customers_finished += 1
        # The barber may be asleep waiting for customers; wake it so it can
        # notice the shop is closing.
        self.signal(self.customer_ready)


class SleepingBarberProblem(Problem):
    """Saturation workload: ``threads`` customers, one barber."""

    name = "sleeping_barber"
    description = "one barber, bounded waiting room, customers may balk"
    uses_complex_predicates = False

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        def waiting_room_bounds() -> Optional[str]:
            if not 0 <= monitor.waiting <= monitor.chairs:
                return (
                    f"waiting={monitor.waiting} outside "
                    f"[0, chairs={monitor.chairs}]"
                )
            return None

        def haircut_accounting() -> Optional[str]:
            # The barber finishes a cut before the customer stands up, so at
            # most one given-but-not-yet-received haircut can be in flight.
            in_flight = monitor.haircuts_given - monitor.haircuts_received
            if in_flight not in (0, 1):
                return (
                    f"given {monitor.haircuts_given} vs received "
                    f"{monitor.haircuts_received}: {in_flight} cuts in flight"
                )
            return None

        return (
            Oracle("waiting_room_bounds", waiting_room_bounds),
            Oracle("haircut_accounting", haircut_accounting),
        )

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        chairs: int = DEFAULT_CHAIRS,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 1:
            raise ValueError("need at least one customer thread")

        if mechanism == "explicit":
            monitor = ExplicitBarberShop(
                chairs, num_customers=threads, backend=backend, profile=profile
            )
        else:
            monitor = AutoBarberShop(
                chairs,
                num_customers=threads,
                **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine),
            )

        visits_per_customer = self._split_ops(max(total_ops, threads), threads)

        def make_customer(visits: int):
            def customer() -> None:
                try:
                    for _ in range(visits):
                        monitor.visit()
                finally:
                    monitor.customer_done()

            return customer

        def barber() -> None:
            while monitor.barber_work():
                pass

        targets = [barber]
        names = ["barber"]
        for index, visits in enumerate(visits_per_customer):
            targets.append(make_customer(visits))
            names.append(f"customer-{index}")

        total_visits = sum(visits_per_customer)

        def verify() -> None:
            assert monitor.customers_finished == threads
            assert monitor.haircuts_given == monitor.haircuts_received
            assert monitor.haircuts_given + monitor.balked == total_visits
            assert not monitor.chair_occupied
            assert monitor.waiting == 0

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=total_visits + total_visits,  # visits + barber actions (approx.)
        )
