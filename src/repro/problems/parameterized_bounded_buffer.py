"""The parameterized bounded-buffer problem (Fig. 1, Fig. 14 and Fig. 15).

Producers put a *batch* of items and consumers take a requested *number* of
items, so different threads wait for different amounts of free space or
available items.  With explicit signalling the programmer cannot know which
waiting thread can proceed, so ``signalAll`` is required — the situation in
which the paper shows AutoSynch winning by more than an order of magnitude.

The ``waituntil`` predicates are complex (they mention the batch size, a
thread-local value), so this problem exercises globalization and threshold
tags: ``count + n <= capacity`` becomes ``count <= capacity - n`` and
``count >= num`` stays a lower-bound threshold.

``threads`` in :meth:`ParameterizedBoundedBufferProblem.build` is the number
of consumers; there is a single producer, as in the paper's experiment.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.problems.bounded_buffer import buffer_oracles
from repro.runtime.api import Backend

__all__ = [
    "AutoParameterizedBoundedBuffer",
    "ExplicitParameterizedBoundedBuffer",
    "ParameterizedBoundedBufferProblem",
]

# With batches of up to ``max_batch`` on both sides, a capacity of at least
# ``2 * max_batch - 1`` guarantees the workload cannot wedge (if the producer
# is blocked the buffer holds at least ``max_batch`` items, so the smallest
# waiting consumer request always fits).
DEFAULT_CAPACITY = 256
DEFAULT_MAX_BATCH = 128


class AutoParameterizedBoundedBuffer(AutoSynchMonitor):
    """Automatic-signal parameterized bounded buffer (right half of Fig. 1)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List[object] = []
        self.count = 0
        self.total_put = 0
        self.total_taken = 0

    def put(self, items: List[object]) -> None:
        """Add every element of *items*, waiting until there is enough space."""
        if len(items) > self.capacity:
            raise ValueError("batch larger than the buffer capacity can never fit")
        self.wait_until("count + n <= capacity", n=len(items))
        self.items.extend(items)
        self.count += len(items)
        self.total_put += len(items)

    def take(self, num: int) -> List[object]:
        """Remove and return *num* items, waiting until enough are available."""
        if num > self.capacity:
            raise ValueError("request larger than the buffer capacity can never be served")
        self.wait_until("count >= num", num=num)
        taken = self.items[:num]
        del self.items[:num]
        self.count -= num
        self.total_taken += num
        return taken


class ExplicitParameterizedBoundedBuffer(ExplicitMonitor):
    """Explicit-signal version (left half of Fig. 1): needs ``signalAll``.

    Because the amount of space/items each waiter needs differs per thread,
    the producer and consumers cannot know which waiter to wake, so both
    sides fall back to waking everybody.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List[object] = []
        self.count = 0
        self.total_put = 0
        self.total_taken = 0
        self.insufficient_space = self.new_condition("insufficient_space")
        self.insufficient_items = self.new_condition("insufficient_items")

    def put(self, items: List[object]) -> None:
        if len(items) > self.capacity:
            raise ValueError("batch larger than the buffer capacity can never fit")
        while self.count + len(items) > self.capacity:
            self.wait_on(self.insufficient_space)
        self.items.extend(items)
        self.count += len(items)
        self.total_put += len(items)
        self.signal_all(self.insufficient_items)

    def take(self, num: int) -> List[object]:
        if num > self.capacity:
            raise ValueError("request larger than the buffer capacity can never be served")
        while self.count < num:
            self.wait_on(self.insufficient_items)
        taken = self.items[:num]
        del self.items[:num]
        self.count -= num
        self.total_taken += num
        self.signal_all(self.insufficient_space)
        return taken


class ParameterizedBoundedBufferProblem(Problem):
    """One producer with random batches, ``threads`` consumers with random takes."""

    name = "parameterized_bounded_buffer"
    description = "batched producers/consumers; explicit signalling needs signalAll"
    uses_complex_predicates = True

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        return buffer_oracles(monitor)

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        capacity: int = DEFAULT_CAPACITY,
        max_batch: int = DEFAULT_MAX_BATCH,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 1:
            raise ValueError("need at least one consumer")
        max_batch = min(max_batch, capacity)

        if mechanism == "explicit":
            monitor = ExplicitParameterizedBoundedBuffer(
                capacity, backend=backend, profile=profile
            )
        else:
            monitor = AutoParameterizedBoundedBuffer(
                capacity, **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        # Pre-draw every consumer's take sizes so that the producer knows the
        # exact number of items to publish and the run terminates.
        rng = random.Random(seed)
        takes_per_consumer = max(1, total_ops // max(threads, 1))
        consumer_requests: List[List[int]] = [
            [rng.randint(1, max_batch) for _ in range(takes_per_consumer)]
            for _ in range(threads)
        ]
        total_items = sum(sum(requests) for requests in consumer_requests)

        producer_rng = random.Random(seed + 1)

        def producer() -> None:
            remaining = total_items
            while remaining > 0:
                batch_size = min(remaining, producer_rng.randint(1, max_batch))
                monitor.put(list(range(batch_size)))
                remaining -= batch_size

        def make_consumer(requests: List[int]):
            def consumer() -> None:
                for request in requests:
                    taken = monitor.take(request)
                    assert len(taken) == request
            return consumer

        targets = [producer]
        names = ["producer-0"]
        for index, requests in enumerate(consumer_requests):
            targets.append(make_consumer(requests))
            names.append(f"consumer-{index}")

        def verify() -> None:
            assert monitor.total_put == total_items
            assert monitor.total_taken == total_items
            assert monitor.count == 0 and not monitor.items

        operations = threads * takes_per_consumer + total_items // max(1, max_batch // 2)
        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=operations,
        )
