"""The classic bounded-buffer (producer/consumer) problem (§6.3.1, Fig. 8).

Producers put single items, consumers take single items; a producer waits
while the buffer is full and a consumer waits while it is empty.  Both
``waituntil`` predicates are *shared* predicates (``count < capacity`` and
``count > 0``), so the automatic-signal mechanisms only ever manage two
condition entries.

``threads`` in :meth:`BoundedBufferProblem.build` is the paper's x-axis
value: the number of producers, which equals the number of consumers.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = [
    "AutoBoundedBuffer",
    "ExplicitBoundedBuffer",
    "BoundedBufferProblem",
    "buffer_oracles",
]


def buffer_oracles(monitor) -> Tuple[Oracle, ...]:
    """Bounds and conservation oracles for any buffer-shaped monitor.

    Works for every monitor exposing ``count``/``capacity``/``items``/
    ``total_put``/``total_taken`` — both variants of the plain bounded
    buffer and of the parameterized one share these invariants.
    """

    def buffer_bounds() -> Optional[str]:
        if not 0 <= monitor.count <= monitor.capacity:
            return f"count={monitor.count} outside [0, capacity={monitor.capacity}]"
        if len(monitor.items) != monitor.count:
            return f"count={monitor.count} but {len(monitor.items)} items stored"
        return None

    def conservation() -> Optional[str]:
        outstanding = monitor.total_put - monitor.total_taken
        if outstanding != monitor.count:
            return (
                f"put {monitor.total_put} - taken {monitor.total_taken} = "
                f"{outstanding}, but count={monitor.count}"
            )
        if monitor.total_taken > monitor.total_put:
            return (
                f"took {monitor.total_taken} items but only "
                f"{monitor.total_put} were ever put"
            )
        return None

    return (
        Oracle("buffer_bounds", buffer_bounds),
        Oracle("item_conservation", conservation),
    )

DEFAULT_CAPACITY = 16


class AutoBoundedBuffer(AutoSynchMonitor):
    """Automatic-signal bounded buffer: no condition variables, no signals."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List[object] = []
        self.count = 0
        self.total_put = 0
        self.total_taken = 0

    def put(self, item: object) -> None:
        """Add *item*, waiting while the buffer is full."""
        self.wait_until("count < capacity")
        self.items.append(item)
        self.count += 1
        self.total_put += 1

    def take(self) -> object:
        """Remove and return the oldest item, waiting while the buffer is empty."""
        self.wait_until("count > 0")
        self.count -= 1
        self.total_taken += 1
        return self.items.pop(0)


class ExplicitBoundedBuffer(ExplicitMonitor):
    """Explicit-signal bounded buffer using two condition variables."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.items: List[object] = []
        self.count = 0
        self.total_put = 0
        self.total_taken = 0
        self.not_full = self.new_condition("not_full")
        self.not_empty = self.new_condition("not_empty")

    def put(self, item: object) -> None:
        while self.count >= self.capacity:
            self.wait_on(self.not_full)
        self.items.append(item)
        self.count += 1
        self.total_put += 1
        self.signal(self.not_empty)

    def take(self) -> object:
        while self.count == 0:
            self.wait_on(self.not_empty)
        self.count -= 1
        self.total_taken += 1
        item = self.items.pop(0)
        self.signal(self.not_full)
        return item


class BoundedBufferProblem(Problem):
    """Saturation workload: ``threads`` producers and ``threads`` consumers."""

    name = "bounded_buffer"
    description = "classic single-item producers/consumers over a bounded buffer"
    uses_complex_predicates = False

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        return buffer_oracles(monitor)

    def symmetry_classes(
        self, threads: int, total_ops: int, **params: object
    ) -> Tuple[Tuple[int, ...], ...]:
        # build() spawns producers as tids 0..threads-1 and consumers as
        # threads..2*threads-1.  Producers differ only in the item *values*
        # they put (base offsets), which the state projection below erases,
        # so within each group threads are interchangeable — but only while
        # _split_ops hands every member the same quota; with an uneven split
        # renaming changes the remaining work, so declare no symmetry then.
        items_total = max(threads, total_ops // 2)
        if items_total % threads != 0:
            return ()
        return (tuple(range(threads)), tuple(range(threads, 2 * threads)))

    def state_projection(self, threads: int, total_ops: int, **params: object):
        # The buffer's control flow (both the waituntil predicates and the
        # explicit twin's while-loops) depends on ``items`` only through
        # ``count``/emptiness, and every oracle and the post-run verify()
        # constrain counters and lengths, never item identity.  Projecting
        # containers to their length is therefore observation-preserving
        # here, and it is what lets schedules that interleave *different*
        # producers converge to one abstract configuration.
        def project(name: str, value: object) -> object:
            if isinstance(value, (list, tuple, set, frozenset, dict)):
                return ("len", len(value))
            return value

        return project

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        capacity: int = DEFAULT_CAPACITY,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 1:
            raise ValueError("the bounded buffer needs at least one producer/consumer pair")

        if mechanism == "explicit":
            monitor = ExplicitBoundedBuffer(capacity, backend=backend, profile=profile)
        else:
            monitor = AutoBoundedBuffer(
                capacity, **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        # ``total_ops`` counts puts + takes; items produced must equal items
        # consumed so the workload terminates.
        items_total = max(threads, total_ops // 2)
        producer_quota = self._split_ops(items_total, threads)
        consumer_quota = self._split_ops(items_total, threads)

        def make_producer(quota: int, base: int):
            def producer() -> None:
                for index in range(quota):
                    monitor.put(base + index)

            return producer

        def make_consumer(quota: int, sink: List[object]):
            def consumer() -> None:
                for _ in range(quota):
                    sink.append(monitor.take())

            return consumer

        taken: List[object] = []
        targets = []
        names = []
        for index, quota in enumerate(producer_quota):
            targets.append(make_producer(quota, index * items_total))
            names.append(f"producer-{index}")
        for index, quota in enumerate(consumer_quota):
            targets.append(make_consumer(quota, taken))
            names.append(f"consumer-{index}")

        def verify() -> None:
            assert monitor.total_put == items_total, (
                f"expected {items_total} puts, saw {monitor.total_put}"
            )
            assert monitor.total_taken == items_total, (
                f"expected {items_total} takes, saw {monitor.total_taken}"
            )
            assert monitor.count == 0 and not monitor.items, "buffer should drain completely"
            assert len(taken) == items_total

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=2 * items_total,
        )
