"""The conditional-synchronization problem catalogue.

The paper's seven problems are each implemented twice: once in the
``waituntil`` style (which runs under every registered signalling policy)
and once with hand-written explicit signalling.  They register themselves
into the problem registry (:mod:`repro.problems.registry`) — the fourth
instantiation of the shared plugin-registry idiom — alongside the built-in
declarative scenarios from :mod:`repro.scenarios`, and the experiment
harness drives any registered :class:`Problem` generically.

:data:`PROBLEMS` is a live view of that registry; :func:`register_problem`
is how new problems (hand-written or compiled from a
:class:`~repro.scenarios.ScenarioSpec`) join the catalogue.
"""

from repro.problems.base import (
    AUTOMATIC_MECHANISMS,
    EXPLICIT_MECHANISM,
    MECHANISMS,
    Oracle,
    Problem,
    WorkloadSpec,
    all_mechanisms,
)
from repro.problems.registry import (
    PROBLEMS,
    available_problems,
    describe_problem,
    get_problem,
    register_problem,
    unregister_problem,
)
from repro.problems.bounded_buffer import (
    AutoBoundedBuffer,
    BoundedBufferProblem,
    ExplicitBoundedBuffer,
)
from repro.problems.dining_philosophers import (
    AutoDiningTable,
    DiningPhilosophersProblem,
    ExplicitDiningTable,
)
from repro.problems.h2o import AutoWaterFactory, ExplicitWaterFactory, H2OProblem
from repro.problems.parameterized_bounded_buffer import (
    AutoParameterizedBoundedBuffer,
    ExplicitParameterizedBoundedBuffer,
    ParameterizedBoundedBufferProblem,
)
from repro.problems.readers_writers import (
    AutoReadersWriters,
    ExplicitReadersWriters,
    ReadersWritersProblem,
)
from repro.problems.round_robin import (
    AutoRoundRobin,
    ExplicitRoundRobin,
    RoundRobinProblem,
)
from repro.problems.sleeping_barber import (
    AutoBarberShop,
    ExplicitBarberShop,
    SleepingBarberProblem,
)

__all__ = [
    "AUTOMATIC_MECHANISMS",
    "EXPLICIT_MECHANISM",
    "MECHANISMS",
    "Oracle",
    "PROBLEMS",
    "Problem",
    "WorkloadSpec",
    "all_mechanisms",
    "available_problems",
    "describe_problem",
    "get_problem",
    "register_problem",
    "unregister_problem",
    # monitors
    "AutoBoundedBuffer",
    "ExplicitBoundedBuffer",
    "AutoParameterizedBoundedBuffer",
    "ExplicitParameterizedBoundedBuffer",
    "AutoBarberShop",
    "ExplicitBarberShop",
    "AutoWaterFactory",
    "ExplicitWaterFactory",
    "AutoRoundRobin",
    "ExplicitRoundRobin",
    "AutoReadersWriters",
    "ExplicitReadersWriters",
    "AutoDiningTable",
    "ExplicitDiningTable",
    # problem specs
    "BoundedBufferProblem",
    "ParameterizedBoundedBufferProblem",
    "SleepingBarberProblem",
    "H2OProblem",
    "RoundRobinProblem",
    "ReadersWritersProblem",
    "DiningPhilosophersProblem",
]

# Register the paper's seven problems, in the paper's presentation order
# (the built-in declarative scenarios register lazily — see
# repro.problems.registry — so the two layers stay import-cycle free).
for _problem in (
    BoundedBufferProblem(),
    SleepingBarberProblem(),
    H2OProblem(),
    RoundRobinProblem(),
    ReadersWritersProblem(),
    DiningPhilosophersProblem(),
    ParameterizedBoundedBufferProblem(),
):
    register_problem(_problem)
del _problem
