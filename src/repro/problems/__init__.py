"""The seven conditional-synchronization problems evaluated in the paper.

Every problem is implemented twice: once in the ``waituntil`` style (which
runs under the ``baseline``, ``autosynch_t`` and ``autosynch`` signalling
mechanisms) and once with hand-written explicit signalling.  The
:data:`PROBLEMS` registry maps problem names to :class:`Problem` objects the
experiment harness can drive generically.
"""

from typing import Dict

from repro.problems.base import (
    AUTOMATIC_MECHANISMS,
    EXPLICIT_MECHANISM,
    MECHANISMS,
    Oracle,
    Problem,
    WorkloadSpec,
    all_mechanisms,
)
from repro.problems.bounded_buffer import (
    AutoBoundedBuffer,
    BoundedBufferProblem,
    ExplicitBoundedBuffer,
)
from repro.problems.dining_philosophers import (
    AutoDiningTable,
    DiningPhilosophersProblem,
    ExplicitDiningTable,
)
from repro.problems.h2o import AutoWaterFactory, ExplicitWaterFactory, H2OProblem
from repro.problems.parameterized_bounded_buffer import (
    AutoParameterizedBoundedBuffer,
    ExplicitParameterizedBoundedBuffer,
    ParameterizedBoundedBufferProblem,
)
from repro.problems.readers_writers import (
    AutoReadersWriters,
    ExplicitReadersWriters,
    ReadersWritersProblem,
)
from repro.problems.round_robin import (
    AutoRoundRobin,
    ExplicitRoundRobin,
    RoundRobinProblem,
)
from repro.problems.sleeping_barber import (
    AutoBarberShop,
    ExplicitBarberShop,
    SleepingBarberProblem,
)

__all__ = [
    "AUTOMATIC_MECHANISMS",
    "EXPLICIT_MECHANISM",
    "MECHANISMS",
    "Oracle",
    "PROBLEMS",
    "Problem",
    "WorkloadSpec",
    "all_mechanisms",
    "get_problem",
    # monitors
    "AutoBoundedBuffer",
    "ExplicitBoundedBuffer",
    "AutoParameterizedBoundedBuffer",
    "ExplicitParameterizedBoundedBuffer",
    "AutoBarberShop",
    "ExplicitBarberShop",
    "AutoWaterFactory",
    "ExplicitWaterFactory",
    "AutoRoundRobin",
    "ExplicitRoundRobin",
    "AutoReadersWriters",
    "ExplicitReadersWriters",
    "AutoDiningTable",
    "ExplicitDiningTable",
    # problem specs
    "BoundedBufferProblem",
    "ParameterizedBoundedBufferProblem",
    "SleepingBarberProblem",
    "H2OProblem",
    "RoundRobinProblem",
    "ReadersWritersProblem",
    "DiningPhilosophersProblem",
]

#: Registry of all problems, keyed by name, in the paper's presentation order.
PROBLEMS: Dict[str, Problem] = {
    problem.name: problem
    for problem in (
        BoundedBufferProblem(),
        SleepingBarberProblem(),
        H2OProblem(),
        RoundRobinProblem(),
        ReadersWritersProblem(),
        DiningPhilosophersProblem(),
        ParameterizedBoundedBufferProblem(),
    )
}


def get_problem(name: str) -> Problem:
    """Look up a problem by name, with a helpful error message."""
    try:
        return PROBLEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; available problems: {sorted(PROBLEMS)}"
        ) from None
