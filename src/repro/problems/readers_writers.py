"""The readers/writers problem with ticket ordering (§6.3.2, Fig. 12).

Following the paper (which follows Buhr & Harji), arrival order is preserved
with a ticket: every reader or writer draws a ticket on arrival and waits for
its turn.  Consecutive readers may hold the resource concurrently; a writer
needs exclusive access.  The ``waituntil`` predicates are complex equivalence
predicates (``serving == my_ticket`` plus extra conjuncts), so AutoSynch can
locate the next admissible thread with a hash lookup while the explicit
version keeps a per-ticket condition variable — the "complicated code" the
paper mentions programmers must write to avoid ``signalAll``.

``threads`` in :meth:`ReadersWritersProblem.build` is the number of writers;
the number of readers defaults to five times as many, matching the 2/10 ...
64/320 x-axis of Fig. 12.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = ["AutoReadersWriters", "ExplicitReadersWriters", "ReadersWritersProblem"]

DEFAULT_READERS_PER_WRITER = 5


class AutoReadersWriters(AutoSynchMonitor):
    """Automatic-signal fair readers/writers lock."""

    def __init__(self, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        self.next_ticket = 0
        self.serving = 0
        self.active_readers = 0
        self.active_writers = 0
        self.reads_done = 0
        self.writes_done = 0
        self.max_concurrent_readers = 0
        self.violations = 0

    def start_read(self) -> int:
        ticket = self.next_ticket
        self.next_ticket += 1
        self.wait_until("serving == t and active_writers == 0", t=ticket)
        if self.active_writers != 0:
            self.violations += 1
        self.active_readers += 1
        self.max_concurrent_readers = max(self.max_concurrent_readers, self.active_readers)
        # Admit the next arrival immediately: further readers may read
        # concurrently, a writer will additionally wait for readers to drain.
        self.serving += 1
        return ticket

    def end_read(self) -> None:
        self.active_readers -= 1
        self.reads_done += 1

    def start_write(self) -> int:
        ticket = self.next_ticket
        self.next_ticket += 1
        self.wait_until(
            "serving == t and active_readers == 0 and active_writers == 0", t=ticket
        )
        if self.active_readers != 0 or self.active_writers != 0:
            self.violations += 1
        self.active_writers += 1
        return ticket

    def end_write(self) -> None:
        self.active_writers -= 1
        self.writes_done += 1
        # Only now may the next arrival be admitted.
        self.serving += 1


class ExplicitReadersWriters(ExplicitMonitor):
    """Explicit-signal fair readers/writers lock with per-ticket conditions."""

    def __init__(self, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        self.next_ticket = 0
        self.serving = 0
        self.active_readers = 0
        self.active_writers = 0
        self.reads_done = 0
        self.writes_done = 0
        self.max_concurrent_readers = 0
        self.violations = 0
        self._turn_conditions: Dict[int, object] = {}

    def _condition_for(self, ticket: int):
        condition = self._turn_conditions.get(ticket)
        if condition is None:
            condition = self.new_condition(f"ticket-{ticket}")
            self._turn_conditions[ticket] = condition
        return condition

    def _wake_ticket(self, ticket: int) -> None:
        condition = self._turn_conditions.get(ticket)
        if condition is not None:
            self.signal(condition)

    def start_read(self) -> int:
        ticket = self.next_ticket
        self.next_ticket += 1
        while not (self.serving == ticket and self.active_writers == 0):
            self.wait_on(self._condition_for(ticket))
        self._turn_conditions.pop(ticket, None)
        if self.active_writers != 0:
            self.violations += 1
        self.active_readers += 1
        self.max_concurrent_readers = max(self.max_concurrent_readers, self.active_readers)
        self.serving += 1
        self._wake_ticket(self.serving)
        return ticket

    def end_read(self) -> None:
        self.active_readers -= 1
        self.reads_done += 1
        if self.active_readers == 0:
            # A writer at the head of the queue may have been admitted by
            # ticket order but still waits for readers to drain.
            self._wake_ticket(self.serving)

    def start_write(self) -> int:
        ticket = self.next_ticket
        self.next_ticket += 1
        while not (
            self.serving == ticket and self.active_readers == 0 and self.active_writers == 0
        ):
            self.wait_on(self._condition_for(ticket))
        self._turn_conditions.pop(ticket, None)
        if self.active_readers != 0 or self.active_writers != 0:
            self.violations += 1
        self.active_writers += 1
        return ticket

    def end_write(self) -> None:
        self.active_writers -= 1
        self.writes_done += 1
        self.serving += 1
        self._wake_ticket(self.serving)


class ReadersWritersProblem(Problem):
    """Saturation workload: ``threads`` writers and ``ratio`` times as many readers."""

    name = "readers_writers"
    description = "fair readers/writers with ticket-ordered admission"
    uses_complex_predicates = True

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        def exclusion() -> Optional[str]:
            if monitor.active_writers not in (0, 1):
                return f"{monitor.active_writers} writers active at once"
            if monitor.active_writers and monitor.active_readers:
                return (
                    f"writer active alongside {monitor.active_readers} reader(s)"
                )
            if monitor.active_readers < 0:
                return f"negative reader count {monitor.active_readers}"
            return None

        def ticket_order() -> Optional[str]:
            if not 0 <= monitor.serving <= monitor.next_ticket:
                return (
                    f"serving={monitor.serving} outside "
                    f"[0, next_ticket={monitor.next_ticket}]"
                )
            return None

        return (
            Oracle("reader_writer_exclusion", exclusion),
            Oracle("ticket_order", ticket_order),
        )

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        readers_per_writer: int = DEFAULT_READERS_PER_WRITER,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 1:
            raise ValueError("need at least one writer")
        writers = threads
        readers = max(1, readers_per_writer * writers)

        if mechanism == "explicit":
            monitor = ExplicitReadersWriters(backend=backend, profile=profile)
        else:
            monitor = AutoReadersWriters(
                **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        workers = writers + readers
        per_worker = max(1, total_ops // workers)

        def make_reader():
            def reader() -> None:
                for _ in range(per_worker):
                    monitor.start_read()
                    monitor.end_read()

            return reader

        def make_writer():
            def writer() -> None:
                for _ in range(per_worker):
                    monitor.start_write()
                    monitor.end_write()

            return writer

        targets: List = []
        names: List[str] = []
        for index in range(writers):
            targets.append(make_writer())
            names.append(f"writer-{index}")
        for index in range(readers):
            targets.append(make_reader())
            names.append(f"reader-{index}")

        def verify() -> None:
            assert monitor.violations == 0
            assert monitor.reads_done == readers * per_worker
            assert monitor.writes_done == writers * per_worker
            assert monitor.active_readers == 0
            assert monitor.active_writers == 0
            assert monitor.serving == monitor.next_ticket

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=2 * per_worker * workers,
        )
