"""The H2O (water-building) problem (§6.3.1, Fig. 9).

Hydrogen threads and one oxygen thread cooperate to form water molecules:
the oxygen thread may only proceed when two unmatched hydrogen atoms are
available, and each hydrogen atom waits until it has been consumed into a
molecule.  All predicates are shared predicates over two counters.

Like the paper's saturation tests, hydrogen threads run until the experiment
is over rather than for a fixed per-thread quota: a fixed quota would allow a
single laggard hydrogen thread to end up needing to supply *both* atoms of
the final molecule, which no formulation of the problem can satisfy.  The
oxygen thread therefore forms a fixed number of molecules and then shuts the
factory down; hydrogen threads keep bonding until they observe the shutdown.

``threads`` in :meth:`H2OProblem.build` is the number of hydrogen threads
(the paper's x-axis); a single oxygen thread is always created, as in the
paper's experiment.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.monitor import AutoSynchMonitor, ExplicitMonitor
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Oracle, Problem, WorkloadSpec
from repro.runtime.api import Backend

__all__ = ["AutoWaterFactory", "ExplicitWaterFactory", "H2OProblem"]


class AutoWaterFactory(AutoSynchMonitor):
    """Automatic-signal water factory.

    Invariant: ``hydrogen_waiting >= bond_tickets`` — a bond ticket is only
    published for a hydrogen atom that is already waiting, so every published
    ticket is eventually consumed and the factory drains cleanly at shutdown.
    """

    def __init__(self, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        self.hydrogen_waiting = 0
        self.bond_tickets = 0
        self.molecules = 0
        self.hydrogen_bonded = 0
        self.shutting_down = False

    def hydrogen_ready(self) -> bool:
        """One hydrogen atom arrives; returns False once the factory is closed."""
        if self.shutting_down:
            return False
        self.hydrogen_waiting += 1
        self.wait_until("bond_tickets > 0 or shutting_down")
        self.hydrogen_waiting -= 1
        if self.bond_tickets > 0:
            self.bond_tickets -= 1
            self.hydrogen_bonded += 1
            return True
        return False

    def oxygen_ready(self) -> None:
        """The oxygen thread bonds two waiting hydrogen atoms into a molecule."""
        self.wait_until("hydrogen_waiting - bond_tickets >= 2")
        self.bond_tickets += 2
        self.molecules += 1

    def shutdown(self) -> None:
        """Close the factory; waiting hydrogen atoms withdraw."""
        self.shutting_down = True


class ExplicitWaterFactory(ExplicitMonitor):
    """Explicit-signal water factory with two condition variables."""

    def __init__(self, **monitor_kwargs: object) -> None:
        super().__init__(**monitor_kwargs)
        self.hydrogen_waiting = 0
        self.bond_tickets = 0
        self.molecules = 0
        self.hydrogen_bonded = 0
        self.shutting_down = False
        self.enough_hydrogen = self.new_condition("enough_hydrogen")
        self.ticket_available = self.new_condition("ticket_available")

    def hydrogen_ready(self) -> bool:
        if self.shutting_down:
            return False
        self.hydrogen_waiting += 1
        if self.hydrogen_waiting - self.bond_tickets >= 2:
            self.signal(self.enough_hydrogen)
        while self.bond_tickets == 0 and not self.shutting_down:
            self.wait_on(self.ticket_available)
        self.hydrogen_waiting -= 1
        if self.bond_tickets > 0:
            self.bond_tickets -= 1
            self.hydrogen_bonded += 1
            return True
        return False

    def oxygen_ready(self) -> None:
        while self.hydrogen_waiting - self.bond_tickets < 2:
            self.wait_on(self.enough_hydrogen)
        self.bond_tickets += 2
        self.molecules += 1
        # Two tickets were just published: wake two hydrogen atoms.
        self.signal(self.ticket_available)
        self.signal(self.ticket_available)

    def shutdown(self) -> None:
        self.shutting_down = True
        self.signal_all(self.ticket_available)


class H2OProblem(Problem):
    """Saturation workload: ``threads`` hydrogen threads, one oxygen thread."""

    name = "h2o"
    description = "water building: one oxygen thread bonds pairs of hydrogen atoms"
    uses_complex_predicates = False

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        def stoichiometry() -> Optional[str]:
            # Every molecule publishes exactly two bond tickets, each
            # consumed by exactly one hydrogen atom, so at every quiescent
            # point: outstanding tickets == 2 * molecules - bonded atoms.
            outstanding = 2 * monitor.molecules - monitor.hydrogen_bonded
            if monitor.bond_tickets != outstanding:
                return (
                    f"{monitor.molecules} molecules and "
                    f"{monitor.hydrogen_bonded} bonded atoms imply "
                    f"{outstanding} outstanding tickets, found "
                    f"{monitor.bond_tickets}"
                )
            if monitor.bond_tickets < 0:
                return f"negative bond tickets {monitor.bond_tickets}"
            return None

        def ticket_cover() -> Optional[str]:
            # A ticket is only published for an already-waiting atom, so
            # published-but-unconsumed tickets never outnumber waiting atoms.
            if monitor.bond_tickets > monitor.hydrogen_waiting:
                return (
                    f"{monitor.bond_tickets} tickets outstanding but only "
                    f"{monitor.hydrogen_waiting} hydrogen atoms waiting"
                )
            if monitor.hydrogen_waiting < 0:
                return f"negative hydrogen_waiting {monitor.hydrogen_waiting}"
            return None

        return (
            Oracle("h2o_stoichiometry", stoichiometry),
            Oracle("h2o_ticket_cover", ticket_cover),
        )

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        if threads < 2:
            raise ValueError("the H2O problem needs at least two hydrogen threads")

        if mechanism == "explicit":
            monitor = ExplicitWaterFactory(backend=backend, profile=profile)
        else:
            monitor = AutoWaterFactory(
                **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine)
            )

        # Each molecule is one oxygen_ready() call plus two hydrogen_ready()
        # calls, so the operation budget buys total_ops // 3 molecules.
        molecules = max(threads, total_ops // 3)

        def hydrogen() -> None:
            while monitor.hydrogen_ready():
                pass

        def oxygen() -> None:
            for _ in range(molecules):
                monitor.oxygen_ready()
            monitor.shutdown()

        targets = [oxygen] + [hydrogen for _ in range(threads)]
        names = ["oxygen-0"] + [f"hydrogen-{index}" for index in range(threads)]

        def verify() -> None:
            assert monitor.molecules == molecules
            assert monitor.hydrogen_bonded == 2 * molecules
            assert monitor.bond_tickets == 0
            assert monitor.hydrogen_waiting == 0

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=3 * molecules,
        )
