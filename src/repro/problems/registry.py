"""First-class, name-based registry of synchronization problems.

The problem catalogue used to be a hard-coded ``PROBLEMS`` dict frozen at
the paper's seven benchmarks.  It is now the fourth instantiation of the
shared :class:`~repro.core.plugin_registry.PluginRegistry` idiom (after
signalling policies, executors and schedulers): problems are registered by
name, :func:`get_problem` lists what *is* registered on an unknown name,
and :func:`register_problem` is the hook that lets declarative scenario
specs (:mod:`repro.scenarios`) self-register as runnable problems without
touching this package.

Unlike the other registries this one stores ready :class:`Problem`
*instances* (a problem is stateless configuration, not a per-run object).

The standard catalogue — the paper's seven problems plus the built-in
declarative scenarios — is populated lazily on first query, because the
scenario layer imports the problem layer (a direct import here would be a
cycle).  :data:`PROBLEMS` is a live dict-like view of the registry, kept
for the many call sites (and the odd test) that used the original dict.
"""

from __future__ import annotations

from typing import Tuple, Type, Union

from repro.core.plugin_registry import PluginRegistry
from repro.problems.base import Problem

__all__ = [
    "PROBLEMS",
    "register_problem",
    "unregister_problem",
    "get_problem",
    "available_problems",
    "describe_problem",
]

_REGISTRY = PluginRegistry(kind="problem", base=Problem, stores_instances=True)


def _populate() -> None:
    """Register the standard catalogue (deferred to break import cycles)."""
    import repro.problems  # noqa: F401  (registers the paper's seven)
    import repro.scenarios.builtin  # noqa: F401  (registers built-in scenarios)


_REGISTRY.set_populate(_populate)

#: Live name -> :class:`Problem` view of the registry, in registration
#: order (the paper's seven first, then the built-in scenarios).
PROBLEMS = _REGISTRY.view()

ProblemSpec = Union[Problem, Type[Problem]]


def register_problem(problem: ProblemSpec, replace: bool = False) -> Problem:
    """Register *problem* under its ``name`` attribute and return it.

    Accepts a ready :class:`Problem` instance or a ``Problem`` subclass
    (instantiated with no arguments).  Usable as a class decorator.
    Re-registering an existing name raises unless ``replace=True``.
    """
    if isinstance(problem, type) and issubclass(problem, Problem):
        problem = problem()
    return _REGISTRY.register(problem, replace=replace)


def unregister_problem(name: str) -> None:
    """Remove a registered problem by name (for tests and throwaway
    scenario registrations); unknown names raise the same error as
    :func:`get_problem`."""
    _REGISTRY.unregister(name)


def get_problem(name: str) -> Problem:
    """Look up a problem by name.

    Unknown names raise a ``ValueError`` that lists every registered
    problem — the same UX as the signalling-policy, executor and scheduler
    registries.
    """
    return _REGISTRY.get(name)


def available_problems() -> Tuple[str, ...]:
    """Names of every registered problem, in registration order."""
    return _REGISTRY.names()


def describe_problem(name: str) -> str:
    """The one-line human-readable description of a registered problem."""
    return _REGISTRY.describe(name)
