"""Built-in declarative scenarios, registered alongside the paper's seven.

Each of these is a classic conditional-synchronization workload the paper's
benchmark set does not cover, expressed purely as a :class:`ScenarioSpec` —
no per-problem monitor classes, no explicit-signal twin:

* ``barrier`` — a cyclic barrier / N-way rendezvous with a generation
  counter (the last arriver advances the generation; everyone else waits on
  the *complex* predicate ``generation > g``).
* ``fifo_semaphore`` — a counting semaphore that grants permits in strict
  ticket (FIFO) order; the guard ``serving == t and permits > 0`` is an
  equivalence predicate, exactly the shape AutoSynch's tag hash indexes.
* ``resource_pool`` — a pool with two priority classes: high-priority
  acquirers may take any free resource, low-priority ones must leave
  ``reserve`` resources free.
* ``traffic_intersection`` — the intersection controller promoted from
  ``examples/traffic_intersection.py``: cars enter on ``green == d and
  inside < capacity``, a controller rotates the light, and a supervisor
  closes the intersection once every crossing is done.

All four are registered on first use of the problem registry (see
:mod:`repro.problems.registry`), so they show up in ``PROBLEMS``, run under
every signalling policy via ``run_workload`` and the experiments CLI, and
are explorable (with their invariants enforced as oracles) through
``python -m repro.explore``.
"""

from __future__ import annotations

from typing import Tuple

from repro.scenarios.compile import register_scenario
from repro.scenarios.spec import ActionSpec, InvariantSpec, RoleSpec, ScenarioSpec

__all__ = ["BUILTIN_SCENARIOS", "register_builtin_scenarios"]


BARRIER = ScenarioSpec(
    name="barrier",
    description="cyclic barrier / N-way rendezvous with a generation counter",
    shared={"arrived": 0, "generation": 0, "parties": "worker_count"},
    actions=(
        ActionSpec(
            name="arrive",
            # Read my generation, then count myself in; the last arriver
            # advances the generation (arrived == parties evaluates to 0/1)
            # and resets the arrival count, so its own guard is immediately
            # true while everyone else waits for the next generation.
            binds=(("g", "generation"),),
            pre=(
                ("arrived", "arrived + 1"),
                ("generation", "generation + (arrived == parties)"),
                ("arrived", "arrived % parties"),
            ),
            guard="generation > g",
        ),
    ),
    roles=(
        RoleSpec(
            name="worker",
            count="max(2, threads)",
            ops="max(1, total_ops // max(2, threads))",
            actions=("arrive",),
        ),
    ),
    invariants=(
        InvariantSpec("arrival_bounds", "0 <= arrived and arrived < parties"),
        InvariantSpec("generation_monotone", "generation >= 0"),
    ),
    post=(
        "arrived == 0",
        "generation == worker_ops",
    ),
)


FIFO_SEMAPHORE = ScenarioSpec(
    name="fifo_semaphore",
    description="counting semaphore granting permits in strict ticket (FIFO) order",
    params={"permits": 2},
    shared={
        "available": "permits",
        "next_ticket": 0,
        "serving": 0,
        "acquired": 0,
        "released": 0,
    },
    actions=(
        ActionSpec(
            name="acquire",
            # Take a ticket, then wait until it is being served *and* a
            # permit is free — a blocked head-of-line ticket blocks everyone
            # behind it, which is exactly the FIFO guarantee.
            binds=(("t", "next_ticket"),),
            pre=(("next_ticket", "next_ticket + 1"),),
            guard="serving == t and available > 0",
            effect=(
                ("available", "available - 1"),
                ("serving", "serving + 1"),
                ("acquired", "acquired + 1"),
            ),
        ),
        ActionSpec(
            name="release",
            effect=(
                ("available", "available + 1"),
                ("released", "released + 1"),
            ),
        ),
    ),
    roles=(
        RoleSpec(
            name="worker",
            count="max(2, threads)",
            ops="max(1, total_ops // (2 * max(2, threads)))",
            actions=("acquire", "release"),
        ),
    ),
    invariants=(
        InvariantSpec("permit_bounds", "0 <= available and available <= permits"),
        InvariantSpec(
            "permit_conservation", "acquired - released == permits - available"
        ),
        InvariantSpec("ticket_order", "serving <= next_ticket"),
    ),
    post=(
        "available == permits",
        "acquired == worker_count * worker_ops",
        "released == acquired",
    ),
)


RESOURCE_POOL = ScenarioSpec(
    name="resource_pool",
    description="resource pool with reserved headroom for a high-priority class",
    params={"size": 3, "reserve": 1},
    shared={
        "free": "size",
        "high_held": 0,
        "low_held": 0,
        "high_served": 0,
        "low_served": 0,
    },
    actions=(
        ActionSpec(
            name="acquire_high",
            guard="free > 0",
            effect=(("free", "free - 1"), ("high_held", "high_held + 1")),
        ),
        ActionSpec(
            name="release_high",
            effect=(
                ("free", "free + 1"),
                ("high_held", "high_held - 1"),
                ("high_served", "high_served + 1"),
            ),
        ),
        ActionSpec(
            name="acquire_low",
            # Low-priority acquirers must leave `reserve` resources free for
            # the high-priority class.
            guard="free > reserve",
            effect=(("free", "free - 1"), ("low_held", "low_held + 1")),
        ),
        ActionSpec(
            name="release_low",
            effect=(
                ("free", "free + 1"),
                ("low_held", "low_held - 1"),
                ("low_served", "low_served + 1"),
            ),
        ),
    ),
    roles=(
        RoleSpec(
            name="vip",
            count="max(1, threads // 2)",
            ops="max(1, total_ops // (4 * max(1, threads // 2)))",
            actions=("acquire_high", "release_high"),
        ),
        RoleSpec(
            name="guest",
            count="max(1, threads - threads // 2)",
            ops="max(1, total_ops // (4 * max(1, threads - threads // 2)))",
            actions=("acquire_low", "release_low"),
        ),
    ),
    invariants=(
        InvariantSpec("pool_bounds", "0 <= free and free <= size"),
        InvariantSpec(
            "resource_conservation", "free + high_held + low_held == size"
        ),
        InvariantSpec("reserve_respected", "low_held <= size - reserve"),
    ),
    post=(
        "free == size",
        "high_served == vip_count * vip_ops",
        "low_served == guest_count * guest_ops",
    ),
)


TRAFFIC_INTERSECTION = ScenarioSpec(
    name="traffic_intersection",
    description=(
        "traffic-intersection controller (promoted from "
        "examples/traffic_intersection.py): cars cross on a green light, a "
        "controller rotates the light, a supervisor closes the shift"
    ),
    params={"capacity": 2, "phase_quota": 3},
    shared={
        "green": 0,
        "inside": 0,
        "pending": [0, 0, 0, 0],
        "total_pending": 0,
        "crossed_this_phase": 0,
        "crossings": [0, 0, 0, 0],
        "total_crossed": 0,
        "phases": 0,
        "closing": 0,
        "goal": "car_count * car_ops",
    },
    actions=(
        ActionSpec(
            name="arrive",
            effect=(
                ("pending[d]", "pending[d] + 1"),
                ("total_pending", "total_pending + 1"),
            ),
        ),
        ActionSpec(
            name="enter",
            # The equivalence predicate (green == d) is the pattern
            # AutoSynch's tag hash indexes.
            guard="green == d and inside < capacity",
            effect=(
                ("pending[d]", "pending[d] - 1"),
                ("total_pending", "total_pending - 1"),
                ("inside", "inside + 1"),
            ),
        ),
        ActionSpec(
            name="leave",
            effect=(
                ("inside", "inside - 1"),
                ("crossings[d]", "crossings[d] + 1"),
                ("total_crossed", "total_crossed + 1"),
                ("crossed_this_phase", "crossed_this_phase + 1"),
            ),
        ),
        ActionSpec(
            name="rotate",
            # Rotate once the phase is exhausted (quota crossed, or nobody
            # pending on green while somebody waits elsewhere).  After the
            # supervisor sets `closing`, remaining rotate calls fall through
            # with no effect (closing is 0/1, so `1 - closing` masks the
            # updates), letting the controller drain its budget.
            guard=(
                "((crossed_this_phase >= phase_quota or pending[green] == 0)"
                " and total_pending > 0) or closing > 0"
            ),
            effect=(
                ("green", "(green + (1 - closing)) % 4"),
                ("crossed_this_phase", "crossed_this_phase * closing"),
                ("phases", "phases + (1 - closing)"),
            ),
        ),
        ActionSpec(
            name="close_when_done",
            guard="total_crossed >= goal",
            effect=(("closing", "1"),),
        ),
    ),
    roles=(
        RoleSpec(
            name="car",
            count="max(2, threads)",
            ops="max(1, total_ops // (3 * max(2, threads)))",
            actions=("arrive", "enter", "leave"),
            locals=(("d", "i % 4"),),
        ),
        # Between two consecutive crossings the controller rotates at most 4
        # times (empty directions are skipped until a pending one holds the
        # green), so this budget can never stall the cars; post-closing
        # iterations complete immediately via the `closing` disjunct.
        RoleSpec(
            name="controller",
            count=1,
            ops="4 * car_count * car_ops + 8",
            actions=("rotate",),
        ),
        RoleSpec(
            name="supervisor",
            count=1,
            ops=1,
            actions=("close_when_done",),
        ),
    ),
    invariants=(
        InvariantSpec("intersection_capacity", "0 <= inside and inside <= capacity"),
        InvariantSpec("green_in_range", "0 <= green and green < 4"),
        InvariantSpec(
            "pending_conservation",
            "total_pending == pending[0] + pending[1] + pending[2] + pending[3]",
        ),
        InvariantSpec("no_negative_queues", "total_pending >= 0"),
    ),
    post=(
        "total_crossed == goal",
        "inside == 0",
        "total_pending == 0",
        "closing == 1",
    ),
)


#: The built-in scenario specs, in registration order.
BUILTIN_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    BARRIER,
    FIFO_SEMAPHORE,
    RESOURCE_POOL,
    TRAFFIC_INTERSECTION,
)


def register_builtin_scenarios() -> None:
    """Register every built-in scenario (idempotent, never clobbering).

    This runs from the problem registry's deferred populate hook, which may
    fire *after* a user has registered their own scenario under one of
    these names; the user's registration wins, so a name conflict here is
    skipped rather than replaced or raised.
    """
    for spec in BUILTIN_SCENARIOS:
        try:
            register_scenario(spec)
        except ValueError:
            pass  # the name was claimed first (by a user, or a re-import)


register_builtin_scenarios()
