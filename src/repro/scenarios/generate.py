"""Seeded random generation of valid-by-construction scenario specs.

``python -m repro.explore --mode fuzz`` sweeps signalling policy ×
scheduler × *generated scenario* instead of only the paper's seven
problems.  For that to find real bugs (in the signalling machinery, the
predicate pipeline, the schedulers) rather than bugs in the generated
workloads, every generated spec must be correct by construction:

* **terminating under every schedule** — operation quotas between roles are
  matched (every produced token is consumed, every barrier party arrives
  the same number of times, every acquire has its release), and guards can
  always eventually be satisfied by some runnable thread;
* **oracle-equipped** — each family declares conservation/bounds
  invariants and post-conditions, so a lost signal, a premature wake-up or
  a corrupted relay shows up as a classified failure, not a silent pass.

Three families cover the predicate shapes the paper cares about:

* ``pipeline`` — tokens flow through 1–3 bounded stages (shared threshold
  predicates, the bounded-buffer shape);
* ``barrier`` — a cyclic barrier with a generation counter (complex
  predicates: each waiter's guard mentions its own captured generation);
* ``pool`` — a semaphore-style resource pool, optionally with a reserved
  high-priority class (mixed threshold guards over two counters).

The same ``seed`` always yields the same spec (the generator derives
everything from one ``random.Random(seed)``), so fuzz findings are
reproducible from the seed alone — and the spec itself is embedded in the
failure's repro file anyway.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.scenarios.spec import ActionSpec, InvariantSpec, RoleSpec, ScenarioSpec

__all__ = ["FAMILIES", "generate_scenario", "generate_scenarios"]

#: The generator families, in the order ``seed % len(FAMILIES)`` picks them.
FAMILIES: Tuple[str, ...] = ("pipeline", "barrier", "pool")


def _pipeline(name: str, rng: random.Random) -> ScenarioSpec:
    stages = rng.randint(1, 3)
    capacities = [rng.randint(1, 4) for _ in range(stages)]
    producers = rng.randint(1, 3)
    per_producer = rng.randint(2, 4)
    tokens = producers * per_producer

    shared = {f"stage{i}": 0 for i in range(stages)}
    shared["produced"] = 0
    shared["consumed"] = 0

    actions: List[ActionSpec] = [
        ActionSpec(
            name="produce",
            guard=f"stage0 < {capacities[0]}",
            effect=(
                ("stage0", "stage0 + 1"),
                ("produced", "produced + 1"),
            ),
        )
    ]
    roles: List[RoleSpec] = [
        RoleSpec(name="producer", count=producers, ops=per_producer, actions=("produce",))
    ]
    for i in range(stages - 1):
        actions.append(
            ActionSpec(
                name=f"move{i}",
                guard=f"stage{i} > 0 and stage{i + 1} < {capacities[i + 1]}",
                effect=(
                    (f"stage{i}", f"stage{i} - 1"),
                    (f"stage{i + 1}", f"stage{i + 1} + 1"),
                ),
            )
        )
        roles.append(
            RoleSpec(name=f"mover{i}", count=1, ops=tokens, actions=(f"move{i}",))
        )
    last = stages - 1
    actions.append(
        ActionSpec(
            name="consume",
            guard=f"stage{last} > 0",
            effect=(
                (f"stage{last}", f"stage{last} - 1"),
                ("consumed", "consumed + 1"),
            ),
        )
    )
    roles.append(RoleSpec(name="consumer", count=1, ops=tokens, actions=("consume",)))

    in_flight = " + ".join(f"stage{i}" for i in range(stages))
    invariants = [
        InvariantSpec(
            f"stage{i}_bounds", f"0 <= stage{i} and stage{i} <= {capacities[i]}"
        )
        for i in range(stages)
    ]
    invariants.append(
        InvariantSpec("token_conservation", f"produced - consumed == {in_flight}")
    )
    invariants.append(InvariantSpec("no_overdraw", "consumed <= produced"))
    post = [f"produced == {tokens}", f"consumed == {tokens}"] + [
        f"stage{i} == 0" for i in range(stages)
    ]
    return ScenarioSpec(
        name=name,
        description=(
            f"generated pipeline: {producers} producers x {per_producer} tokens "
            f"through {stages} stage(s), capacities {capacities}"
        ),
        shared=shared,
        actions=tuple(actions),
        roles=tuple(roles),
        invariants=tuple(invariants),
        post=tuple(post),
    )


def _barrier(name: str, rng: random.Random) -> ScenarioSpec:
    parties = rng.randint(2, 4)
    rounds = rng.randint(1, 3)
    return ScenarioSpec(
        name=name,
        description=f"generated cyclic barrier: {parties} parties x {rounds} rounds",
        shared={"arrived": 0, "generation": 0},
        actions=(
            ActionSpec(
                name="arrive",
                binds=(("g", "generation"),),
                pre=(
                    ("arrived", "arrived + 1"),
                    ("generation", f"generation + (arrived == {parties})"),
                    ("arrived", f"arrived % {parties}"),
                ),
                guard="generation > g",
            ),
        ),
        roles=(
            RoleSpec(name="party", count=parties, ops=rounds, actions=("arrive",)),
        ),
        invariants=(
            InvariantSpec("arrival_bounds", f"0 <= arrived and arrived < {parties}"),
            InvariantSpec(
                "generation_bounds", f"0 <= generation and generation <= {rounds}"
            ),
        ),
        post=("arrived == 0", f"generation == {rounds}"),
    )


def _pool(name: str, rng: random.Random) -> ScenarioSpec:
    size = rng.randint(2, 4)
    workers = rng.randint(2, 4)
    rounds = rng.randint(2, 4)
    reserve = rng.randint(0, size - 1) if rng.random() < 0.5 else 0

    actions = [
        ActionSpec(
            name="acquire",
            guard=f"free > {reserve}" if reserve else "free > 0",
            effect=(("free", "free - 1"), ("held", "held + 1")),
        ),
        ActionSpec(
            name="release",
            effect=(
                ("free", "free + 1"),
                ("held", "held - 1"),
                ("served", "served + 1"),
            ),
        ),
    ]
    roles = [
        RoleSpec(
            name="worker", count=workers, ops=rounds, actions=("acquire", "release")
        )
    ]
    invariants = [
        InvariantSpec("pool_bounds", f"0 <= free and free <= {size}"),
        InvariantSpec("resource_conservation", f"free + held == {size}"),
    ]
    if reserve:
        invariants.append(
            InvariantSpec("reserve_respected", f"held <= {size - reserve}")
        )
    return ScenarioSpec(
        name=name,
        description=(
            f"generated resource pool: size {size}, {workers} workers x "
            f"{rounds} rounds, reserve {reserve}"
        ),
        shared={"free": size, "held": 0, "served": 0},
        actions=tuple(actions),
        roles=tuple(roles),
        invariants=tuple(invariants),
        post=(f"free == {size}", f"served == {workers * rounds}", "held == 0"),
    )


_BUILDERS = {"pipeline": _pipeline, "barrier": _barrier, "pool": _pool}


def generate_scenario(seed: int, family: Optional[str] = None) -> ScenarioSpec:
    """Generate one valid-by-construction scenario spec from *seed*.

    Without *family* the seed also picks the family, so a plain seed sweep
    covers all of them.  The returned spec is validated and its name
    (``fuzz_<family>_<seed>``) encodes its provenance.
    """
    if family is None:
        family = FAMILIES[seed % len(FAMILIES)]
    try:
        builder = _BUILDERS[family]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {family!r}; families: {FAMILIES}"
        ) from None
    rng = random.Random(seed)
    return builder(f"fuzz_{family}_{seed}", rng).validate()


def generate_scenarios(
    count: int, base_seed: int = 0, families: Optional[Sequence[str]] = None
) -> List[ScenarioSpec]:
    """Generate *count* specs with seeds ``base_seed .. base_seed+count-1``."""
    if count < 1:
        raise ValueError(f"scenario generation needs count >= 1, got {count}")
    pool = tuple(families) if families else None
    return [
        generate_scenario(
            base_seed + offset,
            family=None if pool is None else pool[(base_seed + offset) % len(pool)],
        )
        for offset in range(count)
    ]
