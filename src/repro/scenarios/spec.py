"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a conditional-synchronization benchmark as
*data*: shared variables with initial values, thread roles with counts and
operation budgets, guarded actions whose guards are ``waituntil`` predicate
strings, state-update effects, and oracle invariants.  The compiler in
:mod:`repro.scenarios.compile` turns a spec into a live
:class:`~repro.core.monitor.AutoSynchMonitor` subclass and a registered
:class:`~repro.problems.base.Problem`, so a new benchmark is ~30 lines of
data instead of a ~200-line hand-written dual implementation.

Every expression in a spec — guards, effects, invariants, post-conditions,
role counts and op budgets — uses the **same predicate expression language**
the monitors already speak (:mod:`repro.predicates`): Python expression
syntax over names, arithmetic, comparisons, boolean connectives, indexing
and the pure builtins ``len``/``abs``/``min``/``max``/``sum``/``all``/
``any``.  Guards run through the full parser → globalization → codegen
pipeline via ``wait_until``; effects and build-time sizes are parsed and
evaluated by the same front end, so there is no second DSL and no ``eval``.

Specs round-trip losslessly to JSON (:meth:`ScenarioSpec.to_json` /
:meth:`ScenarioSpec.from_json`), which is what the experiment CLI's
``--scenario file.json`` and ``python -m repro.explore --scenario`` load.

Expression environments
-----------------------
* **Guards** see the shared variables, the spec parameters, and the calling
  thread's locals (role locals plus the action's binds).
* **Effects** (``binds`` / ``pre`` / ``effect`` assignments) see the same
  names; assignment targets are shared variables, either plain
  (``"count"``) or indexed (``"pending[d]"``).
* **Build-time expressions** see the spec parameters, ``threads`` and
  ``total_ops`` (the harness's x-axis value and operation budget), plus the
  role sizes as they become available: every role's ``count`` is evaluated
  first (each may reference earlier roles' ``<role>_count``), then every
  ``ops`` (may reference all counts and earlier roles' ``<role>_ops``);
  string-valued shared initials and ``post`` conditions see them all.
* **Invariants** see only shared variables and parameters: they are
  evaluated on behalf of no thread, at scheduling decision points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.predicates.classify import free_names
from repro.predicates.errors import PredicateError
from repro.predicates.parser import parse_predicate

__all__ = [
    "SCENARIO_FORMAT",
    "ScenarioError",
    "ActionSpec",
    "RoleSpec",
    "InvariantSpec",
    "ScenarioSpec",
    "load_scenario_file",
]

#: Format marker written into (and required from) scenario JSON files.
SCENARIO_FORMAT = "autosynch-scenario/1"


class ScenarioError(ValueError):
    """A scenario specification is malformed or internally inconsistent."""


#: One state update: ``(target, expression)`` where *target* is a shared
#: variable name or ``"name[index_expr]"``.
Assignment = Tuple[str, str]

#: A size (role count / op budget): an int literal or a build-time expression.
SizeExpr = Union[int, str]


def _pairs(value: object, what: str) -> Tuple[Assignment, ...]:
    """Normalize a JSON-ish list of ``[target, expr]`` pairs."""
    result = []
    for item in value or ():
        pair = tuple(item)
        if len(pair) != 2 or not all(isinstance(part, str) for part in pair):
            raise ScenarioError(
                f"{what} entries must be [target, expression] string pairs; "
                f"got {item!r}"
            )
        result.append(pair)
    return tuple(result)


def _parse_or_fail(source: str, what: str) -> None:
    try:
        parse_predicate(source)
    except PredicateError as error:
        raise ScenarioError(f"{what}: {error}") from None


def _expr_names(source: str) -> frozenset:
    return frozenset(free_names(parse_predicate(source)))


@dataclass(frozen=True)
class ActionSpec:
    """One guarded monitor operation.

    Execution order inside the compiled entry method:

    1. ``binds`` — thread-local values computed on entry (reading shared
       state *before* this action mutates it; the ticket-grab idiom),
    2. ``pre`` — shared-state updates applied before the guard (a FIFO
       semaphore increments the ticket counter, then waits its turn),
    3. ``guard`` — the ``waituntil`` predicate, compiled through the full
       predicates pipeline; ``None`` means the action never blocks,
    4. ``effect`` — shared-state updates applied once the guard holds.
    """

    name: str
    guard: Optional[str] = None
    binds: Tuple[Assignment, ...] = ()
    pre: Tuple[Assignment, ...] = ()
    effect: Tuple[Assignment, ...] = ()

    def to_dict(self) -> dict:
        data: dict = {"name": self.name}
        if self.guard is not None:
            data["guard"] = self.guard
        if self.binds:
            data["binds"] = [list(pair) for pair in self.binds]
        if self.pre:
            data["pre"] = [list(pair) for pair in self.pre]
        if self.effect:
            data["effect"] = [list(pair) for pair in self.effect]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ActionSpec":
        return cls(
            name=str(data["name"]),
            guard=data.get("guard"),
            binds=_pairs(data.get("binds"), "binds"),
            pre=_pairs(data.get("pre"), "pre"),
            effect=_pairs(data.get("effect"), "effect"),
        )


@dataclass(frozen=True)
class RoleSpec:
    """A class of worker threads.

    Each of the role's ``count`` threads runs ``ops`` iterations, and each
    iteration performs the role's ``actions`` in order (one entry-method
    call per action).  ``locals`` binds per-thread constants usable in
    guards and effects; their expressions see the build-time environment
    plus ``i`` (the thread's index within the role) and ``n`` (the role's
    thread count).
    """

    name: str
    actions: Tuple[str, ...]
    count: SizeExpr = 1
    #: Iterations per thread.  ``None`` gives every thread an even share of
    #: the workload's ``total_ops`` budget (but most specs size roles
    #: explicitly so quotas between roles stay matched).
    ops: Optional[SizeExpr] = None
    locals: Tuple[Assignment, ...] = ()

    def to_dict(self) -> dict:
        data: dict = {"name": self.name, "actions": list(self.actions)}
        if self.count != 1:
            data["count"] = self.count
        if self.ops is not None:
            data["ops"] = self.ops
        if self.locals:
            data["locals"] = [list(pair) for pair in self.locals]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoleSpec":
        return cls(
            name=str(data["name"]),
            actions=tuple(str(name) for name in data["actions"]),
            count=data.get("count", 1),
            ops=data.get("ops"),
            locals=_pairs(data.get("locals"), "locals"),
        )


@dataclass(frozen=True)
class InvariantSpec:
    """A named oracle: a predicate that must hold at every quiescent point.

    Compiled into a :class:`~repro.problems.base.Oracle` the schedule
    explorer evaluates at every scheduling decision.  The predicate may
    reference shared variables and parameters only.
    """

    name: str
    predicate: str
    kind: str = "safety"

    def to_dict(self) -> dict:
        data = {"name": self.name, "predicate": self.predicate}
        if self.kind != "safety":
            data["kind"] = self.kind
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "InvariantSpec":
        return cls(
            name=str(data["name"]),
            predicate=str(data["predicate"]),
            kind=str(data.get("kind", "safety")),
        )


#: Monitor attribute names a scenario may not use for variables or actions.
_RESERVED_NAMES = frozenset(
    {
        "backend",
        "condition_manager",
        "eval_engine",
        "new_condition",
        "signal",
        "signal_all",
        "signalling",
        "signalling_policy",
        "stats",
        "tracer",
        "wait_on",
        "wait_until",
    }
)

#: Names injected into the build-time environment by the problem builder.
_BUILD_ENV_BASE = ("threads", "total_ops")


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario (see the module docstring)."""

    name: str
    description: str = ""
    #: Tunable parameters with defaults; overridable per run through the
    #: harness's ``problem_params`` / the CLI's ``--param``.  Exposed as
    #: read-only monitor fields, so guards and invariants can use them.
    params: Mapping[str, object] = field(default_factory=dict)
    #: Shared variables with initial values.  A string initial is a
    #: build-time expression; any other JSON value (int, bool, list) is the
    #: literal initial value, deep-copied per monitor instance.
    shared: Mapping[str, object] = field(default_factory=dict)
    actions: Tuple[ActionSpec, ...] = ()
    roles: Tuple[RoleSpec, ...] = ()
    invariants: Tuple[InvariantSpec, ...] = ()
    #: Predicates over shared state (plus the build-time environment)
    #: checked by the workload's post-run ``verify()``.
    post: Tuple[str, ...] = ()

    # -- structural validation -------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check internal consistency; raise :class:`ScenarioError` if broken.

        Catches what would otherwise surface as confusing runtime failures:
        unknown action references, guards over undeclared names, effects
        targeting non-shared variables, locals shadowing shared state, and
        reserved/colliding identifiers.
        """
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise ScenarioError(
                f"scenario name must be a non-empty [a-z0-9_] identifier, "
                f"got {self.name!r}"
            )
        self._validate_variables()
        actions = self._validate_actions()
        self._validate_roles(actions)
        self._validate_invariants()
        self._validate_post()
        return self

    def _validate_variables(self) -> None:
        shared = set(self.shared)
        params = set(self.params)
        overlap = shared & params
        if overlap:
            raise ScenarioError(
                f"names {sorted(overlap)} are declared both as shared "
                "variables and as parameters"
            )
        for name in shared | params:
            if not name.isidentifier() or name.startswith("_"):
                raise ScenarioError(
                    f"variable name {name!r} must be a public identifier"
                )
            if name in _RESERVED_NAMES or name in _BUILD_ENV_BASE:
                raise ScenarioError(
                    f"variable name {name!r} collides with a reserved monitor "
                    "or build-environment name"
                )
        for name, initial in self.shared.items():
            if isinstance(initial, str):
                _parse_or_fail(initial, f"initial value of shared variable {name!r}")
        if not self.shared:
            raise ScenarioError("a scenario needs at least one shared variable")

    def _validate_actions(self) -> Dict[str, ActionSpec]:
        state_names = set(self.shared) | set(self.params)
        actions: Dict[str, ActionSpec] = {}
        for action in self.actions:
            if action.name in actions:
                raise ScenarioError(f"duplicate action name {action.name!r}")
            if not action.name.isidentifier() or action.name.startswith("_"):
                raise ScenarioError(
                    f"action name {action.name!r} must be a public identifier"
                )
            if action.name in _RESERVED_NAMES or action.name in state_names:
                raise ScenarioError(
                    f"action name {action.name!r} collides with a reserved "
                    "monitor name or a scenario variable"
                )
            bind_names = set()
            for name, expr in action.binds:
                if not name.isidentifier() or name in state_names:
                    raise ScenarioError(
                        f"action {action.name!r}: bind target {name!r} must be "
                        "a fresh local identifier (not a shared variable or "
                        "parameter)"
                    )
                bind_names.add(name)
                _parse_or_fail(expr, f"action {action.name!r} bind {name!r}")
            for stage, assignments in (("pre", action.pre), ("effect", action.effect)):
                for target, expr in assignments:
                    self._validate_target(action.name, stage, target)
                    _parse_or_fail(
                        expr, f"action {action.name!r} {stage} of {target!r}"
                    )
            if action.guard is not None:
                _parse_or_fail(action.guard, f"action {action.name!r} guard")
            if action.guard is None and not (action.pre or action.effect or action.binds):
                raise ScenarioError(
                    f"action {action.name!r} has no guard and no effects"
                )
            actions[action.name] = action
        if not actions:
            raise ScenarioError("a scenario needs at least one action")
        return actions

    def _validate_target(self, action: str, stage: str, target: str) -> None:
        from repro.predicates.ast_nodes import Name, Subscript

        try:
            node = parse_predicate(target)
        except PredicateError as error:
            raise ScenarioError(
                f"action {action!r} {stage} target {target!r}: {error}"
            ) from None
        base = node.value if isinstance(node, Subscript) else node
        if not isinstance(base, Name):
            raise ScenarioError(
                f"action {action!r} {stage} target {target!r} must be a shared "
                "variable name, optionally indexed"
            )
        if base.ident in self.params:
            raise ScenarioError(
                f"action {action!r} {stage} may not assign parameter "
                f"{base.ident!r} (parameters are read-only)"
            )
        if base.ident not in self.shared:
            raise ScenarioError(
                f"action {action!r} {stage} targets {base.ident!r}, which is "
                f"not a declared shared variable (declared: {sorted(self.shared)})"
            )

    def _validate_roles(self, actions: Dict[str, ActionSpec]) -> None:
        state_names = set(self.shared) | set(self.params)
        seen = set()
        for role in self.roles:
            if role.name in seen:
                raise ScenarioError(f"duplicate role name {role.name!r}")
            seen.add(role.name)
            if not role.name.isidentifier():
                raise ScenarioError(f"role name {role.name!r} must be an identifier")
            if not role.actions:
                raise ScenarioError(f"role {role.name!r} performs no actions")
            for size, what in ((role.count, "count"), (role.ops, "ops")):
                if isinstance(size, str):
                    _parse_or_fail(size, f"role {role.name!r} {what}")
                elif size is not None and (not isinstance(size, int) or size < 0):
                    raise ScenarioError(
                        f"role {role.name!r} {what} must be a non-negative int "
                        f"or an expression, got {size!r}"
                    )
            local_names = set()
            for name, expr in role.locals:
                if not name.isidentifier() or name in state_names:
                    raise ScenarioError(
                        f"role {role.name!r}: local {name!r} must be a fresh "
                        "identifier (not a shared variable or parameter)"
                    )
                local_names.add(name)
                _parse_or_fail(expr, f"role {role.name!r} local {name!r}")
            for action_name in role.actions:
                action = actions.get(action_name)
                if action is None:
                    raise ScenarioError(
                        f"role {role.name!r} references unknown action "
                        f"{action_name!r} (declared: {sorted(actions)})"
                    )
                if action.guard is not None:
                    visible = (
                        state_names
                        | local_names
                        | {name for name, _ in action.binds}
                    )
                    unknown = _expr_names(action.guard) - visible
                    if unknown:
                        raise ScenarioError(
                            f"action {action.name!r} guard references "
                            f"{sorted(unknown)}, not visible to role "
                            f"{role.name!r} (shared/params/locals/binds only)"
                        )
        if not self.roles:
            raise ScenarioError("a scenario needs at least one role")

    def _validate_invariants(self) -> None:
        state_names = set(self.shared) | set(self.params)
        seen = set()
        for invariant in self.invariants:
            if invariant.name in seen:
                raise ScenarioError(f"duplicate invariant name {invariant.name!r}")
            seen.add(invariant.name)
            if invariant.kind not in ("safety", "liveness"):
                raise ScenarioError(
                    f"invariant {invariant.name!r} kind must be 'safety' or "
                    f"'liveness', got {invariant.kind!r}"
                )
            _parse_or_fail(invariant.predicate, f"invariant {invariant.name!r}")
            unknown = _expr_names(invariant.predicate) - state_names
            if unknown:
                raise ScenarioError(
                    f"invariant {invariant.name!r} references {sorted(unknown)}; "
                    "invariants may only use shared variables and parameters"
                )

    def _validate_post(self) -> None:
        for source in self.post:
            _parse_or_fail(source, f"post-condition {source!r}")

    # -- JSON round-trip -------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {
            "format": SCENARIO_FORMAT,
            "name": self.name,
            "description": self.description,
            "params": dict(self.params),
            "shared": dict(self.shared),
            "actions": [action.to_dict() for action in self.actions],
            "roles": [role.to_dict() for role in self.roles],
        }
        if self.invariants:
            data["invariants"] = [inv.to_dict() for inv in self.invariants]
        if self.post:
            data["post"] = list(self.post)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ScenarioError(
                f"unsupported scenario format {fmt!r} (expected {SCENARIO_FORMAT!r})"
            )
        try:
            spec = cls(
                name=str(data["name"]),
                description=str(data.get("description", "")),
                params=dict(data.get("params", {})),
                shared=dict(data.get("shared", {})),
                actions=tuple(
                    ActionSpec.from_dict(item) for item in data.get("actions", ())
                ),
                roles=tuple(
                    RoleSpec.from_dict(item) for item in data.get("roles", ())
                ),
                invariants=tuple(
                    InvariantSpec.from_dict(item)
                    for item in data.get("invariants", ())
                ),
                post=tuple(str(item) for item in data.get("post", ())),
            )
        except KeyError as error:
            raise ScenarioError(f"scenario is missing the {error.args[0]!r} field") from None
        return spec.validate()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    # -- normalization hooks used elsewhere ------------------------------------

    def action_map(self) -> Dict[str, ActionSpec]:
        return {action.name: action for action in self.actions}

    def state_names(self) -> frozenset:
        """Every monitor field the compiled monitor exposes."""
        return frozenset(self.shared) | frozenset(self.params)


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load and validate a scenario JSON file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ScenarioError(f"cannot read scenario file {path}: {error}") from None
    try:
        return ScenarioSpec.from_json(text)
    except json.JSONDecodeError as error:
        raise ScenarioError(f"{path} is not valid JSON: {error}") from None
    except ScenarioError as error:
        raise ScenarioError(f"{path}: {error}") from None
