"""Compile a :class:`ScenarioSpec` into a live monitor class and a Problem.

``compile_scenario_monitor`` builds an :class:`AutoSynchMonitor` subclass
with one entry method per action: binds and pre-effects run on entry, the
guard goes through ``wait_until`` — i.e. the full predicate parser →
globalization → codegen pipeline, with predicate-table sharing, tagging and
relay signalling exactly as for hand-written monitors — and the effects
apply once the guard holds.  Effects and binds are compiled once per spec
through the same predicate front end and evaluated by the predicate
evaluator, so the whole scenario runs without a single line of
scenario-specific Python.

``ScenarioProblem`` adapts the compiled monitor to the harness's
:class:`~repro.problems.base.Problem` contract (``build`` → workload,
``oracles`` → explorer probes), and ``register_scenario`` drops it into the
problem registry so every front end — ``run_workload``, the experiments
CLI, ``python -m repro.explore`` — can drive it by name.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.monitor import AutoSynchMonitor
from repro.predicates.ast_nodes import Expr, Subscript
from repro.predicates.classify import classify, free_names
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.predicates.errors import PredicateError
from repro.predicates.evaluator import evaluate, evaluate_bool
from repro.predicates.parser import parse_predicate
from repro.predicates.predicate import compile_predicate
from repro.problems.base import AUTOMATIC_MECHANISMS, Oracle, Problem, WorkloadSpec
from repro.problems.registry import register_problem, unregister_problem
from repro.runtime.api import Backend
from repro.scenarios.spec import ActionSpec, ScenarioError, ScenarioSpec

__all__ = [
    "compile_scenario_monitor",
    "ScenarioProblem",
    "register_scenario",
    "unregister_scenario",
    "scenario_for",
    "registered_scenarios",
]


def _classify_expr(source: str, state_names: frozenset, what: str) -> Expr:
    """Parse *source* and classify every non-shared name as thread-local."""
    try:
        expr = parse_predicate(source)
        names = frozenset(free_names(expr))
        return classify(expr, state_names, names - state_names)
    except PredicateError as error:
        raise ScenarioError(f"{what}: {error}") from None


class _CompiledAssignment:
    """One precompiled state update ``target = expression``."""

    __slots__ = ("target", "index", "value")

    def __init__(self, target: str, expr: str, state_names: frozenset, what: str) -> None:
        node = parse_predicate(target)
        if isinstance(node, Subscript):
            self.target = node.value.ident
            self.index: Optional[Expr] = classify(
                node.index,
                state_names,
                frozenset(free_names(node.index)) - state_names,
            )
        else:
            self.target = node.ident
            self.index = None
        self.value = _classify_expr(expr, state_names, what)

    def apply(self, monitor: AutoSynchMonitor, local_values: Mapping[str, object]) -> None:
        value = evaluate(self.value, monitor, local_values)
        if self.index is None:
            setattr(monitor, self.target, value)
        else:
            container = getattr(monitor, self.target)
            container[evaluate(self.index, monitor, local_values)] = value
            # A subscript store mutates the container in place, bypassing the
            # monitor's __setattr__ write tracking; report it explicitly so
            # the incremental relay path stays sound for container fields.
            monitor._bump_write(self.target)


class _ActionRuntime:
    """An :class:`ActionSpec` with every expression precompiled."""

    __slots__ = ("name", "guard", "binds", "pre", "effect")

    def __init__(self, action: ActionSpec, state_names: frozenset) -> None:
        self.name = action.name
        self.guard = action.guard
        self.binds: Tuple[Tuple[str, Expr], ...] = tuple(
            (name, _classify_expr(expr, state_names, f"action {action.name!r} bind {name!r}"))
            for name, expr in action.binds
        )
        self.pre = tuple(
            _CompiledAssignment(
                target, expr, state_names, f"action {action.name!r} pre of {target!r}"
            )
            for target, expr in action.pre
        )
        self.effect = tuple(
            _CompiledAssignment(
                target, expr, state_names, f"action {action.name!r} effect of {target!r}"
            )
            for target, expr in action.effect
        )


def _make_action_method(runtime: _ActionRuntime) -> Callable:
    def action_method(self, **local_values):
        for name, expr in runtime.binds:
            local_values[name] = evaluate(expr, self, local_values)
        for assignment in runtime.pre:
            assignment.apply(self, local_values)
        if runtime.guard is not None:
            self.wait_until(runtime.guard, **local_values)
        for assignment in runtime.effect:
            assignment.apply(self, local_values)

    action_method.__name__ = runtime.name
    action_method.__qualname__ = runtime.name
    action_method.__doc__ = f"Compiled scenario action {runtime.name!r}."
    return action_method


def compile_scenario_monitor(spec: ScenarioSpec) -> type:
    """Compile *spec* into a live :class:`AutoSynchMonitor` subclass.

    The class takes one extra keyword argument, ``scenario_state`` — the
    mapping of initial field values (parameters merged with evaluated
    shared initials) the problem builder computed — followed by the usual
    monitor keyword arguments (``backend``, ``signalling``, ...).
    """
    spec.validate()
    state_names = spec.state_names()
    runtimes = [
        _ActionRuntime(action, state_names) for action in spec.actions
    ]

    def __init__(self, scenario_state: Mapping[str, object], **monitor_kwargs):
        AutoSynchMonitor.__init__(self, **monitor_kwargs)
        for field_name, value in scenario_state.items():
            setattr(self, field_name, copy.deepcopy(value))

    namespace: Dict[str, object] = {
        "__init__": __init__,
        "__doc__": (
            f"Monitor compiled from declarative scenario {spec.name!r}.\n\n"
            f"{spec.description}"
        ),
        "__module__": __name__,
        "scenario_name": spec.name,
        # Every state update funnels through _CompiledAssignment.apply, which
        # reports subscript stores via _bump_write; declaring the state names
        # lets the condition manager trust write tracking even for container
        # fields on scenario-compiled monitors.
        "_tracked_write_names": state_names,
        # The precompiled action table, so the coroutine driver
        # (repro.core.async_driver.run_action) can execute the same
        # binds -> pre -> guard -> effects sequence without re-entering the
        # synchronous entry-method wrappers.
        "_action_runtimes": {runtime.name: runtime for runtime in runtimes},
    }
    for runtime in runtimes:
        namespace[runtime.name] = _make_action_method(runtime)
    class_name = "Scenario_" + "".join(
        ch if ch.isalnum() else "_" for ch in spec.name
    )
    return type(class_name, (AutoSynchMonitor,), namespace)


def _eval_size(size, env: Mapping[str, object], what: str) -> int:
    if isinstance(size, str):
        try:
            value = evaluate(parse_predicate(size), env)
        except PredicateError as error:
            raise ScenarioError(f"{what} ({size!r}): {error}") from None
    else:
        value = size
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{what} must evaluate to an int, got {value!r}")
    if value < 0:
        raise ScenarioError(f"{what} must be non-negative, got {value}")
    return value


class ScenarioProblem(Problem):
    """A :class:`Problem` compiled from a :class:`ScenarioSpec`.

    Scenario problems run under every registered signalling policy (their
    single ``waituntil`` implementation is policy-agnostic); there is no
    hand-written explicit-signal variant — eliminating that dual
    implementation is the point of the spec.
    """

    mechanisms = AUTOMATIC_MECHANISMS

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate()
        self.spec = spec
        self.name = spec.name
        self.description = spec.description or f"declarative scenario {spec.name!r}"
        self.monitor_cls = compile_scenario_monitor(spec)
        state_names = spec.state_names()
        self.uses_complex_predicates = any(
            action.guard is not None
            and (frozenset(free_names(parse_predicate(action.guard))) - state_names)
            for action in spec.actions
        )
        self._invariant_predicates = tuple(
            (
                invariant,
                compile_predicate(invariant.predicate, state_names).globalized(),
            )
            for invariant in spec.invariants
        )

    # -- workload construction -------------------------------------------------

    def _merged_params(self, overrides: Mapping[str, object]) -> Dict[str, object]:
        unknown = sorted(set(overrides) - set(self.spec.params))
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {unknown}; "
                f"declared parameters: {sorted(self.spec.params)}"
            )
        merged = dict(self.spec.params)
        merged.update(overrides)
        return merged

    def build(
        self,
        mechanism: str,
        backend: Backend,
        threads: int,
        total_ops: int,
        seed: int = 0,
        profile: bool = False,
        validate: bool = False,
        eval_engine: str = DEFAULT_ENGINE,
        **params: object,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        spec = self.spec
        merged = self._merged_params(params)
        env: Dict[str, object] = {"threads": threads, "total_ops": total_ops}
        env.update(merged)

        # Role sizes enter the environment in declaration order, so later
        # roles (and shared initials / post-conditions) may reference
        # earlier roles' counts and budgets.
        counts: Dict[str, int] = {}
        op_budgets: Dict[str, int] = {}
        action_slots = 0
        for role in spec.roles:
            count = _eval_size(role.count, env, f"role {role.name!r} count")
            counts[role.name] = count
            env[f"{role.name}_count"] = count
            action_slots += count * len(role.actions)
        default_ops = max(1, total_ops // max(1, action_slots))
        for role in spec.roles:
            if role.ops is None:
                ops = default_ops
            else:
                ops = _eval_size(role.ops, env, f"role {role.name!r} ops")
            op_budgets[role.name] = ops
            env[f"{role.name}_ops"] = ops

        state: Dict[str, object] = dict(merged)
        for name, initial in spec.shared.items():
            if isinstance(initial, str):
                try:
                    state[name] = evaluate(parse_predicate(initial), env)
                except PredicateError as error:
                    raise ScenarioError(
                        f"initial value of shared variable {name!r} "
                        f"({initial!r}): {error}"
                    ) from None
            else:
                state[name] = initial

        monitor = self.monitor_cls(
            state,
            **self.monitor_kwargs(mechanism, backend, profile, validate, eval_engine),
        )

        targets: List[Callable[[], None]] = []
        names: List[str] = []
        operations = 0
        for role in spec.roles:
            count = counts[role.name]
            iterations = op_budgets[role.name]
            methods = [getattr(monitor, action) for action in role.actions]
            operations += count * iterations * len(methods)
            for index in range(count):
                local_env = dict(env)
                local_env["i"] = index
                local_env["n"] = count
                role_locals: Dict[str, object] = {}
                for local_name, expr in role.locals:
                    try:
                        role_locals[local_name] = evaluate(
                            parse_predicate(expr), local_env
                        )
                    except PredicateError as error:
                        raise ScenarioError(
                            f"role {role.name!r} local {local_name!r} "
                            f"({expr!r}): {error}"
                        ) from None
                    local_env[local_name] = role_locals[local_name]
                targets.append(self._make_body(methods, iterations, role_locals))
                names.append(f"{role.name}-{index}")

        post_checks = tuple(
            (source, compile_predicate(source, spec.state_names(), frozenset(env)))
            for source in spec.post
        )
        frozen_env = dict(env)

        def verify() -> None:
            for source, compiled in post_checks:
                assert evaluate_bool(compiled.expr, monitor, frozen_env), (
                    f"scenario {spec.name!r} post-condition {source!r} failed"
                )

        return WorkloadSpec(
            monitor=monitor,
            targets=targets,
            names=names,
            verify=verify,
            operations=operations,
        )

    @staticmethod
    def _make_body(
        methods: List[Callable], iterations: int, role_locals: Dict[str, object]
    ) -> Callable[[], None]:
        def body() -> None:
            for _ in range(iterations):
                for method in methods:
                    method(**role_locals)

        return body

    # -- oracles ----------------------------------------------------------------

    def oracles(self, monitor) -> Tuple[Oracle, ...]:
        oracles = []
        for invariant, globalized in self._invariant_predicates:
            def check(globalized=globalized, invariant=invariant):
                if globalized.compiled_holds(monitor):
                    return None
                return f"invariant predicate {invariant.predicate!r} is false"

            oracles.append(Oracle(invariant.name, check, kind=invariant.kind))
        return tuple(oracles)


#: name -> spec for every scenario registered as a problem (lets repro
#: files embed the generating spec so replays are self-contained).
_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioProblem:
    """Compile *spec* and register it in the problem registry.

    The returned :class:`ScenarioProblem` is immediately runnable by name
    through every front end (``run_workload``, the experiments CLI,
    ``python -m repro.explore``).
    """
    problem = ScenarioProblem(spec)
    register_problem(problem, replace=replace)
    _SCENARIOS[spec.name] = spec
    return problem


def unregister_scenario(name: str) -> None:
    """Remove a scenario (and its problem registration) by name."""
    unregister_problem(name)
    _SCENARIOS.pop(name, None)


def scenario_for(problem_name: str) -> Optional[ScenarioSpec]:
    """The spec a registered problem was compiled from, if any."""
    return _SCENARIOS.get(problem_name)


def registered_scenarios() -> Tuple[str, ...]:
    """Names of every registered scenario, in registration order."""
    return tuple(_SCENARIOS)
