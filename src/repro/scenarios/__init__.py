"""Declarative scenarios: spec-compiled conditional-synchronization problems.

The subsystem has three layers:

* :mod:`repro.scenarios.spec` — the :class:`ScenarioSpec` data model
  (shared variables, roles, guarded actions, invariants) with lossless
  JSON round-tripping;
* :mod:`repro.scenarios.compile` — compiles a spec into a live
  :class:`~repro.core.monitor.AutoSynchMonitor` subclass (guards run
  through the full predicate parser → globalization → codegen pipeline)
  and a :class:`ScenarioProblem` registered in the problem registry;
* :mod:`repro.scenarios.generate` — seeded random generation of
  valid-by-construction specs, the input feed of
  ``python -m repro.explore --mode fuzz``.

:mod:`repro.scenarios.builtin` ships ready-made scenarios (barrier,
FIFO semaphore, priority resource pool, traffic intersection) that
register alongside the paper's seven problems.
"""

from repro.scenarios.compile import (
    ScenarioProblem,
    compile_scenario_monitor,
    register_scenario,
    registered_scenarios,
    scenario_for,
    unregister_scenario,
)
from repro.scenarios.generate import FAMILIES, generate_scenario, generate_scenarios
from repro.scenarios.spec import (
    SCENARIO_FORMAT,
    ActionSpec,
    InvariantSpec,
    RoleSpec,
    ScenarioError,
    ScenarioSpec,
    load_scenario_file,
)

__all__ = [
    "SCENARIO_FORMAT",
    "FAMILIES",
    "ActionSpec",
    "InvariantSpec",
    "RoleSpec",
    "ScenarioError",
    "ScenarioProblem",
    "ScenarioSpec",
    "compile_scenario_monitor",
    "generate_scenario",
    "generate_scenarios",
    "load_scenario_file",
    "register_scenario",
    "registered_scenarios",
    "scenario_for",
    "unregister_scenario",
]
