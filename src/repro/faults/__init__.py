"""Deterministic fault injection for the monitor stack.

Faults — spurious wakeups, dropped or delayed signals, thread crashes while
holding the monitor, compiled-predicate failures, write-tracker amnesia —
fire at recorded decision points of the simulation kernel, so a chaos run is
exactly as reproducible as a fault-free one: the same seed, scheduling
policy and :class:`FaultPlan` replay the same faults at the same steps.

Layering:

* :class:`Fault` (one failure mode, registered by name) —
  :mod:`repro.faults.base`, builtins in :mod:`repro.faults.builtin`;
* :class:`FaultInjector` (dispatches one run's hooks) —
  :mod:`repro.faults.injector`;
* :class:`FaultPlan` / :class:`FaultSpec` (named, JSON-round-trippable fault
  schedules, embedded in repro files) — :mod:`repro.faults.plan`.

The recovery surface these faults exercise lives elsewhere: timed waits and
``WaitTimeout`` in the monitor, quarantine of misbehaving compiled
predicates, self-healing degradation of the incremental relay path
(``AutoSynchMonitor.try_self_heal``), and the kernel's abandonment
detection and hang autopsy.
"""

from repro.faults.base import (
    Fault,
    InjectedFaultError,
    available_faults,
    create_fault,
    describe_fault,
    get_fault,
    register_fault,
    unregister_fault,
)
from repro.faults.builtin import (
    DelayedSignalFault,
    DroppedSignalFault,
    PredicateErrorFault,
    SpuriousWakeupFault,
    ThreadCrashFault,
    TrackerAmnesiaFault,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    available_fault_plans,
    create_fault_plan,
    describe_fault_plan,
    get_fault_plan,
    register_fault_plan,
    unregister_fault_plan,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "DelayedSignalFault",
    "DroppedSignalFault",
    "PredicateErrorFault",
    "SpuriousWakeupFault",
    "ThreadCrashFault",
    "TrackerAmnesiaFault",
    "available_fault_plans",
    "available_faults",
    "create_fault",
    "create_fault_plan",
    "describe_fault",
    "describe_fault_plan",
    "get_fault",
    "get_fault_plan",
    "register_fault",
    "register_fault_plan",
    "unregister_fault",
    "unregister_fault_plan",
]
