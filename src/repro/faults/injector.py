"""The fault injector: dispatches kernel and monitor hooks to a fault set.

One injector serves one run.  It is attached to a
:class:`~repro.runtime.simulation.SimulationBackend` (whose scheduling loop
calls the ``on_*`` hooks) and optionally to an
:class:`~repro.core.AutoSynchMonitor` (whose compiled-predicate evaluations
consult ``on_compiled_eval``), records every fault that actually fired, and
counts firings into the monitor's ``faults_injected`` stat.

Because every fault decision happens at a recorded scheduling decision point
(or at a notification, which is itself ordered by the schedule), a run with
fault injection is exactly as deterministic as one without: replaying the
same seed, policy and fault plan reproduces the same faults at the same
steps, bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.faults.base import Fault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.simulation.kernel import SimulationBackend
    from repro.runtime.simulation.sync import SimCondition

__all__ = ["FaultInjector"]


class FaultInjector:
    """Dispatch fault hooks for one simulation run.

    Implements the kernel's fault-injector protocol
    (:meth:`SimulationBackend.set_fault_injector`) and the monitor's
    ``_fault_hook`` protocol; :meth:`attach` wires both up.
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self.faults: List[Fault] = list(faults)
        #: One dict per fault firing: ``{"fault": name, "step": n, "detail": s}``.
        self.events: List[Dict[str, object]] = []
        self._monitor: Optional[object] = None

    @property
    def monitor(self) -> Optional[object]:
        """The attached monitor (None before :meth:`attach`)."""
        return self._monitor

    @property
    def fired(self) -> int:
        """Total number of fault firings recorded so far."""
        return len(self.events)

    def attach(
        self, backend: "SimulationBackend", monitor: Optional[object] = None
    ) -> "FaultInjector":
        """Wire this injector into *backend* (and *monitor*, when given).

        Only the simulation backend supports injection — fault scheduling is
        defined in terms of its decision points.
        """
        set_injector = getattr(backend, "set_fault_injector", None)
        if set_injector is None:
            raise TypeError(
                f"backend {type(backend).__name__!r} does not support fault "
                "injection; faults require the simulation backend"
            )
        self._monitor = monitor
        if monitor is not None:
            monitor._fault_hook = self
        for fault in self.faults:
            fault.on_attach(self)
        set_injector(self)
        return self

    def record(self, fault: Fault, step: int, detail: str) -> None:
        """Log that *fault* fired (called by fault hooks)."""
        self.events.append({"fault": fault.name, "step": step, "detail": detail})
        monitor = self._monitor
        if monitor is not None:
            monitor.stats.faults_injected += 1

    # -- kernel protocol (scheduler lock held) -------------------------------

    def on_decision(self, kernel: "SimulationBackend", step: int) -> None:
        for fault in self.faults:
            fault.on_decision(self, kernel, step)

    def on_notify(
        self, kernel: "SimulationBackend", condition: "SimCondition", wake_all: bool
    ) -> bool:
        for fault in self.faults:
            if fault.on_notify(self, kernel, condition, wake_all):
                return True
        return False

    def on_no_runnable(self, kernel: "SimulationBackend") -> bool:
        progressed = False
        for fault in self.faults:
            if fault.on_no_runnable(self, kernel):
                progressed = True
        return progressed

    # -- monitor protocol (monitor lock held) --------------------------------

    def on_compiled_eval(self, monitor: object) -> None:
        for fault in self.faults:
            fault.on_compiled_eval(self, monitor)
