"""Fault plans: named, serializable schedules of faults for one run.

A :class:`FaultPlan` bundles a list of :class:`FaultSpec` rows (fault-type
name + parameters).  Plans are JSON-round-trippable, so a chaos repro file
embeds the exact plan alongside the schedule trace, and :meth:`FaultPlan.build`
constructs a fresh :class:`~repro.faults.injector.FaultInjector` per run —
fault state never leaks between runs.

Named plans live in the usual plugin registry (one builtin plan per fault
type plus a mixed plan), so ``--fault dropped_signal`` works out of the box
and unknown names fail with the full registered list.
"""

from __future__ import annotations

from typing import ClassVar, Dict, FrozenSet, List, Mapping, Sequence, Tuple, Union

from repro.core.plugin_registry import PluginRegistry
from repro.faults import builtin  # noqa: F401  (registers the builtin fault types)
from repro.faults.base import create_fault, get_fault
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "register_fault_plan",
    "unregister_fault_plan",
    "get_fault_plan",
    "available_fault_plans",
    "describe_fault_plan",
    "create_fault_plan",
]


class FaultSpec:
    """One row of a fault plan: a fault-type name plus its parameters."""

    __slots__ = ("kind", "params")

    def __init__(self, kind: str, params: Mapping[str, object] = ()) -> None:
        self.kind = kind
        self.params: Dict[str, object] = dict(params)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultSpec":
        return cls(kind=data["kind"], params=data.get("params", {}))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FaultSpec):
            return self.kind == other.kind and self.params == other.params
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSpec({self.kind!r}, {self.params!r})"


class FaultPlan:
    """A named, serializable set of faults injected into one run."""

    #: "No name defined" sentinel for the plan registry.
    name: ClassVar[str] = "abstract"
    description: str = ""

    def __init__(
        self,
        name: str,
        faults: Sequence[FaultSpec],
        description: str = "",
    ) -> None:
        self.name = name
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self.description = description

    def describe(self) -> str:
        """One-line label used by reports and ``--list-faults``."""
        return self.description or ", ".join(spec.kind for spec in self.faults)

    @property
    def acceptable_kinds(self) -> FrozenSet[str]:
        """Classification kinds a run under this plan may legitimately end
        with: the union over the plan's fault types (each fault alone can
        cause its own outcomes, and any fault may simply not fire — "ok").
        Never contains "hang": a silent hang is a failure under every plan.
        """
        kinds = {"ok"}
        for spec in self.faults:
            kinds.update(get_fault(spec.kind).acceptable_kinds)
        kinds.discard("hang")
        return frozenset(kinds)

    def build(self) -> FaultInjector:
        """Construct a fresh injector with fresh fault instances."""
        return FaultInjector(
            [create_fault(spec.kind, **spec.params) for spec in self.faults]
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultPlan":
        return cls(
            name=data["name"],
            faults=[FaultSpec.from_dict(row) for row in data["faults"]],
            description=data.get("description", ""),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FaultPlan):
            return (
                self.name == other.name
                and self.faults == other.faults
                and self.description == other.description
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.name!r}, {list(self.faults)!r})"


#: The registry of named plans (stores ready instances, like the problem
#: catalogue).
_REGISTRY = PluginRegistry(
    kind="fault plan",
    base=FaultPlan,
    noun="plan",
    plural="plans",
    spec_noun="fault_plan",
    stores_instances=True,
)

PlanSpec = Union[str, FaultPlan, Mapping[str, object]]


def register_fault_plan(plan: FaultPlan, replace: bool = False) -> FaultPlan:
    """Register *plan* under its name."""
    return _REGISTRY.register(plan, replace=replace)


def unregister_fault_plan(name: str) -> None:
    """Remove a registered plan by name (for tests)."""
    _REGISTRY.unregister(name)


def get_fault_plan(name: str) -> FaultPlan:
    """Look up a named plan; unknown names list every registered plan."""
    return _REGISTRY.get(name)


def available_fault_plans() -> Tuple[str, ...]:
    """Names of every registered plan, in registration order."""
    return _REGISTRY.names()


def describe_fault_plan(name: str) -> str:
    """The one-line human-readable label of a registered plan."""
    return _REGISTRY.describe(name)


def create_fault_plan(spec: PlanSpec) -> FaultPlan:
    """Resolve *spec* to a :class:`FaultPlan`.

    Accepts a registered plan name, an already-built plan, or a plan
    dictionary (the embedded form repro files carry).
    """
    if isinstance(spec, str):
        return get_fault_plan(spec)
    if isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, Mapping):
        return FaultPlan.from_dict(spec)
    raise TypeError(
        "fault_plan must be a registered plan name, a FaultPlan or a plan "
        f"dictionary; got {spec!r}"
    )


def _register_builtin_plans() -> None:
    plans: List[FaultPlan] = [
        FaultPlan(
            "spurious_wakeup",
            [FaultSpec("spurious_wakeup", {"at_step": 5})],
            "one spurious wakeup at step 5",
        ),
        FaultPlan(
            "dropped_signal",
            [FaultSpec("dropped_signal", {"nth": 1})],
            "swallow the first notification",
        ),
        FaultPlan(
            "delayed_signal",
            [FaultSpec("delayed_signal", {"nth": 1, "delay": 8})],
            "hold the first notification back 8 steps",
        ),
        FaultPlan(
            "thread_crash",
            [FaultSpec("thread_crash", {"at_step": 6})],
            "kill a lock owner at or after step 6",
        ),
        FaultPlan(
            "predicate_error",
            [FaultSpec("predicate_error", {"nth": 1})],
            "poison the first compiled predicate evaluation",
        ),
        FaultPlan(
            "tracker_amnesia",
            [FaultSpec("tracker_amnesia", {"at_step": 0})],
            "write tracker stops recording immediately",
        ),
        FaultPlan(
            "mixed",
            [
                FaultSpec("spurious_wakeup", {"at_step": 3}),
                FaultSpec("dropped_signal", {"nth": 2}),
            ],
            "a spurious wakeup plus a dropped signal",
        ),
    ]
    for plan in plans:
        if plan.name not in _REGISTRY:
            _REGISTRY.register(plan)


_REGISTRY.set_populate(_register_builtin_plans)
