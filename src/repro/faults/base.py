"""The fault abstraction: one injectable failure mode, registered by name.

A :class:`Fault` is a small strategy object the
:class:`~repro.faults.injector.FaultInjector` dispatches kernel and monitor
hooks to.  All hooks run with the simulation kernel's scheduler lock held, so
a fault must restrict itself to the kernel's ``inject_*`` methods and to pure
bookkeeping on the monitor — never to backend primitives.

Fault types share the codebase-wide plugin-registry contract
(:class:`~repro.core.plugin_registry.PluginRegistry`): decorator
registration, ``replace=True`` shadow guard and unknown-name errors that
list every registered fault type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Dict, FrozenSet, Tuple, Type, Union

from repro.core.plugin_registry import PluginRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.runtime.simulation.kernel import SimulationBackend
    from repro.runtime.simulation.sync import SimCondition

__all__ = [
    "Fault",
    "InjectedFaultError",
    "register_fault",
    "unregister_fault",
    "get_fault",
    "available_faults",
    "describe_fault",
    "create_fault",
]


class InjectedFaultError(Exception):
    """Raised *by* an injected fault (e.g. inside a compiled predicate
    closure).  Deliberately not a :class:`PredicateError` subclass: the
    quarantine machinery must treat it as a non-semantic failure."""


class Fault:
    """One injectable failure mode.

    Subclasses set :attr:`name` / :attr:`description`, declare which
    explore-classification kinds are legitimate outcomes when the fault
    fires (:attr:`acceptable_kinds` — the chaos oracle treats anything else
    as a real failure; ``"hang"`` is never acceptable), and override the
    hooks they need.  Constructor keyword arguments are the fault's
    parameters; they must round-trip through :attr:`params` so a
    :class:`~repro.faults.plan.FaultPlan` embedding this fault serializes.
    """

    #: Registry name of the fault type.
    name: ClassVar[str] = "abstract"
    #: One-line human-readable label.
    description: ClassVar[str] = ""
    #: Explore-classification kinds this fault may legitimately cause.  A
    #: ``"kind:"``-prefixed family (``"error"``, ``"oracle"``) matches every
    #: classification of that family.
    acceptable_kinds: ClassVar[FrozenSet[str]] = frozenset({"ok"})

    def __init__(self, **params: object) -> None:
        #: The constructor arguments, for plan serialization.
        self.params: Dict[str, object] = dict(params)

    def describe(self) -> str:
        """One-line label used by reports and ``--list-faults``."""
        return self.description or self.name

    # -- lifecycle ----------------------------------------------------------

    def on_attach(self, injector: "FaultInjector") -> None:
        """The injector was attached to a backend; reset per-run state."""

    # -- kernel hooks (scheduler lock held) ----------------------------------

    def on_decision(
        self, injector: "FaultInjector", kernel: "SimulationBackend", step: int
    ) -> None:
        """Called at every scheduling decision, before a thread is chosen."""

    def on_notify(
        self,
        injector: "FaultInjector",
        kernel: "SimulationBackend",
        condition: "SimCondition",
        wake_all: bool,
    ) -> bool:
        """Called for every notification with waiters; return True to
        suppress the delivery (the fault took responsibility for it)."""
        return False

    def on_no_runnable(
        self, injector: "FaultInjector", kernel: "SimulationBackend"
    ) -> bool:
        """Last word before deadlock handling; return True when the fault
        made progress (e.g. force-delivered an in-flight signal)."""
        return False

    # -- monitor hooks (monitor lock held) -----------------------------------

    def on_compiled_eval(self, injector: "FaultInjector", monitor: object) -> None:
        """Called before each compiled predicate evaluation on the attached
        monitor; may raise :class:`InjectedFaultError`."""


#: The shared plugin registry holding every fault-type class.
_REGISTRY = PluginRegistry(
    kind="fault type",
    base=Fault,
    noun="fault",
    plural="fault types",
    spec_noun="fault",
)

FaultSpecType = Union[str, Fault, Type[Fault]]


def register_fault(fault_cls: Type[Fault], replace: bool = False) -> Type[Fault]:
    """Register *fault_cls* under its ``name`` attribute (class decorator)."""
    return _REGISTRY.register(fault_cls, replace=replace)


def unregister_fault(name: str) -> None:
    """Remove a registered fault type by name (for tests)."""
    _REGISTRY.unregister(name)


def get_fault(name: str) -> Type[Fault]:
    """Look up a fault-type class by registry name."""
    return _REGISTRY.get(name)


def available_faults() -> Tuple[str, ...]:
    """Names of every registered fault type, in registration order."""
    return _REGISTRY.names()


def describe_fault(name: str) -> str:
    """The one-line human-readable label of a registered fault type."""
    return _REGISTRY.describe(name)


def create_fault(spec: FaultSpecType, **params: object) -> Fault:
    """Resolve *spec* (name, class or instance) to a fault instance."""
    return _REGISTRY.create(spec, **params)
