"""The built-in fault types.

Each models one way real monitor stacks go wrong:

* ``spurious_wakeup`` — a waiter resumes with no signal (POSIX permits it).
* ``dropped_signal`` — a notification is swallowed in flight.
* ``delayed_signal`` — a notification arrives, but much later.
* ``thread_crash`` — a thread dies while holding the monitor lock.
* ``predicate_error`` — a compiled predicate closure raises.
* ``tracker_amnesia`` — the write tracker silently stops seeing writes
  (the seeded defect of the incremental-relay test suite, promoted to a
  first-class registered fault).

Every fault fires at deterministic points of the simulated schedule, so a
chaos run replays exactly from its recorded seed + plan.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.faults.base import Fault, InjectedFaultError, register_fault

__all__ = [
    "SpuriousWakeupFault",
    "DroppedSignalFault",
    "DelayedSignalFault",
    "ThreadCrashFault",
    "PredicateErrorFault",
    "TrackerAmnesiaFault",
]


@register_fault
class SpuriousWakeupFault(Fault):
    """Wake one parked waiter without a signal, once, at a given step.

    A correct monitor absorbs this: the woken thread re-evaluates its
    predicate, finds it false, and goes back to waiting.
    """

    name = "spurious_wakeup"
    description = "wake one waiter without a signal at a given step"
    acceptable_kinds = frozenset({"ok", "step_limit"})

    def __init__(self, at_step: int = 5) -> None:
        super().__init__(at_step=at_step)
        self.at_step = at_step
        self._armed = True

    def on_attach(self, injector) -> None:
        self._armed = True

    def on_decision(self, injector, kernel, step: int) -> None:
        if not self._armed or step < self.at_step:
            return
        tid = kernel.inject_wake_one_waiter_locked()
        if tid is not None:
            self._armed = False
            injector.record(self, step, f"spuriously woke thread {tid}")


@register_fault
class DroppedSignalFault(Fault):
    """Swallow the n-th notification that would have woken somebody.

    Without recovery this loses a promised signal for good — the classified
    outcomes are a missed signal or deadlock; with the self-healing hook
    engaged the run completes normally.
    """

    name = "dropped_signal"
    description = "swallow the n-th notification outright"
    acceptable_kinds = frozenset(
        {"ok", "missed_signal", "deadlock", "timeout", "step_limit"}
    )

    def __init__(self, nth: int = 1) -> None:
        super().__init__(nth=nth)
        self.nth = nth
        self._seen = 0

    def on_attach(self, injector) -> None:
        self._seen = 0

    def on_notify(self, injector, kernel, condition, wake_all: bool) -> bool:
        self._seen += 1
        if self._seen != self.nth:
            return False
        label = condition.label or "condition"
        injector.record(
            self,
            kernel.steps,
            f"dropped {'notify_all' if wake_all else 'notify'} on {label}",
        )
        return True


@register_fault
class DelayedSignalFault(Fault):
    """Detach the n-th notification's waiter and re-deliver it *delay*
    scheduling steps later.

    If the run goes idle before the delivery comes due, the signal is
    force-delivered rather than left to cause a spurious deadlock — a
    delayed signal is late, not lost.
    """

    name = "delayed_signal"
    description = "hold the n-th notification back for a number of steps"
    acceptable_kinds = frozenset(
        {"ok", "missed_signal", "deadlock", "timeout", "step_limit"}
    )

    def __init__(self, nth: int = 1, delay: int = 8) -> None:
        super().__init__(nth=nth, delay=delay)
        self.nth = nth
        self.delay = delay
        self._seen = 0
        #: (due_step, condition, tid) notifications held back, oldest first.
        self._pending: List[Tuple[int, object, int]] = []

    def on_attach(self, injector) -> None:
        self._seen = 0
        self._pending = []

    def on_notify(self, injector, kernel, condition, wake_all: bool) -> bool:
        if wake_all and len(condition.waiters) > 1:
            # Delaying one waiter of a broadcast would still deliver the
            # rest; keep the fault's semantics sharp and skip those.
            return False
        self._seen += 1
        if self._seen != self.nth:
            return False
        tid = kernel.inject_detach_waiter_locked(condition)
        if tid is None:
            return False
        due = kernel.steps + self.delay
        self._pending.append((due, condition, tid))
        label = condition.label or "condition"
        injector.record(
            self, kernel.steps, f"delayed signal for thread {tid} on {label} until step {due}"
        )
        return True

    def on_decision(self, injector, kernel, step: int) -> None:
        while self._pending and self._pending[0][0] <= step:
            _, condition, tid = self._pending.pop(0)
            if kernel.inject_deliver_waiter_locked(condition, tid):
                injector.record(self, step, f"delivered delayed signal to thread {tid}")

    def on_no_runnable(self, injector, kernel) -> bool:
        delivered = False
        while self._pending:
            _, condition, tid = self._pending.pop(0)
            if kernel.inject_deliver_waiter_locked(condition, tid):
                injector.record(
                    self, kernel.steps,
                    f"force-delivered delayed signal to thread {tid} (idle run)",
                )
                delivered = True
        return delivered


@register_fault
class ThreadCrashFault(Fault):
    """Kill the first thread seen holding a lock at or after a given step.

    The victim dies silently at its next kernel primitive, still owning the
    monitor — the kernel's abandonment detection (not a hang) is the
    expected verdict when other threads are stuck behind it.
    """

    name = "thread_crash"
    description = "kill a thread while it holds the monitor lock"
    acceptable_kinds = frozenset(
        {
            "ok",
            "abandonment",
            "deadlock",
            "missed_signal",
            "postcondition",
            "timeout",
            "step_limit",
            "oracle",
            "error",
        }
    )

    def __init__(self, at_step: int = 6) -> None:
        super().__init__(at_step=at_step)
        self.at_step = at_step
        self._armed = True

    def on_attach(self, injector) -> None:
        self._armed = True

    def on_decision(self, injector, kernel, step: int) -> None:
        if not self._armed or step < self.at_step:
            return
        tid = kernel.inject_doom_lock_owner_locked()
        if tid is not None:
            self._armed = False
            injector.record(self, step, f"doomed lock-owning thread {tid}")


@register_fault
class PredicateErrorFault(Fault):
    """Raise from inside the n-th compiled predicate evaluation.

    The monitor's quarantine machinery demotes the poisoned predicate to
    the interpreter and the run completes — the only acceptable outcome.
    """

    name = "predicate_error"
    description = "raise from the n-th compiled predicate evaluation"
    acceptable_kinds = frozenset({"ok"})

    def __init__(self, nth: int = 1) -> None:
        super().__init__(nth=nth)
        self.nth = nth
        self._seen = 0
        self._fired = False

    def on_attach(self, injector) -> None:
        self._seen = 0
        self._fired = False

    def on_compiled_eval(self, injector, monitor) -> None:
        if self._fired:
            return
        self._seen += 1
        if self._seen == self.nth:
            self._fired = True
            injector.record(
                self, -1, f"raised from compiled evaluation #{self.nth}"
            )
            raise InjectedFaultError(
                f"injected compiled-predicate failure (evaluation #{self.nth})"
            )


@register_fault
class TrackerAmnesiaFault(Fault):
    """Silently stop the monitor's write tracker at or after a given step.

    Writes past that point no longer dirty the tracker, so the incremental
    relay path may skip a predicate that has become true — the classified
    outcomes are a missed signal or deadlock; with self-healing engaged the
    manager demotes itself to exhaustive search and the run completes.
    """

    name = "tracker_amnesia"
    description = "write tracker silently stops recording writes"
    acceptable_kinds = frozenset(
        {"ok", "missed_signal", "deadlock", "timeout", "step_limit"}
    )

    def __init__(self, at_step: int = 0) -> None:
        super().__init__(at_step=at_step)
        self.at_step = at_step
        self._armed = True

    def on_attach(self, injector) -> None:
        self._armed = True

    def on_decision(self, injector, kernel, step: int) -> None:
        if not self._armed or step < self.at_step:
            return
        monitor = injector.monitor
        if monitor is None:
            return
        tracker = getattr(monitor, "write_tracker", None)
        if tracker is None:
            # Nothing to corrupt (incremental relay off): disarm quietly.
            self._armed = False
            return
        tracker.suppressed = True
        self._armed = False
        injector.record(self, step, "write tracker suppressed")
