"""Shared helpers for the benchmark suite.

Each ``test_figXX_*`` module regenerates one figure or table of the paper:

* the ``*_point`` benchmarks time a single representative configuration per
  signalling mechanism, so ``pytest benchmarks/ --benchmark-only`` produces a
  comparison table whose ordering mirrors the paper's figure;
* the ``*_series`` benchmark runs the whole (quick-scale) sweep once and
  prints the series — the text equivalent of the figure — so the numbers the
  paper plots can be read straight from the benchmark run's output.

The simulation backend is used throughout: its context-switch and predicate
-evaluation counts are exact and GIL-independent, which is what makes the
shapes comparable to the paper (see DESIGN.md).
"""

from __future__ import annotations

import os

import pytest

from repro.harness.report import format_series_table
from repro.harness.runner import ExperimentRunner
from repro.harness.saturation import run_workload
from repro.problems import get_problem
from repro.runtime import SimulationBackend


def run_problem_once(problem_name, mechanism, threads, total_ops, seed=1, **params):
    """One saturation run on a fresh simulation backend (benchmark body)."""
    backend = SimulationBackend(seed=seed)
    return run_workload(
        get_problem(problem_name),
        mechanism,
        backend,
        threads=threads,
        total_ops=total_ops,
        seed=seed,
        verify=False,
        **params,
    )


def harness_execution_overrides():
    """Executor overrides for the whole benchmark suite, from the environment.

    ``HARNESS_EXECUTOR`` / ``HARNESS_JOBS`` switch every figure/table sweep
    onto a different executor (e.g. ``HARNESS_EXECUTOR=process
    HARNESS_JOBS=4``) without touching the benchmark modules — the merged
    series, and therefore every printed figure, is identical either way.
    """
    executor = os.environ.get("HARNESS_EXECUTOR") or None
    jobs_raw = os.environ.get("HARNESS_JOBS")
    jobs = int(jobs_raw) if jobs_raw else None
    if jobs is not None and executor is None:
        # HARNESS_JOBS alone would be silently ignored by the serial
        # executor; asking for workers means asking for the process executor.
        executor = "process"
    return executor, jobs


def run_quick_series(experiment_id, executor=None, jobs=None):
    """Run an experiment's quick configuration and return (experiment, series).

    *executor*/*jobs* default to the suite-wide environment overrides (see
    :func:`harness_execution_overrides`).
    """
    from repro.experiments import get_experiment

    env_executor, env_jobs = harness_execution_overrides()
    experiment = get_experiment(experiment_id)
    config = experiment.quick_config.with_executor(
        executor or env_executor, jobs if jobs is not None else env_jobs
    )
    series = ExperimentRunner().run(config)
    return experiment, series


def print_series(experiment, series, metric=None):
    """Print the figure's rows (shown with pytest -s / in captured output)."""
    metric = metric or experiment.metric
    print()
    print(experiment.report(series))
    if metric != "context_switches":
        print()
        print(format_series_table(series, "context_switches",
                                  title=f"{experiment.experiment_id} — context switches"))


@pytest.fixture
def series_benchmark(benchmark):
    """Benchmark fixture that runs a whole sweep exactly once."""

    def run(experiment_id, metric=None):
        experiment, series = benchmark.pedantic(
            run_quick_series, args=(experiment_id,), rounds=1, iterations=1
        )
        print_series(experiment, series, metric)
        return experiment, series

    return run
