"""Tentpole benchmark: DPOR must beat plain DFS >= 5x with identical verdicts.

Exhausts the bounded buffer at 2 producers / 2 consumers / capacity 1 /
8 operations twice per mechanism — plain DFS and DPOR — and asserts

* **reduction**: DPOR executes at least :data:`REQUIRED_RATIO` times fewer
  schedules (the broadcast baseline, whose futile-wakeup cascades all merge
  into one configuration, reduces far harder than that), and
* **bit-identical verdicts**: the multiset of failure kinds over the whole
  exploration is equal on both sides — reduction may remove redundant
  interleavings, never evidence.

A second section shows the qualitative win: at 12 operations DPOR still
*exhausts* the configuration, while plain DFS handed the very same schedule
budget runs out with the tree unfinished.

Schedule counts, wall times and the reducer's pruning counters land in
``BENCH_dpor_reduction.json`` at the repository root (CI uploads it as an
artifact).
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.explore import ExploreTask, explore_dfs, explore_dpor
from repro.problems.base import all_mechanisms

#: Where the reduction snapshot lands (repository root).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_dpor_reduction.json"

#: Required schedule-count advantage of DPOR per mechanism.
REQUIRED_RATIO = 5.0

THREADS = 2
#: 8 ops -> 4 items -> uniform per-thread quotas, so the producer/consumer
#: symmetry classes apply (an odd item count would split quotas unevenly
#: and disable symmetry — see BoundedBufferProblem.symmetry_classes).
TOTAL_OPS = 8
CAPACITY = 1

#: The baseline's schedule tree is infinite (futile-wakeup cycles); both
#: explorers get the same depth bound so their trees coincide.
BASELINE_MAX_DEPTH = 24

#: The beyond-DFS leg: DPOR exhausts this op count; plain DFS cannot within
#: DPOR's schedule budget.
BEYOND_OPS = 12

_RESULTS: dict = {"mechanisms": {}, "beyond_dfs": {}}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS["mechanisms"] or _RESULTS["beyond_dfs"]:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _task(mechanism: str, total_ops: int = TOTAL_OPS) -> ExploreTask:
    return ExploreTask(
        problem="bounded_buffer",
        mechanism=mechanism,
        threads=THREADS,
        total_ops=total_ops,
        problem_params={"capacity": CAPACITY},
    )


@pytest.mark.parametrize("mechanism", all_mechanisms())
def test_reduction_factor_and_verdict_identity(benchmark, mechanism):
    max_depth = BASELINE_MAX_DEPTH if mechanism == "baseline" else None
    task = _task(mechanism)

    def explore_both():
        t0 = time.perf_counter()
        full = explore_dfs(task, max_depth=max_depth)
        t1 = time.perf_counter()
        reduced = explore_dpor(task, max_depth=max_depth)
        t2 = time.perf_counter()
        return full, reduced, t1 - t0, t2 - t1

    full, reduced, dfs_seconds, dpor_seconds = benchmark.pedantic(
        explore_both, rounds=1, iterations=1
    )
    assert full.complete and reduced.complete
    ratio = full.schedules_visited / reduced.schedules_visited

    # The whole point: identical violation sets, bit for bit.  Failure
    # *counts* legitimately differ (that is the reduction); the kinds seen
    # across the exploration may not.
    full_kinds = Counter(f.kind for f in full.failures)
    reduced_kinds = Counter(f.kind for f in reduced.failures)
    assert set(full_kinds) == set(reduced_kinds), (
        f"{mechanism}: DPOR changed the violation set: "
        f"{dict(full_kinds)} vs {dict(reduced_kinds)}"
    )
    assert (full.failures_total == 0) == (reduced.failures_total == 0)

    assert ratio >= REQUIRED_RATIO, (
        f"{mechanism}: DPOR explored {reduced.schedules_visited} of "
        f"{full.schedules_visited} schedules — only {ratio:.2f}x, "
        f"required {REQUIRED_RATIO}x"
    )

    benchmark.extra_info["dfs_schedules"] = full.schedules_visited
    benchmark.extra_info["dpor_schedules"] = reduced.schedules_visited
    benchmark.extra_info["ratio"] = round(ratio, 2)
    _RESULTS["mechanisms"][mechanism] = {
        "dfs_schedules": full.schedules_visited,
        "dpor_schedules": reduced.schedules_visited,
        "ratio": round(ratio, 2),
        "dfs_seconds": round(dfs_seconds, 4),
        "dpor_seconds": round(dpor_seconds, 4),
        "failure_kinds": dict(sorted(full_kinds.items())),
        "dpor_stats": dict(reduced.stats),
        "max_depth": max_depth,
        "threads": THREADS,
        "total_ops": TOTAL_OPS,
        "capacity": CAPACITY,
    }


def test_dpor_exhausts_where_dfs_cannot(benchmark):
    """At 12 ops DPOR still finishes the tree; plain DFS given exactly
    DPOR's schedule budget does not — the qualitative version of the ratio.
    """
    task = _task("autosynch", total_ops=BEYOND_OPS)

    def explore_both():
        reduced = explore_dpor(task)
        capped = explore_dfs(task, max_schedules=reduced.schedules_visited)
        return reduced, capped

    reduced, capped = benchmark.pedantic(explore_both, rounds=1, iterations=1)
    assert reduced.complete, "DPOR failed to exhaust the 12-op configuration"
    assert not capped.complete, (
        "plain DFS finished within DPOR's budget — the beyond-DFS leg "
        "needs a larger configuration"
    )
    assert reduced.failures_total == 0
    assert capped.failures_total == 0

    benchmark.extra_info["dpor_schedules"] = reduced.schedules_visited
    _RESULTS["beyond_dfs"] = {
        "mechanism": "autosynch",
        "threads": THREADS,
        "total_ops": BEYOND_OPS,
        "capacity": CAPACITY,
        "dpor_schedules": reduced.schedules_visited,
        "dpor_complete": reduced.complete,
        "dfs_schedules_at_same_budget": capped.schedules_visited,
        "dfs_complete_at_same_budget": capped.complete,
        "dpor_stats": dict(reduced.stats),
    }
