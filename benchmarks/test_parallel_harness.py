"""Ablation: serial vs shard-parallel execution of a figure sweep.

After the predicate-compilation engine made per-evaluation cost cheap, the
harness's wall-clock became dominated by running every sweep cell serially
in one process.  This benchmark measures the biggest remaining lever — the
``process`` executor sharding cells over a ``multiprocessing`` pool — on a
representative figure sweep (Fig. 8's bounded buffer, scaled to a cell
count worth sharding), and proves the executor contract at the same time:
the sharded sweeps must merge to a series bit-identical (fingerprint
equality, wall-clock excluded) to the serial one.

Results are written to ``BENCH_parallel_harness.json`` at the repository
root: serial wall-clock, per-job-count parallel wall-clock and speedups,
plus the host's CPU count (speedup is bounded by cores — on the 4-core CI
runners the ``jobs=4`` leg is expected to clear 2x; on a single-core host
the run still checks equivalence and records ~1x).  CI uploads the file as
an artifact.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments import get_experiment
from repro.harness import ExperimentRunner, series_fingerprint
from repro.harness.execution.process import serial_fallback_reason

#: Where the perf-trajectory snapshot lands (repository root).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel_harness.json"

#: Worker counts of the parallel legs.  Deliberately *not* driven by the
#: suite-wide HARNESS_JOBS override (which switches the figure benchmarks
#: onto the process executor): this module always compares serial against
#: both leg sizes so the artifact keeps its jobs=4 data point.  Override
#: with PARALLEL_BENCH_JOBS=N for a single custom leg.
DEFAULT_JOB_COUNTS = (2, 4)

#: Regression guard on the best parallel leg when enough cores exist for a
#: pool to pay off.  Deliberately well below the ~2x+ a healthy 4-core
#: runner records in the JSON: shared CI runners throttle and time-slice,
#: and the bit-identical-series check above is the hard invariant — this
#: bar only catches the executor degenerating to serial.
REQUIRED_SPEEDUP = 1.2
REQUIRED_CORES = 4

_RESULTS: dict = {}


def _job_counts():
    override = os.environ.get("PARALLEL_BENCH_JOBS")
    if override:
        return (int(override),)
    return DEFAULT_JOB_COUNTS


def _sweep_config():
    """Fig. 8's quick sweep with enough repetitions to be worth sharding."""
    experiment = get_experiment("fig08")
    return experiment.quick_config.scaled(total_ops=2_400, repetitions=3)


def _timed_run(config):
    started = time.perf_counter()
    series = ExperimentRunner().run(config)
    return series, time.perf_counter() - started


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Write the collected numbers to BENCH_parallel_harness.json at teardown."""
    yield
    if _RESULTS:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
        print(f"\nparallel-harness results written to {RESULTS_PATH}")


def test_sharded_sweep_is_equivalent_and_faster():
    config = _sweep_config()
    cells = len(config.mechanisms) * len(config.thread_counts) * config.repetitions
    serial_series, serial_s = _timed_run(config.with_executor("serial"))
    serial_fp = series_fingerprint(serial_series)

    cpu_count = os.cpu_count() or 1
    legs = {}
    best_speedup = 0.0
    fallback = serial_fallback_reason(min(_job_counts()), cells)
    if fallback is not None:
        # A pool cannot help here (e.g. a single-CPU host, where it used to
        # *slow the sweep down* to 0.7-0.8x serial); the executor now falls
        # back to the in-process path.  Run one leg anyway to prove the
        # fallback preserves bit-identical results, and record the reason
        # instead of a bogus "speedup".
        sharded_series, sharded_s = _timed_run(
            config.with_executor("process", jobs=_job_counts()[0])
        )
        assert series_fingerprint(sharded_series) == serial_fp, (
            "process executor's serial fallback diverged from the serial series"
        )
        legs["fallback"] = {"reason": fallback, "wall_s": round(sharded_s, 4)}
    else:
        for jobs in _job_counts():
            sharded_series, sharded_s = _timed_run(config.with_executor("process", jobs=jobs))
            assert series_fingerprint(sharded_series) == serial_fp, (
                f"process executor at jobs={jobs} diverged from the serial series"
            )
            speedup = serial_s / sharded_s if sharded_s > 0 else float("inf")
            best_speedup = max(best_speedup, speedup)
            legs[f"jobs={jobs}"] = {
                "wall_s": round(sharded_s, 4),
                "speedup_vs_serial": round(speedup, 3),
            }
    _RESULTS.update(
        {
            "sweep": {
                "experiment": "fig08",
                "problem": config.problem,
                "mechanisms": list(config.mechanisms),
                "thread_counts": list(config.thread_counts),
                "total_ops": config.total_ops,
                "repetitions": config.repetitions,
                "cells": cells,
            },
            "cpu_count": cpu_count,
            "serial_wall_s": round(serial_s, 4),
            "process": legs,
            "series_fingerprint": serial_fp,
        }
    )

    if fallback is None and cpu_count >= REQUIRED_CORES:
        assert best_speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x speedup with {cpu_count} cores, "
            f"got {best_speedup:.2f}x"
        )
