"""Benchmark regenerating Figure 11: round-robin access pattern per mechanism."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "autosynch_t", "autosynch")
THREADS = 24
TOTAL_OPS = 720


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig11_round_robin_point(benchmark, mechanism):
    """24 threads taking turns; tagging's hash lookup is the differentiator."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("round_robin", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["predicate_evaluations"] = result.predicate_evaluations
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig11_round_robin_series(series_benchmark):
    """The full Figure 11 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig11")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
