"""Ablation: the inactive-predicate cache (§5.2).

The condition manager keeps predicates that currently have no waiter on an
inactive list so a thread that waits for the same (globalized) condition
later can reuse the entry instead of re-registering it.  This ablation runs
the round-robin workload — where every thread re-waits for the same
equivalence predicate each round — with the cache disabled and with the
default capacity, and reports how many registrations the cache saves.
"""

from __future__ import annotations

import pytest

from repro.problems.round_robin import AutoRoundRobin
from repro.runtime import SimulationBackend

THREADS = 12
ROUNDS = 20


def run_round_robin(inactive_capacity: int):
    backend = SimulationBackend(seed=3)
    monitor = AutoRoundRobin(
        THREADS, backend=backend, signalling="autosynch", inactive_capacity=inactive_capacity
    )

    def worker(thread_id):
        def body():
            for _ in range(ROUNDS):
                monitor.access(thread_id)
        return body

    backend.run([worker(i) for i in range(THREADS)])
    return monitor


@pytest.mark.parametrize("inactive_capacity", [0, 64], ids=["cache-off", "cache-on"])
def test_ablation_inactive_cache(benchmark, inactive_capacity):
    monitor = benchmark.pedantic(
        run_round_robin, args=(inactive_capacity,), rounds=3, iterations=1
    )
    benchmark.extra_info["predicate_registrations"] = monitor.stats.predicate_registrations
    benchmark.extra_info["predicate_reuses"] = monitor.stats.predicate_reuses
    assert monitor.accesses == THREADS * ROUNDS


def test_ablation_inactive_cache_saves_registrations(benchmark):
    """The cache turns repeat registrations into reuses."""

    def compare():
        return run_round_robin(0), run_round_robin(64)

    without_cache, with_cache = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert (
        with_cache.stats.predicate_registrations
        <= without_cache.stats.predicate_registrations
    )
    assert with_cache.stats.predicate_reuses >= without_cache.stats.predicate_reuses
