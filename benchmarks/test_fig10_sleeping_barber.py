"""Benchmark regenerating Figure 10: sleeping-barber runtime per mechanism."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "baseline", "autosynch_t", "autosynch")
THREADS = 16
TOTAL_OPS = 600


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig10_sleeping_barber_point(benchmark, mechanism):
    """16 customers plus the barber."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("sleeping_barber", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig10_sleeping_barber_series(series_benchmark):
    """The full Figure 10 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig10")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
