"""Service-tier benchmark: sustained throughput over many parked waiters.

Runs :func:`repro.harness.service_load.run_service_load` on the asyncio
backend at 1k/10k/100k parked waiters (override with
``SERVICE_THROUGHPUT_SCALES=1000,10000``; add the million-waiter point by
setting ``SERVICE_THROUGHPUT_MILLION=1``), measuring sustained ops/s and
p50/p99 wakeup latency on the builtin ``resource_pool`` scenario, with a
``fifo_semaphore`` cross-check at the smallest scale.  Each scale also runs
:func:`~repro.harness.service_load.measure_relay_modes`, so the throughput
numbers ship with the incremental-vs-exhaustive per-relay-pass ratio that
explains them.

Everything lands in ``BENCH_service_throughput.json`` at the repository
root (CI uploads it as an artifact).  Rates are recorded both raw and
per-core (``ops_per_sec / cpu_count``, the 1-CPU-fallback convention of
``BENCH_parallel_harness.json``) so numbers from different boxes compare
honestly.

Acceptance: the 100k-waiter sustained run completes in under 60 seconds,
and at every scale the incremental relay pass evaluates only the dirtied
predicate while the exhaustive pass visits all of them — sublinear
per-pass cost by construction, asserted from the measured counters.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.service_load import measure_relay_modes, run_service_load

#: Where the perf-trajectory snapshot lands (repository root).
RESULTS_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_service_throughput.json"
)

#: Parked-waiter counts, overridable for CI smoke runs.
SCALES = tuple(
    int(raw)
    for raw in os.environ.get(
        "SERVICE_THROUGHPUT_SCALES", "1000,10000,100000"
    ).split(",")
    if raw.strip()
)
if os.environ.get("SERVICE_THROUGHPUT_MILLION"):
    SCALES = SCALES + (1_000_000,)

#: Admission window (concurrently held slots) for the sustained-load runs.
WINDOW = 64

#: Wall-clock budget for the 100k-waiter (and larger) sustained runs.
MAX_SECONDS_AT_100K = 60.0

_RESULTS: dict = {"cpu_count": os.cpu_count() or 1, "scales": {}}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Write the collected numbers to BENCH_service_throughput.json at teardown."""
    yield
    if _RESULTS["scales"]:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("scale", SCALES)
def test_sustained_service_load(scale):
    """One sustained-load run per scale on the asyncio backend."""
    result = run_service_load(
        scale, scenario="resource_pool", window=min(WINDOW, scale)
    )
    record = result.as_record()
    _RESULTS["scales"].setdefault(str(scale), {})["resource_pool"] = record

    # Every admission beyond the initial window rides one release.
    assert result.operations == 2 * scale
    assert result.latency_samples == scale - min(WINDOW, scale)
    assert result.p50_wakeup_seconds <= result.p99_wakeup_seconds
    if scale >= 100_000:
        assert result.duration_seconds < MAX_SECONDS_AT_100K, (
            f"{scale} waiters took {result.duration_seconds:.1f}s "
            f"(budget: {MAX_SECONDS_AT_100K:.0f}s)"
        )


def test_fifo_semaphore_cross_check():
    """The ticket-FIFO scenario sustains the same protocol at the smallest scale."""
    scale = min(SCALES)
    result = run_service_load(
        scale, scenario="fifo_semaphore", window=min(WINDOW, scale)
    )
    _RESULTS["scales"].setdefault(str(scale), {})["fifo_semaphore"] = (
        result.as_record()
    )
    assert result.operations == 2 * scale
    assert result.latency_samples == scale - min(WINDOW, scale)


@pytest.mark.parametrize("scale", SCALES)
def test_relay_modes_sublinear(scale):
    """Incremental relay must beat exhaustive per-pass cost at every scale.

    The sharded-guard manager harness re-evaluates one predicate per
    incremental pass however many are parked; the exhaustive pass visits
    every registered predicate, so its per-pass evaluation count grows
    linearly with the waiter count and the ratio grows with scale.
    """
    record = measure_relay_modes(scale)
    _RESULTS["scales"].setdefault(str(scale), {})["relay_modes"] = record

    assert record["incremental"]["evals_per_pass"] == 1
    assert record["exhaustive"]["evals_per_pass"] == record["predicates"]
    assert record["eval_ratio"] >= max(2.0, record["predicates"] / 2), (
        f"incremental relay only {record['eval_ratio']:.1f}x fewer evaluations "
        f"than exhaustive at {scale} waiters"
    )
    # The pooled EvalContext means passes do not allocate fresh contexts.
    assert record["incremental"]["eval_context_allocations"] <= 2
    assert record["exhaustive"]["eval_context_allocations"] <= 2


def test_throughput_recorded_per_core():
    """Every recorded run carries the per-core normalisation fields."""
    for scale_record in _RESULTS["scales"].values():
        for name, record in scale_record.items():
            if name == "relay_modes":
                continue
            assert record["cpu_count"] >= 1
            assert record["ops_per_sec_per_core"] == pytest.approx(
                record["ops_per_sec"] / record["cpu_count"]
            )
