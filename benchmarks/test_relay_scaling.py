"""Tentpole benchmark: incremental relay signalling must be sublinear.

Parks N waiters (N from ``RELAY_SCALING_SCALES``, default 100/1k/10k) on a
condition manager, each behind a distinct never-true predicate over its own
monitor field (``w<i> != 1`` — ``!=`` is never taggable, so every entry
lands in the untagged exhaustive pool, the worst case for relay search).
Steady state then writes **one** field per monitor-exit pass:

* the **exhaustive** manager re-evaluates all N predicates every pass;
* the **incremental** manager drains the dirty set and re-evaluates only the
  one entry whose field was written, skipping the other N-1.

Per-pass wall time and evaluated-vs-skipped counts for both modes land in
``BENCH_relay_scaling.json`` at the repository root (CI uploads it as an
artifact).  Acceptance: the incremental per-pass cost grows sublinearly
between the two largest scales, and at the largest scale the incremental
pass performs >= 5x fewer predicate evaluations than the exhaustive pass.

A second section measures the fused batch closures: N same-shape predicates
(``count > i``) evaluated through ``signal_many`` in one generated loop per
chunk instead of one engine call per entry.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.condition_manager import ConditionManager
from repro.core.instrumentation import MonitorStats
from repro.core.write_tracking import WriteTracker
from repro.predicates import compile_predicate

#: Where the perf-trajectory snapshot lands (repository root).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_relay_scaling.json"

#: Waiter counts, overridable for CI smoke runs (``RELAY_SCALING_SCALES=100,1000``).
SCALES = tuple(
    int(raw)
    for raw in os.environ.get("RELAY_SCALING_SCALES", "100,1000,10000").split(",")
    if raw.strip()
)

#: Steady-state passes timed per (scale, mode).
PASSES = 30

#: Required evaluation advantage of the incremental pass at the largest scale.
REQUIRED_EVAL_RATIO = 5.0

#: Growing the waiter count 10x may grow the incremental per-pass cost by at
#: most half that factor (a strict-sublinearity bar with CI-noise headroom;
#: the dirty-set pass is expected to be near-constant).
SUBLINEAR_FACTOR = 0.5

_RESULTS: dict = {"scales": {}, "batched": {}}


# -- minimal backend doubles (no thread ever actually blocks) ----------------


class _Lock:
    def acquire(self):
        return None

    def release(self):
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


class _Condition:
    def notify(self):
        return None

    def notify_n(self, n):
        return None

    def notify_all(self):
        return None

    def waiter_count(self):
        return 0


class _Backend:
    name = "bench"

    def create_lock(self):
        return _Lock()

    def create_condition(self, lock):
        return _Condition()

    def current_id(self):
        return 0


class _State:
    """Attribute bag standing in for a monitor with N scalar fields."""


def _make_manager(owner, tracker, use_tags=True):
    backend = _Backend()
    return ConditionManager(
        owner=owner,
        backend=backend,
        lock=backend.create_lock(),
        stats=MonitorStats(),
        use_tags=use_tags,
        write_tracker=tracker,
    ), tracker


def _park_distinct_fields(manager, forms):
    for form in forms:
        entry = manager.acquire_entry(form, from_shared_predicate=True)
        manager.add_waiter(entry)


def _distinct_field_forms(scale):
    """One ``w<i> != 1`` globalized predicate per waiter (shared across modes)."""
    forms = []
    for i in range(scale):
        name = f"w{i}"
        forms.append(compile_predicate(f"{name} != 1", {name}).globalized())
    return forms


def _steady_state_passes(manager, owner, tracker, scale):
    """Time PASSES relay passes, each after one field write; return metrics."""
    stats = manager._stats
    # Warmup pass: every predicate is evaluated once (false) so the
    # incremental manager reaches steady state (everything marked clean).
    warmup_started = time.perf_counter()
    assert not manager.relay_signal()
    warmup = time.perf_counter() - warmup_started

    evals_before = stats.predicate_evaluations
    skipped_before = stats.relay_entries_skipped
    started = time.perf_counter()
    for index in range(PASSES):
        name = f"w{index % scale}"
        setattr(owner, name, 1)  # write keeps the predicate false
        if tracker is not None:
            tracker.bump(name)
        assert not manager.relay_signal()
    elapsed = time.perf_counter() - started
    return {
        "passes": PASSES,
        "warmup_seconds": warmup,
        "per_pass_seconds": elapsed / PASSES,
        "evals_per_pass": (stats.predicate_evaluations - evals_before) / PASSES,
        "skipped_per_pass": (stats.relay_entries_skipped - skipped_before) / PASSES,
        # Total contexts constructed across warmup + PASSES relay passes:
        # the per-manager context pool keeps this at 1 however many passes
        # run (it was one fresh EvalContext per pass before pooling).
        "eval_context_allocations": stats.eval_context_allocations,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Write the collected numbers to BENCH_relay_scaling.json at teardown."""
    yield
    if _RESULTS["scales"] or _RESULTS["batched"]:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("scale", SCALES)
def test_relay_pass_scaling(scale):
    """Measure one (scale, mode) steady state per mode and record it."""
    forms = _distinct_field_forms(scale)
    record = {}
    for mode, tracker in (("incremental", WriteTracker()), ("exhaustive", None)):
        owner = _State()
        for i in range(scale):
            setattr(owner, f"w{i}", 1)  # w != 1 is false: nobody is ever woken
        manager, tracker = _make_manager(owner, tracker)
        _park_distinct_fields(manager, forms)
        record[mode] = _steady_state_passes(manager, owner, tracker, scale)
    _RESULTS["scales"][str(scale)] = record

    incremental = record["incremental"]
    exhaustive = record["exhaustive"]
    # The exhaustive pass visits everything; the incremental pass evaluates
    # only the one dirtied entry and skips the rest.
    assert exhaustive["evals_per_pass"] == scale
    assert incremental["evals_per_pass"] == 1
    assert incremental["skipped_per_pass"] == scale - 1


def test_eval_context_pooling_caps_allocations():
    """The pooled per-manager EvalContext must hold allocations at ~1 however
    many relay passes run (one warmup + PASSES steady-state passes each
    allocated a fresh context before pooling)."""
    largest = max(SCALES)
    record = _RESULTS["scales"][str(largest)]
    for mode in ("incremental", "exhaustive"):
        allocations = record[mode]["eval_context_allocations"]
        assert allocations <= 2, (
            f"{mode} manager allocated {allocations} EvalContexts over "
            f"{PASSES + 1} relay passes at {largest} waiters — the context "
            "pool is not engaging"
        )


def test_incremental_pass_cost_is_sublinear():
    """Between the two largest scales the incremental per-pass cost must grow
    by at most SUBLINEAR_FACTOR of the size ratio (exhaustive grows ~linearly)."""
    if len(SCALES) < 2:
        pytest.skip("need at least two scales to measure growth")
    small, large = sorted(SCALES)[-2:]
    small_record = _RESULTS["scales"][str(small)]
    large_record = _RESULTS["scales"][str(large)]
    size_ratio = large / small
    growth = (
        large_record["incremental"]["per_pass_seconds"]
        / small_record["incremental"]["per_pass_seconds"]
    )
    _RESULTS["sublinearity"] = {
        "scales": [small, large],
        "size_ratio": size_ratio,
        "incremental_growth": growth,
        "exhaustive_growth": (
            large_record["exhaustive"]["per_pass_seconds"]
            / small_record["exhaustive"]["per_pass_seconds"]
        ),
    }
    assert growth <= size_ratio * SUBLINEAR_FACTOR, (
        f"incremental per-pass cost grew {growth:.2f}x over a {size_ratio:.0f}x "
        f"size increase — not sublinear"
    )


def test_incremental_evaluates_at_least_5x_fewer():
    largest = max(SCALES)
    record = _RESULTS["scales"][str(largest)]
    ratio = record["exhaustive"]["evals_per_pass"] / max(
        record["incremental"]["evals_per_pass"], 1e-9
    )
    _RESULTS["eval_ratio_at_largest_scale"] = ratio
    assert ratio >= REQUIRED_EVAL_RATIO, (
        f"incremental pass only {ratio:.1f}x fewer evaluations than exhaustive "
        f"at {largest} waiters (required: {REQUIRED_EVAL_RATIO}x)"
    )


@pytest.mark.parametrize("scale", SCALES)
def test_fused_batch_closures(scale):
    """N same-shape predicates (``count > i``) through ``signal_many``: the
    fused batch path must serve the evaluations in generated loops.

    ``use_tags=False`` puts every entry in the untagged pool — the search
    shape of the FIFO/AutoSynch-T managers, and the pool ``signal_many``
    fuses into per-shape batch closures (with tags these predicates would
    sit in threshold heaps and be pruned before evaluation).
    """
    owner = _State()
    owner.count = -1  # count > i is false for every i
    manager, tracker = _make_manager(owner, WriteTracker(), use_tags=False)
    for i in range(scale):
        form = compile_predicate(f"count > {i}", {"count"}).globalized()
        entry = manager.acquire_entry(form, from_shared_predicate=True)
        manager.add_waiter(entry)
    stats = manager._stats

    started = time.perf_counter()
    assert manager.signal_many(8) == 0
    first_pass = time.perf_counter() - started
    assert stats.batched_evaluations == scale, "the fused batch path did not engage"

    # Steady state: everything is clean, one write re-pends every entry
    # (shared read set), and the whole sweep runs through batch closures.
    owner.count = -1
    tracker.bump("count")
    evals_before = stats.predicate_evaluations
    batched_before = stats.batched_evaluations
    started = time.perf_counter()
    assert manager.signal_many(8) == 0
    second_pass = time.perf_counter() - started
    assert stats.predicate_evaluations - evals_before == scale
    assert stats.batched_evaluations - batched_before == scale

    _RESULTS["batched"][str(scale)] = {
        "first_pass_seconds": first_pass,
        "steady_pass_seconds": second_pass,
        "batched_evaluations_per_pass": scale,
    }
