"""Benchmark regenerating Figure 15: context switches of the parameterized
bounded buffer (explicit vs. AutoSynch)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "autosynch")
CONSUMERS = 24
TOTAL_OPS = 480


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig15_context_switch_point(benchmark, mechanism):
    """Counts come from the simulation scheduler, so they are exact."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("parameterized_bounded_buffer", mechanism, CONSUMERS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["condition_waits"] = result.backend_metrics["condition_waits"]
    assert result.context_switches > 0


def test_fig15_context_switch_series(series_benchmark):
    """The full Figure 15 sweep (quick scale); prints the context-switch table."""
    experiment, series = series_benchmark("fig15")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
    # The paper's qualitative claim at every scale: explicit wakes far more.
    xs = series.x_values()
    explicit = series.point_for("explicit", xs[-1]).context_switches
    autosynch = series.point_for("autosynch", xs[-1]).context_switches
    assert explicit > autosynch
