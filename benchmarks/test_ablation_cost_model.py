"""Ablation: sensitivity of the headline result to the cost-model weights.

The simulation backend measures event *counts*; turning them into a modelled
runtime requires per-event costs (DESIGN.md).  This ablation re-evaluates the
Figure 14 conclusion — AutoSynch beats the signalAll-based explicit monitor
on the parameterized bounded buffer — under cost models that vary the
relative price of a context switch by two orders of magnitude, showing the
qualitative conclusion does not depend on the exact weights.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once
from repro.harness.cost_model import CostModel

CONSUMERS = 24
TOTAL_OPS = 480

COST_MODELS = {
    "cheap-switches": CostModel(context_switch_us=1.0, predicate_evaluation_us=0.4),
    "default": CostModel(),
    "expensive-switches": CostModel(context_switch_us=100.0, predicate_evaluation_us=0.4),
}


def run_both():
    explicit = run_problem_once(
        "parameterized_bounded_buffer", "explicit", CONSUMERS, TOTAL_OPS
    )
    autosynch = run_problem_once(
        "parameterized_bounded_buffer", "autosynch", CONSUMERS, TOTAL_OPS
    )
    return explicit, autosynch


def test_ablation_cost_model_robustness(benchmark):
    explicit, autosynch = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for label, model in COST_MODELS.items():
        explicit_runtime = explicit.modelled_runtime(model)
        autosynch_runtime = autosynch.modelled_runtime(model)
        benchmark.extra_info[f"{label}_ratio"] = round(
            explicit_runtime / autosynch_runtime, 2
        )
        assert autosynch_runtime < explicit_runtime, (
            f"AutoSynch should win under the {label} cost model"
        )


@pytest.mark.parametrize("label", sorted(COST_MODELS))
def test_ablation_cost_model_ratio_reported(benchmark, label):
    """Per-model benchmark entries so ratios appear in the comparison table."""
    model = COST_MODELS[label]

    def run():
        explicit, autosynch = run_both()
        return explicit.modelled_runtime(model) / autosynch.modelled_runtime(model)

    ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["explicit_over_autosynch"] = round(ratio, 2)
    assert ratio > 1.0
