"""Benchmark regenerating Figure 14: the parameterized bounded buffer.

This is the headline result of the paper: the explicit version needs
``signalAll`` and collapses as consumers are added, while AutoSynch signals
exactly one thread and stays flat (26.9x faster at 256 consumers in the
paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "autosynch")
CONSUMERS = 24
TOTAL_OPS = 480


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig14_param_bounded_buffer_point(benchmark, mechanism):
    """One producer, 24 consumers, random batch sizes."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("parameterized_bounded_buffer", mechanism, CONSUMERS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["notified_threads"] = result.backend_metrics["notified_threads"]
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig14_param_bounded_buffer_series(series_benchmark):
    """The full Figure 14 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig14")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
