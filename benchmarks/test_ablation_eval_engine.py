"""Ablation: compiled vs. interpreted predicate-evaluation engines.

``GlobalizedPredicate.holds`` is the hottest call in the runtime — every
candidate entry on every monitor exit — so the evaluation engine is the
single biggest per-evaluation lever.  This ablation measures it two ways:

* **micro**: a tight loop over the actual ``waituntil`` predicates of the
  bounded-buffer and readers-writers problems, comparing the tree-walking
  interpreter against the codegen closure.  The acceptance bar is a >= 2x
  speedup on both workloads.
* **macro**: full saturation runs of each problem under
  ``eval_engine="interpreted"`` vs ``"compiled"``, checking that the
  compiled engine really serves the evaluations (counter attribution) and
  recording wall times.

Results are written to ``BENCH_eval_engine.json`` at the repository root —
the start of the perf trajectory for the evaluation engine; CI uploads the
file as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.predicates import ENGINES, compile_predicate
from repro.predicates.evaluator import _EMPTY_LOCALS, evaluate, read_shared

from conftest import run_problem_once

#: Where the perf-trajectory snapshot lands (repository root).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_eval_engine.json"

#: Evaluations per timing sample in the micro benchmark.
MICRO_ITERATIONS = 20_000

#: Required micro speedup of the compiled engine (acceptance bar).
REQUIRED_SPEEDUP = 2.0


class _BufferState:
    """Monitor-shaped state for the bounded-buffer predicates."""

    def __init__(self) -> None:
        self.count = 3
        self.capacity = 16


class _ReadersWritersState:
    """Monitor-shaped state for the readers-writers predicates."""

    def __init__(self) -> None:
        self.serving = 7
        self.active_readers = 0
        self.active_writers = 0


#: The problems' real ``waituntil`` predicates (globalized forms).
WORKLOAD_PREDICATES = {
    "bounded_buffer": (
        _BufferState,
        [
            ("count < capacity", {"count", "capacity"}, {}),
            ("count > 0", {"count", "capacity"}, {}),
        ],
    ),
    "readers_writers": (
        _ReadersWritersState,
        [
            (
                "serving == t and active_writers == 0",
                {"serving", "active_readers", "active_writers"},
                {"t": 7},
            ),
            (
                "serving == t and active_readers == 0 and active_writers == 0",
                {"serving", "active_readers", "active_writers"},
                {"t": 7},
            ),
        ],
    ),
}

#: Collected results, flushed to RESULTS_PATH by the module fixture below.
_RESULTS: dict = {
    "holds_microbench": {},
    "workloads": {},
    # Findings worth keeping next to the numbers they explain.
    "notes": {
        "readers_writers_small_scale_crossover": (
            "At 400-op scale the interpreted engine can beat compiled wall "
            "time on readers_writers even though compiled is ~7x faster per "
            "evaluation.  Cause: the problem's predicates are complex, so "
            "every thread's globalization (serving == <id> and ...) is a "
            "distinct form paying one-time codegen compilation that ~384 "
            "evaluations cannot amortize; and tag pruning leaves at most one "
            "candidate per relay pass, so the per-pass EvalContext never "
            "re-reads a shared variable (shared_read_cache_hits == 0) and "
            "per-evaluation savings are all there is.  The crossover "
            "disappears at larger total_ops; wall times recorded here are "
            "best-of-rounds minima to keep scheduler noise out of the "
            "comparison."
        ),
    },
}


def _globalized_forms(problem: str):
    state_cls, sources = WORKLOAD_PREDICATES[problem]
    state = state_cls()
    forms = []
    for source, shared, local_values in sources:
        compiled = compile_predicate(source, shared, set(local_values))
        forms.append(compiled.globalized(local_values))
    return state, forms


def _time_holds(state, forms, engine) -> float:
    """Seconds for MICRO_ITERATIONS evaluations of every form (best of 3)."""
    import time

    if engine == "compiled":
        fns = [form.compiled_fn() for form in forms]
        assert all(fn is not None for fn in fns), "codegen declined a predicate"

        def body():
            for fn in fns:
                fn(state, read_shared, _EMPTY_LOCALS)

    else:
        exprs = [form.expr for form in forms]

        def body():
            for expr in exprs:
                evaluate(expr, state)

    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for _ in range(MICRO_ITERATIONS):
            body()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Write the collected numbers to BENCH_eval_engine.json at teardown."""
    yield
    if _RESULTS["holds_microbench"] or _RESULTS["workloads"]:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("problem", sorted(WORKLOAD_PREDICATES))
def test_compiled_holds_speedup(benchmark, problem):
    """The compiled engine must evaluate the problem's own predicates at
    least 2x faster than the interpreter."""

    def compare():
        state, forms = _globalized_forms(problem)
        interpreted = _time_holds(state, forms, "interpreted")
        compiled = _time_holds(state, forms, "compiled")
        return interpreted, compiled

    interpreted, compiled = benchmark.pedantic(compare, rounds=1, iterations=1)
    evaluations = MICRO_ITERATIONS * len(WORKLOAD_PREDICATES[problem][1])
    speedup = interpreted / compiled
    _RESULTS["holds_microbench"][problem] = {
        "interpreted_us_per_eval": interpreted * 1e6 / evaluations,
        "compiled_us_per_eval": compiled * 1e6 / evaluations,
        "speedup": speedup,
    }
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= REQUIRED_SPEEDUP, (
        f"compiled engine only {speedup:.2f}x faster than interpreted "
        f"on {problem} (required: {REQUIRED_SPEEDUP}x)"
    )


@pytest.mark.parametrize("problem", sorted(WORKLOAD_PREDICATES))
@pytest.mark.parametrize("engine", ENGINES)
def test_eval_engine_workload(benchmark, problem, engine):
    """Full saturation runs per engine: counters must attribute the
    evaluations to the selected engine, and wall times feed the JSON."""
    rounds = []

    def run():
        result = run_problem_once(
            problem, "autosynch", threads=4, total_ops=400, eval_engine=engine
        )
        rounds.append(result)
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    # Best-of-rounds: at this scale (a few hundred evaluations, tens of ms)
    # the run-to-run scheduler noise is larger than the engines' wall-time
    # difference, so the minimum is the only comparable statistic.
    result = min(rounds, key=lambda r: r.wall_time)
    stats = result.monitor_stats
    if engine == "compiled":
        assert stats["compiled_evaluations"] > 0
        # The fallback interpreter must not have been needed: every workload
        # predicate is codegen-supported.
        assert stats["interpreted_evaluations"] == 0
    else:
        assert stats["compiled_evaluations"] == 0
        assert stats["interpreted_evaluations"] > 0
    _RESULTS["workloads"].setdefault(problem, {})[engine] = {
        "wall_time": result.wall_time,
        "per_op_us": result.wall_time * 1e6 / result.operations,
        "rounds_wall_times": [r.wall_time for r in rounds],
        "operations": result.operations,
        "compiled_evaluations": stats["compiled_evaluations"],
        "interpreted_evaluations": stats["interpreted_evaluations"],
        "shared_read_cache_hits": stats["shared_read_cache_hits"],
        "relay_entries_skipped": stats["relay_entries_skipped"],
        "batched_evaluations": stats["batched_evaluations"],
    }
    benchmark.extra_info["predicate_evaluations"] = stats["predicate_evaluations"]
    benchmark.extra_info["shared_read_cache_hits"] = stats["shared_read_cache_hits"]
