"""Benchmark regenerating Figure 8: bounded-buffer runtime per mechanism."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "baseline", "autosynch_t", "autosynch")
THREADS = 16
TOTAL_OPS = 800


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig08_bounded_buffer_point(benchmark, mechanism):
    """One producers/consumers configuration per mechanism (16 of each)."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("bounded_buffer", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["predicate_evaluations"] = result.predicate_evaluations
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig08_bounded_buffer_series(series_benchmark):
    """The full Figure 8 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig08")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
