"""Benchmark regenerating Figure 13: dining philosophers per mechanism."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "autosynch_t", "autosynch")
THREADS = 24
TOTAL_OPS = 960


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig13_dining_philosophers_point(benchmark, mechanism):
    """24 philosophers; contention is local, so mechanisms stay close."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("dining_philosophers", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig13_dining_philosophers_series(series_benchmark):
    """The full Figure 13 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig13")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
