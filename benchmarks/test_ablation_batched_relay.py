"""Ablation: batched relay vs. per-wait relay (the signalling-policy layer).

The per-wait relay (``autosynch``) signals at most one thread per search, so
draining *n* ready waiters takes a chain of *n* searches, each hop gated on
the previously woken thread being scheduled.  The batched policy
(``relay_batched``) collapses the chain: one search per exit signals up to
*k* ready waiters, so the whole round becomes runnable after a single
search.  The FIFO-fair policy (``relay_fifo``) sits at the other end of the
trade-off — it gives up tag pruning entirely to pick the longest-waiting
thread, paying one predicate evaluation per active entry per relay.

The workload is the one the batching targets: a barrier-like scoreboard
where one scorer repeatedly makes every waiter ready at once.
"""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor
from repro.core.signalling import BatchedRelayPolicy
from repro.runtime import SimulationBackend

WAITERS = 16
ROUNDS = 10
#: Each round bumps the score past every waiter's threshold.
JUMP = WAITERS + 1


class Scoreboard(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.score = 0
        self.arrived = 0

    def wait_ready(self, threshold):
        """Announce arrival, then sleep until the score reaches *threshold*.

        ``arrived`` and the wait happen in one entry method, so once the
        scorer sees every waiter arrived, they are all asleep.
        """
        self.arrived += 1
        self.wait_until("score >= threshold", threshold=threshold)

    def release_when(self, waiting, amount):
        """Wait for *waiting* cumulative arrivals, then jump the score."""
        self.wait_until("arrived >= waiting", waiting=waiting)
        self.score += amount


def run_scoreboard(signalling):
    backend = SimulationBackend(seed=5)
    board = Scoreboard(backend=backend, signalling=signalling)

    def waiter(index):
        def body():
            for round_number in range(ROUNDS):
                board.wait_ready(round_number * JUMP + index + 1)
        return body

    def scorer():
        for round_number in range(ROUNDS):
            # Every round all WAITERS threads are asleep before the jump
            # makes all of their predicates true at once.
            board.release_when((round_number + 1) * WAITERS, JUMP)

    backend.run([waiter(i) for i in range(WAITERS)] + [scorer])
    assert board.score == ROUNDS * JUMP
    assert board.arrived == ROUNDS * WAITERS
    return board, backend


POLICIES = {
    "relay_per_wait": "autosynch",
    "relay_batched_k4": BatchedRelayPolicy,  # default batch limit
    "relay_batched_k16": lambda: BatchedRelayPolicy(batch_limit=WAITERS),
    "relay_fifo": "relay_fifo",
}


def make_signalling(spec):
    return spec() if callable(spec) else spec


@pytest.mark.parametrize("label", list(POLICIES), ids=list(POLICIES))
def test_ablation_batched_relay(benchmark, label):
    board, backend = benchmark.pedantic(
        lambda: run_scoreboard(make_signalling(POLICIES[label])),
        rounds=3,
        iterations=1,
    )
    stats = board.stats
    benchmark.extra_info["signals_sent"] = stats.signals_sent
    benchmark.extra_info["relay_signal_calls"] = stats.relay_signal_calls
    benchmark.extra_info["predicate_evaluations"] = stats.predicate_evaluations
    benchmark.extra_info["spurious_wakeups"] = stats.spurious_wakeups
    benchmark.extra_info["context_switches"] = backend.metrics.context_switches


def max_signals_per_search(signalling):
    """Largest number of waiters any single relay search signalled."""
    from repro.core.trace import Tracer

    backend = SimulationBackend(seed=5)
    tracer = Tracer(capacity=100_000)
    board = Scoreboard(backend=backend, signalling=signalling, tracer=tracer)

    def waiter(index):
        def body():
            for round_number in range(ROUNDS):
                board.wait_ready(round_number * JUMP + index + 1)
        return body

    def scorer():
        for round_number in range(ROUNDS):
            board.release_when((round_number + 1) * WAITERS, JUMP)

    backend.run([waiter(i) for i in range(WAITERS)] + [scorer])
    largest = 0
    for event in tracer.events:
        if event.kind == "relay" and event.detail and event.detail.startswith("signalled"):
            count = int(event.detail.rsplit(None, 1)[1]) if event.detail[-1].isdigit() else 1
            largest = max(largest, count)
    return largest


def test_batched_relay_wakes_the_round_in_one_search(benchmark):
    """Per-wait relay signals one thread per search — draining a round of 16
    ready waiters takes a 16-search chain, each hop gated on the previously
    woken thread being scheduled.  The batched policy collapses the chain:
    one search signals the whole round."""

    def compare():
        return (
            max_signals_per_search("autosynch"),
            max_signals_per_search(BatchedRelayPolicy(batch_limit=WAITERS)),
        )

    per_wait_max, batched_max = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info["per_wait_max_batch"] = per_wait_max
    benchmark.extra_info["batched_max_batch"] = batched_max
    assert per_wait_max == 1
    assert batched_max == WAITERS


def test_fifo_fairness_costs_tag_pruning(benchmark):
    """The FIFO-fair policy evaluates every active predicate per relay (no
    tag pruning), which is the measured price of its fairness guarantee."""

    def compare():
        tagged, _ = run_scoreboard("autosynch")
        fifo, _ = run_scoreboard("relay_fifo")
        return tagged.stats, fifo.stats

    tagged, fifo = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert fifo.predicate_evaluations > tagged.predicate_evaluations
    assert fifo.signals_sent == tagged.signals_sent
