"""Benchmark regenerating Figure 9: H2O runtime per mechanism."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "baseline", "autosynch_t", "autosynch")
THREADS = 16
TOTAL_OPS = 600


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig09_h2o_point(benchmark, mechanism):
    """16 hydrogen threads plus the single oxygen thread."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("h2o", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["context_switches"] = result.context_switches
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig09_h2o_series(series_benchmark):
    """The full Figure 9 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig09")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
