"""Tentpole benchmark: exploration throughput (schedules/second).

Exhausts the bounded-buffer 2 threads x 2 ops DFS tree (52 schedules) and a
fuzz-generated pipeline scenario under three cost models:

* **cold** — the PR 9 cost model re-created live: every run pays a fresh
  :class:`TaskRuntime` build (problem resolution, predicate compilation with
  the memo cleared, backend construction) and full oracle checking.
* **cached-build** — one shared runtime: runs pay backend recycle + workload
  execution, but still re-check oracles along their whole length.
* **prefix-shared** — the real :func:`explore_dfs` path: shared runtime plus
  verified-depth replay, so a child run costs O(suffix) in oracle work.

On top of the serial legs, ``executor="process"``/``jobs`` legs record what
the work-stealing frontier adds (on a single-core host the process pool
falls back to serial — see ``serial_fallback_reason`` — so those legs show
the dispatch overhead floor, not scaling).

Timing is best-of-:data:`ROUNDS` wall clock per leg: this box's scheduler
noise swamps means, minima are stable.  Results land in
``BENCH_explore_throughput.json`` at the repository root (CI uploads it as
an artifact).  The hard gates:

* the live prefix-shared leg must run >= :data:`REQUIRED_PR9_SPEEDUP` times
  the PR 9 schedules/sec pinned in :data:`PR9_BASELINE` (asserted only when
  ``EXPLORE_BENCH_RELAX`` is unset — the baseline is absolute, so hosts it
  was not measured on would flake);
* prefix-shared must beat the cold cost model by
  :data:`REQUIRED_COLD_SPEEDUP` on every config — the machine-relative
  floor.  The cold mirror understates PR 9's true cost (it still enjoys
  this PR's kernel wins: carrier-thread pooling, raw-lock gate handoffs),
  which is why its required ratio is lower than the PR 9 one; and
* every leg must visit the same schedule count and reach ``complete`` —
  throughput work may never change what the search proves.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.explore.engine import (
    ExploreTask,
    TaskRuntime,
    clear_runtime_cache,
    explore_dfs,
    run_prefix,
    task_runtime,
)
from repro.harness.execution.process import serial_fallback_reason
from repro.predicates.predicate import clear_predicate_memo
from repro.scenarios.generate import generate_scenario

#: Where the throughput snapshot lands (repository root).
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_explore_throughput.json"

#: Required live speedup over the pinned PR 9 schedules/sec.
REQUIRED_PR9_SPEEDUP = 3.0

#: Required prefix-shared / cold speedup (machine-relative; the cold
#: mirror keeps this PR's kernel wins, so the bar is lower than PR 9's).
REQUIRED_COLD_SPEEDUP = 1.5

#: Best-of-N rounds per leg (minima are stable where means are not).
ROUNDS = int(os.environ.get("EXPLORE_BENCH_ROUNDS", "12"))

#: Schedules/sec of ``explore_dfs`` at the PR 9 tip (commit 2e0f76f) on the
#: bounded-buffer 2x2 exhaust: measured on the development host, best of 10
#: exhausts, same interpreter.  Absolute — only comparable on that host.
PR9_BASELINE = {
    "sched_per_sec": 689.9,
    "provenance": (
        "explore_dfs at commit 2e0f76f (PR 9), bounded_buffer threads=2 "
        "total_ops=2 autosynch exhaust (52 schedules), best of 10 runs on "
        "the development host"
    ),
}

#: The fuzz-generated leg: seed 3 yields ``fuzz_pipeline_3``, whose 2x2
#: DFS tree (28 schedules) exhausts in tens of milliseconds — large enough
#: to time, small enough for best-of-N.
FUZZ_SEED = 3

_RESULTS: dict = {
    "pr9_baseline": PR9_BASELINE,
    "required_speedup_vs_pr9": REQUIRED_PR9_SPEEDUP,
    "required_speedup_vs_cold": REQUIRED_COLD_SPEEDUP,
    "rounds": ROUNDS,
    # Why the jobs legs match serial speed on this host (None = real pool).
    "serial_fallback_reason": serial_fallback_reason(jobs=2, task_count=8),
    "configs": {},
}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if _RESULTS["configs"]:
        RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def _bounded_buffer_task() -> ExploreTask:
    return ExploreTask(
        problem="bounded_buffer", mechanism="autosynch", threads=2, total_ops=2
    )


def _fuzz_task() -> ExploreTask:
    spec = generate_scenario(FUZZ_SEED)
    return ExploreTask(
        problem=spec.name,
        mechanism="autosynch",
        threads=2,
        total_ops=2,
        scenario=spec.to_dict(),
    )


def _mirror_dfs(task: ExploreTask, shared_runtime: bool) -> int:
    """Exhaust *task*'s DFS tree with ``explore_dfs``'s exact frontier
    discipline but a controlled cost model: ``shared_runtime=False`` pays a
    fresh build (runtime + predicate memo) per run — the PR 9 cost — and
    both variants re-check oracles along the full run (``verified_depth=0``).
    Returns the schedule count so legs can be cross-checked.
    """
    runtime = TaskRuntime(task) if shared_runtime else None
    pending = [()]
    seen = {()}
    visited = 0
    while pending:
        prefix = pending.pop()
        if shared_runtime:
            outcome = run_prefix(task, prefix, runtime=runtime)
        else:
            clear_predicate_memo()
            cold_runtime = TaskRuntime(task)
            outcome = run_prefix(task, prefix, runtime=cold_runtime)
            # Retire the throwaway backend's carriers now — thousands of
            # 10s-idle OS threads would otherwise slow the later legs.
            cold_runtime.close()
        visited += 1
        choices = outcome.trace.choices()
        for depth in range(len(prefix), len(choices)):
            for alt in range(1, outcome.trace[depth].branching):
                child = choices[:depth] + (alt,)
                if child not in seen:
                    seen.add(child)
                    pending.append(child)
    if runtime is not None:
        runtime.close()
    return visited


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_config(task: ExploreTask, label: str) -> dict:
    clear_runtime_cache()
    clear_predicate_memo()
    reference = explore_dfs(task)
    assert reference.complete
    schedules = reference.schedules_visited

    legs = {}

    def leg(name, fn, visited_fn):
        count = visited_fn()
        assert count == schedules, (
            f"{label}/{name}: visited {count} schedules, reference {schedules}"
        )
        seconds = _best_of(fn)
        legs[name] = {
            "best_seconds": round(seconds, 5),
            "sched_per_sec": round(schedules / seconds, 1),
        }

    leg("cold",
        lambda: _mirror_dfs(task, shared_runtime=False),
        lambda: _mirror_dfs(task, shared_runtime=False))
    leg("cached_build",
        lambda: _mirror_dfs(task, shared_runtime=True),
        lambda: _mirror_dfs(task, shared_runtime=True))
    # Warm the process-wide cache once so prefix-shared rounds measure the
    # steady state every frontier probe actually sees.
    task_runtime(task)
    leg("prefix_shared",
        lambda: explore_dfs(task),
        lambda: explore_dfs(task).schedules_visited)
    for jobs in (2, 4):
        leg(f"jobs{jobs}",
            lambda j=jobs: explore_dfs(task, executor="process", jobs=j),
            lambda j=jobs: explore_dfs(task, executor="process", jobs=j).schedules_visited)

    speedup = legs["prefix_shared"]["sched_per_sec"] / legs["cold"]["sched_per_sec"]
    return {
        "problem": task.problem,
        "mechanism": task.mechanism,
        "threads": task.threads,
        "total_ops": task.total_ops,
        "schedules": schedules,
        "legs": legs,
        "speedup_prefix_shared_vs_cold": round(speedup, 2),
    }


def test_bounded_buffer_throughput(benchmark):
    task = _bounded_buffer_task()

    def measure():
        return _measure_config(task, "bounded_buffer")

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    live = result["legs"]["prefix_shared"]["sched_per_sec"]
    result["speedup_vs_pr9_baseline"] = round(
        live / PR9_BASELINE["sched_per_sec"], 2
    )
    _RESULTS["configs"]["bounded_buffer_2x2"] = result
    benchmark.extra_info.update(
        schedules=result["schedules"],
        prefix_shared_sched_per_sec=live,
        speedup_vs_cold=result["speedup_prefix_shared_vs_cold"],
    )

    assert result["speedup_prefix_shared_vs_cold"] >= REQUIRED_COLD_SPEEDUP, (
        f"prefix-shared exploration is only "
        f"{result['speedup_prefix_shared_vs_cold']:.2f}x the cold cost model "
        f"(required {REQUIRED_COLD_SPEEDUP}x)"
    )
    if not os.environ.get("EXPLORE_BENCH_RELAX"):
        assert result["speedup_vs_pr9_baseline"] >= REQUIRED_PR9_SPEEDUP, (
            f"{live:.1f} sched/s is only {result['speedup_vs_pr9_baseline']:.2f}x "
            f"the PR 9 baseline ({PR9_BASELINE['sched_per_sec']} sched/s); "
            f"required {REQUIRED_PR9_SPEEDUP}x (set EXPLORE_BENCH_RELAX=1 on "
            f"hosts the baseline was not measured on)"
        )


def test_fuzz_scenario_throughput(benchmark):
    task = _fuzz_task()

    def measure():
        return _measure_config(task, "fuzz")

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    _RESULTS["configs"][f"fuzz_pipeline_{FUZZ_SEED}"] = result
    benchmark.extra_info.update(
        schedules=result["schedules"],
        prefix_shared_sched_per_sec=result["legs"]["prefix_shared"]["sched_per_sec"],
        speedup_vs_cold=result["speedup_prefix_shared_vs_cold"],
    )
    # The generated workload must benefit too: the layers are per-task,
    # not tuned to the bounded buffer.
    assert result["speedup_prefix_shared_vs_cold"] >= REQUIRED_COLD_SPEEDUP
