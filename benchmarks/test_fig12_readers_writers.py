"""Benchmark regenerating Figure 12: ticket-ordered readers/writers."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once

MECHANISMS = ("explicit", "autosynch_t", "autosynch")
WRITERS = 8  # the problem creates 5 readers per writer, as in the paper
TOTAL_OPS = 720


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_fig12_readers_writers_point(benchmark, mechanism):
    """8 writers / 40 readers with ticket-ordered admission."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("readers_writers", mechanism, WRITERS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    assert result.operations > 0
    benchmark.extra_info["predicate_evaluations"] = result.predicate_evaluations
    benchmark.extra_info["modelled_runtime_s"] = result.modelled_runtime()


def test_fig12_readers_writers_series(series_benchmark):
    """The full Figure 12 sweep (quick scale); prints the runtime table."""
    experiment, series = series_benchmark("fig12")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
