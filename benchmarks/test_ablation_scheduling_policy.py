"""Ablation: robustness of the comparison to the simulated scheduling policy.

The simulation backend supports a FIFO (round-robin) scheduler and a seeded
uniformly-random scheduler.  The paper's conclusions are about signalling
mechanisms, not about scheduler luck, so the ordering between AutoSynch and
the explicit monitor on the parameterized bounded buffer must hold under
both policies and across seeds.
"""

from __future__ import annotations

import pytest

from repro.harness.saturation import run_workload
from repro.problems import get_problem
from repro.runtime import SimulationBackend

CONSUMERS = 16
TOTAL_OPS = 320


def run_with_policy(mechanism, policy, seed):
    backend = SimulationBackend(seed=seed, policy=policy)
    return run_workload(
        get_problem("parameterized_bounded_buffer"),
        mechanism,
        backend,
        threads=CONSUMERS,
        total_ops=TOTAL_OPS,
        seed=seed,
        verify=False,
    )


@pytest.mark.parametrize("policy", ["fifo", "random"])
@pytest.mark.parametrize("mechanism", ["explicit", "autosynch"])
def test_ablation_scheduling_policy_point(benchmark, mechanism, policy):
    result = benchmark.pedantic(
        run_with_policy, args=(mechanism, policy, 11), rounds=3, iterations=1
    )
    benchmark.extra_info["context_switches"] = result.context_switches
    assert result.context_switches > 0


def test_ablation_ordering_holds_across_policies_and_seeds(benchmark):
    def sweep():
        outcomes = []
        for policy in ("fifo", "random"):
            for seed in (1, 7, 23):
                explicit = run_with_policy("explicit", policy, seed)
                autosynch = run_with_policy("autosynch", policy, seed)
                outcomes.append(
                    (policy, seed, explicit.context_switches, autosynch.context_switches)
                )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for policy, seed, explicit_switches, autosynch_switches in outcomes:
        assert autosynch_switches < explicit_switches, (
            f"AutoSynch should cause fewer context switches (policy={policy}, seed={seed})"
        )
