"""Benchmark regenerating Table 1: CPU-usage breakdown for round-robin."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_problem_once, run_quick_series
from repro.experiments.table1_cpu_usage import build_breakdowns

MECHANISMS = ("explicit", "autosynch_t", "autosynch")
THREADS = 16
TOTAL_OPS = 960


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_table1_round_robin_point(benchmark, mechanism):
    """The profiled configuration (scaled from the paper's 128 threads)."""
    result = benchmark.pedantic(
        run_problem_once,
        args=("round_robin", mechanism, THREADS, TOTAL_OPS),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["predicate_evaluations"] = result.predicate_evaluations
    benchmark.extra_info["relay_signal_calls"] = result.monitor_stats["relay_signal_calls"]
    assert result.operations > 0


def test_table1_breakdown_series(series_benchmark):
    """Runs the Table 1 experiment and prints the await/lock/relay/tag table."""
    experiment, series = series_benchmark("table1")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, failures
    breakdowns = {b.mechanism: b for b in build_breakdowns(series)}
    # Tagging removes most of the relaySignal cost (the paper reports ~95%).
    assert breakdowns["autosynch"].relay_signal_time < breakdowns["autosynch_t"].relay_signal_time
