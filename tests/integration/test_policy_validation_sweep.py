"""Validate-mode sweep: relay invariance for every policy on every problem.

Every registered signalling policy runs every problem on the simulation
backend with ``validate=True``, across several seeds.  In validate mode the
monitor re-checks the relay-invariance property after every relay step that
signalled nobody — ``ConditionManager.find_missed_waiter`` must never find a
true waiting predicate the search missed, otherwise the run aborts with a
``MonitorError``.  This is the soundness net under the whole policy
subsystem: a new policy whose search prunes too aggressively cannot pass.

The sweep also cross-checks the policies against each other: for a fixed
problem and seed, every policy must complete the identical operation budget
(and satisfy the problem's own invariants, via ``verify=True``).
"""

from __future__ import annotations

import pytest

from repro.core.signalling import available_policies
from repro.harness.saturation import run_workload
from repro.problems import PROBLEMS, get_problem
from repro.runtime import SimulationBackend

SEEDS = (3, 29, 101)

SWEEP = [
    (problem_name, policy, seed)
    for problem_name in sorted(PROBLEMS)
    for policy in available_policies()
    for seed in SEEDS
]


def run_validated(problem_name: str, policy: str, seed: int):
    problem = get_problem(problem_name)
    backend = SimulationBackend(seed=seed, policy="random")
    return run_workload(
        problem,
        policy,
        backend,
        threads=3,
        total_ops=72,
        seed=seed,
        verify=True,
        validate=True,
    )


@pytest.mark.parametrize("problem_name, policy, seed", SWEEP)
def test_policy_preserves_relay_invariance(problem_name, policy, seed):
    """validate=True aborts the run if find_missed_waiter ever fires."""
    result = run_validated(problem_name, policy, seed)
    assert result.operations > 0


@pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
def test_policies_agree_on_operation_totals(problem_name):
    """All policies complete the same work for the same configuration."""
    seed = SEEDS[0]
    totals = {
        policy: run_validated(problem_name, policy, seed).operations
        for policy in available_policies()
    }
    assert len(set(totals.values())) == 1, totals
