"""Integration tests for the schedule-exploration subsystem.

Covers the acceptance bar of the exploration engine: bounded DFS exhausts
the schedule tree of a small bounded buffer for *every* registered
signalling mechanism with zero violations, oracles are actually evaluated
at decision points, swarm exploration shards deterministically through the
executor registry, and the CLI drives the whole pipeline.
"""

from __future__ import annotations

import json

import pytest

from repro.explore import (
    ExploreTask,
    explore_dfs,
    explore_swarm,
    run_schedule,
)
from repro.explore.__main__ import main as explore_main
from repro.problems import PROBLEMS, get_problem
from repro.problems.base import all_mechanisms
from repro.runtime.simulation import PrefixScheduler, SimulationBackend

#: Mechanisms whose schedule tree is infinite (broadcast wake-ups let two
#: waiters extend any schedule forever) and therefore need a depth bound.
UNBOUNDED_TREE_MECHANISMS = {"baseline"}


def _tiny_buffer_task(mechanism: str) -> ExploreTask:
    return ExploreTask(
        problem="bounded_buffer",
        mechanism=mechanism,
        threads=2,
        total_ops=4,
        problem_params={"capacity": 1},
    )


class TestExhaustiveDfs:
    @pytest.mark.parametrize("mechanism", all_mechanisms())
    def test_bounded_buffer_two_by_two_is_clean(self, mechanism):
        """The acceptance bar: 2 producers + 2 consumers, every schedule."""
        task = _tiny_buffer_task(mechanism)
        max_depth = 24 if mechanism in UNBOUNDED_TREE_MECHANISMS else None
        report = explore_dfs(task, max_depth=max_depth)
        assert report.complete, f"{mechanism}: DFS did not exhaust the tree"
        assert report.schedules_visited > 1
        assert report.failures_total == 0, (
            f"{mechanism}: {report.failures_total} failing schedules, e.g. "
            f"{report.failures[0].kind}: {report.failures[0].message}"
            if report.failures
            else ""
        )
        if mechanism not in UNBOUNDED_TREE_MECHANISMS:
            # A full proof: no branch was ever pruned.
            assert report.depth_capped == 0

    def test_visited_count_is_deterministic(self):
        first = explore_dfs(_tiny_buffer_task("autosynch"))
        second = explore_dfs(_tiny_buffer_task("autosynch"))
        assert first.schedules_visited == second.schedules_visited
        assert first.max_depth == second.max_depth

    def test_every_prefix_identifies_a_distinct_schedule(self):
        # Exhaustive DFS must not visit the same schedule twice: collect the
        # trace digests of every visited schedule and require uniqueness.
        digests = []
        explore_dfs(
            _tiny_buffer_task("autosynch"),
            progress=lambda n, outcome: digests.append(outcome.digest),
        )
        assert len(digests) == len(set(digests))

    def test_max_schedules_caps_the_search(self):
        report = explore_dfs(_tiny_buffer_task("autosynch"), max_schedules=5)
        assert report.schedules_visited == 5
        assert not report.complete


class TestOracleWiring:
    def test_oracles_are_checked_at_decision_points(self, monkeypatch):
        # Plant an oracle that counts invocations on the real problem; it
        # must run at every decision point of the schedule.
        from repro.problems.base import Oracle

        problem = get_problem("bounded_buffer")
        calls = []
        original = problem.oracles

        def counting_oracles(monitor):
            def check():
                calls.append(1)
                return None

            return original(monitor) + (Oracle("counter", check),)

        monkeypatch.setattr(problem, "oracles", counting_oracles)
        outcome = run_schedule(
            _tiny_buffer_task("autosynch"), PrefixScheduler(())
        )
        assert outcome.ok
        assert len(calls) == outcome.steps

    def test_starvation_budget_fires_as_liveness_failure(self):
        # With a budget of 1 decision, some DFS schedule must keep a blocked
        # thread waiting longer — the liveness oracle has to catch it.
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism="autosynch",
            threads=2,
            total_ops=4,
            starvation_budget=1,
            problem_params={"capacity": 1},
        )
        report = explore_dfs(task, max_schedules=500)
        assert report.failures_total > 0
        assert any(
            failure.kind == "oracle:starvation_budget"
            for failure in report.failures
        )

    @pytest.mark.parametrize(
        "problem_name, corrupt, oracle_name",
        [
            ("bounded_buffer", lambda m: setattr(m, "count", -1), "buffer_bounds"),
            ("bounded_buffer", lambda m: setattr(m, "total_put", 99), "item_conservation"),
            ("readers_writers", lambda m: setattr(m, "active_writers", 2), "reader_writer_exclusion"),
            ("readers_writers", lambda m: setattr(m, "serving", -3), "ticket_order"),
            ("h2o", lambda m: setattr(m, "bond_tickets", 7), "h2o_stoichiometry"),
            ("dining_philosophers", lambda m: m.chopsticks.__setitem__(0, 2), "chopstick_exclusion"),
            ("round_robin", lambda m: setattr(m, "turn", -1), "round_robin_order"),
            ("sleeping_barber", lambda m: setattr(m, "waiting", 99), "waiting_room_bounds"),
            ("parameterized_bounded_buffer", lambda m: setattr(m, "count", -5), "buffer_bounds"),
        ],
    )
    def test_problem_oracles_detect_corrupted_state(
        self, problem_name, corrupt, oracle_name
    ):
        problem = get_problem(problem_name)
        backend = SimulationBackend()
        spec = problem.build(
            "autosynch", backend, threads=2, total_ops=4
        )
        oracles = {oracle.name: oracle for oracle in problem.oracles(spec.monitor)}
        oracle = oracles[oracle_name]
        assert oracle.check() is None, "oracle must accept the initial state"
        corrupt(spec.monitor)
        assert oracle.check() is not None, (
            f"{oracle_name} did not notice the corruption"
        )

    def test_every_problem_declares_oracles(self):
        # The exploration engine is only as strong as its oracles: every
        # registered problem must declare at least one.
        for name, problem in PROBLEMS.items():
            backend = SimulationBackend()
            spec = problem.build("autosynch", backend, threads=2, total_ops=4)
            assert problem.oracles(spec.monitor), f"{name} declares no oracles"


class TestSwarm:
    def test_swarm_is_clean_on_larger_problems(self):
        for problem, threads, ops in (("h2o", 3, 9), ("readers_writers", 1, 6)):
            task = ExploreTask(
                problem=problem, mechanism="autosynch", threads=threads, total_ops=ops
            )
            report = explore_swarm(task, schedules=25)
            assert report.schedules_visited == 25
            assert report.failures_total == 0, report.summary()

    def test_process_executor_matches_serial(self):
        task = ExploreTask(
            problem="h2o", mechanism="autosynch", threads=3, total_ops=9
        )
        serial_digests = []
        process_digests = []
        explore_swarm(
            task,
            schedules=12,
            executor="serial",
            progress=lambda n, o: serial_digests.append(o.digest),
        )
        explore_swarm(
            task,
            schedules=12,
            executor="process",
            jobs=2,
            progress=lambda n, o: process_digests.append(o.digest),
        )
        # run_tasks preserves task order, and every probe is seeded by
        # coordinates, so the sharded sweep is bit-identical to serial.
        assert serial_digests == process_digests

    def test_distinct_seeds_explore_distinct_schedules(self):
        task = ExploreTask(
            problem="bounded_buffer", mechanism="autosynch", threads=2, total_ops=8
        )
        digests = []
        explore_swarm(
            task, schedules=20, progress=lambda n, o: digests.append(o.digest)
        )
        assert len(set(digests)) > 1


class TestCli:
    def test_list_schedulers(self, capsys):
        assert explore_main(["--list-schedulers"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "replay" in out

    def test_clean_dfs_run_exits_zero(self, tmp_path, capsys):
        code = explore_main(
            [
                "--problem", "bounded_buffer",
                "--mechanism", "autosynch",
                "--mode", "dfs",
                "--threads", "2",
                "--ops", "4",
                "--param", "capacity=1",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out
        assert not list(tmp_path.glob("*.json"))

    def test_failing_run_writes_replayable_repro(self, tmp_path, capsys):
        from repro.core.signalling import register_policy, unregister_policy
        from tests.integration.test_seeded_defects import LossyRelayPolicy

        register_policy(LossyRelayPolicy)
        try:
            code = explore_main(
                [
                    "--problem", "bounded_buffer",
                    "--mechanism", LossyRelayPolicy.name,
                    "--mode", "dfs",
                    "--threads", "1",
                    "--ops", "2",
                    "--param", "capacity=1",
                    "--out", str(tmp_path),
                ]
            )
            assert code == 1
            repros = list(tmp_path.glob("*.json"))
            assert repros, "no repro file written for the failing schedule"
            payload = json.loads(repros[0].read_text())
            assert payload["failure"]["kind"] == "missed_signal"
            # Replay through the CLI: bit-identical reproduction, exit 0.
            assert explore_main(["--replay", str(repros[0])]) == 0
            out = capsys.readouterr().out
            assert "reproduced" in out
        finally:
            unregister_policy(LossyRelayPolicy.name)

    def test_unknown_mechanism_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            explore_main(
                ["--problem", "bounded_buffer", "--mechanism", "nope"]
            )

    def test_invalid_problem_params_are_a_clean_usage_error(self):
        # Workload-construction errors must surface as usage errors, not
        # raw tracebacks (nor abort a sharded swarm mid-pool).
        with pytest.raises(SystemExit, match="waiting room"):
            explore_main(
                ["--problem", "sleeping_barber", "--param", "chairs=0"]
            )
