"""Smoke tests: every example script runs end to end.

The examples are part of the public deliverable, so they are executed as
subprocesses exactly the way a user would run them (with small workloads to
keep the suite fast).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "warehouse_pipeline.py",
        "readers_writers_service.py",
        "traffic_intersection.py",
    } <= scripts


def test_quickstart():
    output = run_example("quickstart.py")
    assert "FIFO order preserved: True" in output
    assert "not a single signal/notify call" in output


def test_warehouse_pipeline_single_mechanism():
    output = run_example("warehouse_pipeline.py", "--orders", "40", "--mechanism", "autosynch")
    assert "orders fulfilled    : 40 / 40" in output
    assert "signal_alls=0" in output


def test_warehouse_pipeline_baseline_uses_signal_all():
    output = run_example("warehouse_pipeline.py", "--orders", "30", "--mechanism", "baseline")
    assert "orders fulfilled    : 30 / 30" in output
    assert "signal_alls=0" not in output


def test_readers_writers_service():
    output = run_example("readers_writers_service.py")
    assert "reads completed  : 240" in output
    assert "writes completed : 30" in output


def test_traffic_intersection_is_deterministic():
    output = run_example("traffic_intersection.py", "--cars", "2", "--crossings", "2")
    assert "total crossings : 16" in output
    first, second = output.split("second run with the same seed (identical by construction):")
    # The two runs print identical statistics.
    interesting = [line for line in first.splitlines() if "context switches" in line]
    repeated = [line for line in second.splitlines() if "context switches" in line]
    assert interesting and interesting == repeated
