"""Seeded-defect suite: the explorer must catch known-bad implementations.

Two defects are planted:

* a *lossy* signalling policy (registered only for these tests) that drops
  the first signalling opportunity — the canonical "missed signal" bug the
  paper's relay mechanism is designed to rule out; and
* an unordered dining-philosophers variant that grabs forks one at a time —
  the canonical lock-order deadlock.

For each, schedule exploration must find the failure, greedy shrinking must
preserve it, and the written repro file must replay to the same failure
bit-identically.
"""

from __future__ import annotations

import pytest

from repro.core.monitor import ExplicitMonitor
from repro.core.signalling import register_policy, unregister_policy
from repro.core.signalling.relay import RelayTaggedPolicy
from repro.explore import (
    ExploreTask,
    explore_dfs,
    load_repro,
    replay_repro,
    repro_payload,
    shrink_failure,
    write_repro,
)
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Problem, WorkloadSpec

LOSSY = "lossy_relay_test"


class LossyRelayPolicy(RelayTaggedPolicy):
    """Tag-directed relay that silently drops one signalling opportunity.

    The first time a monitor exit *should* wake a ready waiter, the policy
    pretends it signalled and does nothing.  If other threads keep entering
    the monitor the waiter is rescued by a later relay — so the bug only
    bites under schedules where the dropped signal was the last chance,
    which is exactly what the explorer has to find.
    """

    name = LOSSY
    description = "relay that drops the first signalling opportunity (defect)"

    def __init__(self) -> None:
        super().__init__()
        self._dropped = False

    def on_monitor_exit(self) -> None:
        if not self._dropped and self._manager.find_missed_waiter() is not None:
            self._dropped = True
            return
        super().on_monitor_exit()


@pytest.fixture
def lossy_policy():
    register_policy(LossyRelayPolicy)
    try:
        yield LOSSY
    finally:
        unregister_policy(LOSSY)


class UnorderedDiningProblem(Problem):
    """Philosophers grab the left fork, think, then grab the right fork.

    Without the monitor's atomic two-fork grab, the classic circular wait is
    reachable: every philosopher holds their left fork and blocks on the
    right one.
    """

    name = "unordered_dining_test"
    description = "fork-at-a-time dining philosophers (deliberate deadlock)"
    mechanisms = ("explicit",)

    def build(
        self,
        mechanism,
        backend,
        threads,
        total_ops,
        seed=0,
        profile=False,
        validate=False,
        eval_engine=DEFAULT_ENGINE,
        **params,
    ) -> WorkloadSpec:
        self._check_mechanism(mechanism)
        seats = max(2, threads)
        forks = [backend.create_lock(label=f"fork-{index}") for index in range(seats)]
        meals = [0]
        rounds = max(1, total_ops // seats)

        def make_philosopher(seat):
            left = forks[seat]
            right = forks[(seat + 1) % seats]

            def philosopher():
                for _ in range(rounds):
                    left.acquire()
                    backend.yield_control()  # think with one fork in hand
                    right.acquire()
                    meals[0] += 1
                    right.release()
                    left.release()

            return philosopher

        def verify():
            assert meals[0] == rounds * seats

        return WorkloadSpec(
            monitor=ExplicitMonitor(backend=backend),
            targets=[make_philosopher(seat) for seat in range(seats)],
            names=[f"philosopher-{seat}" for seat in range(seats)],
            verify=verify,
            operations=rounds * seats,
        )


# Registered under a private name so run_schedule can resolve it.
from repro.problems import PROBLEMS  # noqa: E402


@pytest.fixture
def unordered_dining():
    problem = UnorderedDiningProblem()
    PROBLEMS[problem.name] = problem
    try:
        yield problem.name
    finally:
        del PROBLEMS[problem.name]


class TestLossyPolicyIsCaught:
    def test_dfs_finds_missed_signal_and_repro_replays(self, lossy_policy, tmp_path):
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism=lossy_policy,
            threads=1,
            total_ops=2,
            problem_params={"capacity": 1},
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total > 0, "the dropped signal went undetected"
        kinds = {failure.kind for failure in report.failures}
        assert "missed_signal" in kinds, (
            f"expected a missed_signal classification, got {kinds}"
        )

        failure = next(f for f in report.failures if f.kind == "missed_signal")
        # Shrinking must preserve the failure kind.
        result = shrink_failure(task, failure.prefix, failure.kind)
        assert result.outcome.kind == "missed_signal"
        assert len(result.prefix) <= len(failure.prefix)

        # The repro file must replay bit-identically.
        shrunk = failure.__class__(
            kind=failure.kind,
            message=result.outcome.message,
            prefix=result.prefix,
            trace=result.outcome.trace,
            digest=result.outcome.digest,
        )
        path = write_repro(
            tmp_path / "lossy.json", repro_payload(task, shrunk, "dfs")
        )
        payload = load_repro(path)
        replay = replay_repro(payload)
        assert replay.reproduced, replay.describe()
        assert replay.outcome.kind == "missed_signal"

    def test_correct_policy_passes_same_exploration(self):
        # Control: the same configuration under the real autosynch policy
        # has zero failing schedules, so the detection above is the defect's.
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism="autosynch",
            threads=1,
            total_ops=2,
            problem_params={"capacity": 1},
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total == 0


class TestUnorderedDiningIsCaught:
    def test_dfs_finds_deadlock_and_repro_replays(self, unordered_dining, tmp_path):
        task = ExploreTask(
            problem=unordered_dining,
            mechanism="explicit",
            threads=2,
            total_ops=2,
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total > 0, "the circular wait went undetected"
        kinds = {failure.kind for failure in report.failures}
        assert kinds == {"deadlock"}

        failure = report.failures[0]
        assert "waiting for lock fork-" in failure.message

        result = shrink_failure(task, failure.prefix, "deadlock")
        assert result.outcome.kind == "deadlock"
        assert len(result.prefix) <= len(failure.prefix)

        shrunk = failure.__class__(
            kind="deadlock",
            message=result.outcome.message,
            prefix=result.prefix,
            trace=result.outcome.trace,
            digest=result.outcome.digest,
        )
        path = write_repro(
            tmp_path / "dining.json", repro_payload(task, shrunk, "dfs")
        )
        replay = replay_repro(load_repro(path))
        assert replay.reproduced, replay.describe()
        assert replay.outcome.kind == "deadlock"

    def test_ordered_monitor_variant_is_clean(self):
        # Control: the real dining_philosophers problem (atomic two-fork
        # grab) survives the same exhaustive exploration.
        task = ExploreTask(
            problem="dining_philosophers",
            mechanism="autosynch",
            threads=2,
            total_ops=4,
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total == 0
