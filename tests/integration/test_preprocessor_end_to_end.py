"""End-to-end preprocessor test: translate, import and run a whole module.

This mirrors the paper's Fig. 2 tool-chain: AutoSynch-style source goes
through the offline preprocessor, the generated plain-Python module is
imported, and the resulting monitor is exercised by concurrent threads on the
deterministic simulator.  The decorator front end is loaded from the same
source file to check both paths produce equivalent monitors.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.preprocessor.cli import main as preprocessor_main
from repro.runtime import SimulationBackend

SOURCE = '''
"""A ticket dispenser written in AutoSynch surface syntax."""
from repro.preprocessor import autosynch, waituntil


@autosynch
class TicketDispenser:
    """Serves numbered tickets; callers collect them strictly in order."""

    def __init__(self, total):
        self.total = total
        self.next_ticket = 0
        self.now_serving = 0
        self.collected = []

    def draw(self):
        ticket = self.next_ticket
        self.next_ticket += 1
        return ticket

    def collect(self, ticket):
        waituntil(self.now_serving == ticket)
        self.collected.append(ticket)
        self.now_serving += 1
        return ticket
'''


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "dispenser.py"
    path.write_text(SOURCE, encoding="utf-8")
    return path


@pytest.fixture
def generated_module(source_file, tmp_path):
    output_path = tmp_path / "dispenser_generated.py"
    assert preprocessor_main([str(source_file), "-o", str(output_path)]) == 0
    return _load_module(output_path, "dispenser_generated")


class TestGeneratedModule:
    def test_generated_class_is_a_monitor(self, generated_module):
        from repro.core import AutoSynchMonitor

        assert issubclass(generated_module.TicketDispenser, AutoSynchMonitor)

    def test_out_of_order_collectors_are_serialized(self, generated_module):
        backend = SimulationBackend(seed=11, policy="random")
        # The generated class reads its monitor options from the
        # ``_autosynch_options`` class attribute, which is the hook for
        # running it on a non-default backend.
        generated_module.TicketDispenser._autosynch_options = {"backend": backend}
        dispenser = generated_module.TicketDispenser(12)

        def collector():
            ticket = dispenser.draw()
            # Hand control to another collector between drawing and
            # collecting so tickets really are collected out of draw order.
            backend.yield_control()
            dispenser.collect(ticket)

        backend.run([collector for _ in range(12)])
        assert dispenser.collected == list(range(12))
        assert dispenser.stats.waits > 0

    def test_decorator_and_offline_paths_agree(self, generated_module, source_file):
        # Importing the original module runs the @autosynch decorator; the
        # offline-generated module must behave identically (single-threaded).
        decorated_module = _load_module(source_file, "dispenser_decorated")
        offline = generated_module.TicketDispenser(3)
        decorated = decorated_module.TicketDispenser(3)
        for monitor in (offline, decorated):
            for _ in range(3):
                monitor.collect(monitor.draw())
        assert offline.collected == decorated.collected == [0, 1, 2]
        assert type(offline).__mro__[1].__name__ == type(decorated).__mro__[1].__name__
