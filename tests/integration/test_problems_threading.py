"""Integration tests: the problems on real threads (smaller scale).

The threading backend exercises the same monitor code under genuine
preemption, so these runs catch races that a cooperative scheduler cannot
(lost wake-ups, missing lock protection, non-atomic check-then-act).
"""

from __future__ import annotations

import pytest

from repro.harness.saturation import run_workload
from repro.problems import MECHANISMS, PROBLEMS, get_problem
from repro.runtime import ThreadingBackend

# Every registered problem under every mechanism it declares (scenario
# problems run under the automatic mechanisms only — no explicit twin).
ALL_COMBINATIONS = [
    (problem_name, mechanism)
    for problem_name in PROBLEMS
    for mechanism in get_problem(problem_name).mechanisms
]


@pytest.mark.parametrize("problem_name, mechanism", ALL_COMBINATIONS)
def test_problem_runs_on_real_threads(problem_name, mechanism):
    problem = get_problem(problem_name)
    backend = ThreadingBackend()
    result = run_workload(
        problem, mechanism, backend, threads=4, total_ops=120, seed=9, verify=True
    )
    assert result.wall_time >= 0
    assert result.operations > 0


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_repeated_runs_stay_correct(mechanism):
    """Run the most signalling-heavy problem several times to shake out races."""
    problem = get_problem("parameterized_bounded_buffer")
    for attempt in range(3):
        backend = ThreadingBackend()
        run_workload(
            problem, mechanism, backend, threads=6, total_ops=180, seed=attempt, verify=True
        )


def test_profiled_run_collects_time_buckets():
    problem = get_problem("round_robin")
    backend = ThreadingBackend()
    result = run_workload(
        problem, "autosynch", backend, threads=6, total_ops=180, seed=1,
        profile=True, verify=True,
    )
    stats = result.monitor_stats
    assert stats["lock_time"] > 0
    assert stats["relay_signal_time"] > 0
    # Tag management only happens when predicates are (de)registered.
    assert stats["tag_manager_time"] >= 0


def test_monitors_are_independent_between_runs():
    problem = get_problem("bounded_buffer")
    backend = ThreadingBackend()
    first = run_workload(problem, "autosynch", backend, threads=2, total_ops=60, seed=0)
    second = run_workload(problem, "autosynch", backend, threads=2, total_ops=60, seed=0)
    # Each run builds a fresh monitor, so per-run stats do not accumulate.
    assert first.monitor_stats["entries"] == second.monitor_stats["entries"]
